#!/usr/bin/env bash
# Tier-1 regression check, one command (see ROADMAP.md):
#   1. configure + build everything
#   2. run the full ctest suite
#   3. SIMD parity: re-run the tensor/core/serve suites with
#      TELEKIT_SIMD=off, so the scalar kernel backend stays green (the
#      vector-vs-scalar agreement itself is asserted in-process by the
#      SimdKernelTest cases, which force both backends).
#   4. rebuild the obs layer (library + its tests) plus the tensor/core/
#      serve test binaries under -Wall -Wextra -Werror in a separate
#      tree, so new warnings fail loudly instead of scrolling by.
#   5. flag validation: daemons and bench binaries must reject malformed
#      numeric flags with a usage error (exit 64) instead of silently
#      parsing a prefix.
#   6. admin smoke: start telekit_serve with --admin-port on loopback,
#      poll /healthz until live, assert /metrics serves a non-empty
#      Prometheus exposition, then drive one traced request through the
#      TCP protocol and assert the observability loop closes end to end:
#      /timeseriesz accumulates samples, /alertz is healthy on a clean
#      run, a /metrics latency bucket carries a trace exemplar whose id
#      resolves via /requestz to a wide event with matching total_us, and
#      the --request-log NDJSON round-trips through telekit_jsonlint.
#      Also drives one request at "precision": "int8" and asserts it
#      succeeds and lands on the serve/precision_int8_requests counter,
#      and asserts the loaded model variant's generation is visible in
#      both /statusz (models section) and /metrics (serve/model/*/
#      generation gauge).
#   7. retrieval smoke: start telekit_serve with --index-path, drive
#      retrieve (k docs, descending scores, ef_search override) and
#      troubleshoot (verdict + supporting docs) through the NDJSON
#      protocol, assert /statusz gained an index section and the traced
#      troubleshoot request shows index/search + serve/troubleshoot spans
#      on /spanz, then restart on the same snapshot and assert the warm
#      start loaded it instead of rebuilding (build_ms near zero).
#   8. streamd smoke: replay a small seeded stream through telekit_streamd
#      with --linger, assert /statusz reports a finished run with >0
#      episodes and 0 late drops, and that the per-op serve counters made
#      it into the Prometheus exposition.
#   9. router smoke: start 2 telekit_serve replicas behind telekit_router
#      (with --request-log), assert /fleetz shows both routable with probe
#      telemetry, assert /fleetmetricz sums the replicas' request counters,
#      drive traced traffic (including retrieve + troubleshoot) through
#      the routed NDJSON path, SIGKILL one
#      replica and assert a traced request that retried assembles into a
#      multi-hop trace via /tracezd (failed hop marked, replica serve span
#      attached, Chrome export works) while traffic keeps succeeding and
#      the ejection lands in /metrics, then /reloadz a model swap with
#      zero failed requests, drain the router via /quitquitquit, and lint
#      the router's wide-event request log with telekit_jsonlint.
#
# Optional: TELEKIT_TSAN=1 scripts/check_tier1.sh additionally builds the
# concurrency-heavy tests (serve engine, stream pipeline, embedding cache,
# ANN index, metrics registry, admin server, tensor ComputePool) under
# ThreadSanitizer in build_tsan/ and runs them — tensor_test, serve_test,
# stream_test, route_test and index_test
# with TELEKIT_COMPUTE_THREADS=4 so the intra-op worker pool is actually
# exercised under TSan. Off by default: the TSan tree roughly doubles check
# time.
#
# Usage: scripts/check_tier1.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/9] configure + build =="
cmake -B build -S .
cmake --build build -j

echo "== [2/9] ctest =="
ctest --test-dir build --output-on-failure -j

echo "== [3/9] TELEKIT_SIMD=off scalar-backend parity =="
# The full suites must stay green with the vector backend disabled; the
# off-vs-on numeric agreement is asserted in-process by SimdKernelTest
# (which forces scalar and the detected backend against each other).
TELEKIT_SIMD=off ./build/tests/tensor_test --gtest_brief=1
TELEKIT_SIMD=off ./build/tests/core_test --gtest_brief=1
TELEKIT_SIMD=off ./build/tests/serve_test --gtest_brief=1

echo "== [4/9] -Werror build of the obs + stream + route + index + tensor/core/serve layers =="
cmake -B build_strict -S . -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build build_strict -j --target telekit_obs obs_test obs_admin_test \
  obs_timeseries_test telekit_stream stream_test telekit_route route_test \
  telekit_index index_test tensor_test core_test serve_test
./build_strict/tests/obs_test --gtest_brief=1
./build_strict/tests/obs_admin_test --gtest_brief=1
./build_strict/tests/obs_timeseries_test --gtest_brief=1
./build_strict/tests/stream_test --gtest_brief=1
./build_strict/tests/route_test --gtest_brief=1
./build_strict/tests/tensor_test --gtest_brief=1
./build_strict/tests/index_test --gtest_brief=1

echo "== [5/9] strict flag validation (exit 64 on malformed numerics) =="
expect_exit64() {
  local desc=$1; shift
  local rc=0
  "$@" >/dev/null 2>&1 || rc=$?
  if [[ "${rc}" -ne 64 ]]; then
    echo "flag validation: ${desc} exited ${rc}, want 64"
    exit 1
  fi
}
expect_exit64 "telekit_serve --port=abc" \
  ./build/src/serve/telekit_serve --port=abc
expect_exit64 "telekit_serve --precision=fp16" \
  ./build/src/serve/telekit_serve --precision=fp16
expect_exit64 "telekit_router --vnodes=abc" \
  ./build/src/route/telekit_router --vnodes=abc --replica=18000:18001
expect_exit64 "telekit_streamd --episodes=abc" \
  ./build/src/stream/telekit_streamd --episodes=abc
expect_exit64 "route_bench --replicas=abc" \
  ./build/bench/route_bench --replicas=abc
expect_exit64 "stream_loadgen --mean-gap=1x2" \
  ./build/bench/stream_loadgen --mean-gap=1x2
expect_exit64 "matmul_bench --iters=-3" \
  ./build/bench/matmul_bench --iters=-3
expect_exit64 "retrieval_bench --queries=1e3" \
  ./build/bench/retrieval_bench --queries=1e3
echo "flag validation: OK"

echo "== [6/9] admin endpoint smoke =="
SERVE_PORT=18473
ADMIN_PORT=18474
SERVE_LOG=$(mktemp)
REQUEST_LOG=$(mktemp)
# TCP mode (not stdin) so the server stays up while we scrape it.
# --compute-threads=2 smoke-checks the intra-op pool flag end to end;
# --ts-interval-s=0.2 makes the sampler tick fast enough to observe.
./build/src/serve/telekit_serve --port="${SERVE_PORT}" \
  --admin-port="${ADMIN_PORT}" --slow-request-ms=100 \
  --compute-threads=2 --ts-interval-s=0.2 \
  --request-log="${REQUEST_LOG}" \
  >"${SERVE_LOG}" 2>&1 &
SERVE_PID=$!
cleanup() {
  kill "${SERVE_PID}" 2>/dev/null || true
  wait "${SERVE_PID}" 2>/dev/null || true
  rm -f "${SERVE_LOG}" "${REQUEST_LOG}"
}
trap cleanup EXIT

# /healthz answers as soon as the admin thread is up; /readyz stays 503
# until the model is built, so wait for both before scraping.
for _ in $(seq 1 60); do
  if curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/readyz" \
      >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "${SERVE_PID}" 2>/dev/null; then
    echo "admin smoke: telekit_serve died during startup:"
    cat "${SERVE_LOG}"
    exit 1
  fi
  sleep 1
done
HEALTH=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/healthz")
[[ "${HEALTH}" == "ok" ]] || { echo "admin smoke: bad /healthz: ${HEALTH}"; exit 1; }
STATUSZ=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/statusz")
if ! grep -q '"queue_depth"' <<<"${STATUSZ}"; then
  echo "admin smoke: /statusz missing engine stats: ${STATUSZ}"
  exit 1
fi
METRICS=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/metrics")
if [[ -z "${METRICS}" ]] || ! grep -q "telekit_" <<<"${METRICS}"; then
  echo "admin smoke: /metrics exposition empty or missing telekit_ prefix"
  exit 1
fi

# The hosted model variant and its bundle generation must be visible on
# both surfaces: /statusz lists the variant with a generation field, and
# /metrics carries the serve/model/<name>/generation gauge.
if ! grep -q '"model": "telebert"' <<<"${STATUSZ}" \
    || ! grep -q '"generation"' <<<"${STATUSZ}"; then
  echo "admin smoke: /statusz missing model variant / generation: ${STATUSZ}"
  exit 1
fi
MODEL_GEN=$(sed -n 's/^telekit_serve_model_telebert_generation \([0-9.]*\).*/\1/p' \
  <<<"${METRICS}")
if [[ -z "${MODEL_GEN}" ]] || ! awk -v g="${MODEL_GEN}" \
    'BEGIN { exit (g >= 1) ? 0 : 1 }'; then
  echo "admin smoke: serve/model/telebert/generation gauge missing or zero"
  exit 1
fi

# Drive one traced request through the NDJSON TCP protocol so the wide-event
# log, exemplar store, and latency histograms all see real traffic.
exec 3<>"/dev/tcp/127.0.0.1/${SERVE_PORT}"
printf '{"op": "rca", "text": "ospf neighbor down on core router", "trace": true}\n' >&3
IFS= read -r SERVE_REPLY <&3 || true
exec 3<&- 3>&-
if ! grep -Eq '"ok": ?true' <<<"${SERVE_REPLY}"; then
  echo "admin smoke: traced rca request failed: ${SERVE_REPLY}"
  exit 1
fi

# The int8 quantized encode path: the request must succeed and land on
# its dedicated counter in the Prometheus exposition.
exec 3<>"/dev/tcp/127.0.0.1/${SERVE_PORT}"
printf '{"op": "encode", "text": "ospf neighbor down on core router", "precision": "int8"}\n' >&3
IFS= read -r INT8_REPLY <&3 || true
exec 3<&- 3>&-
if ! grep -Eq '"ok": ?true' <<<"${INT8_REPLY}"; then
  echo "admin smoke: int8 encode request failed: ${INT8_REPLY}"
  exit 1
fi
INT8_COUNT=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/metrics" \
  | sed -n 's/^telekit_serve_precision_int8_requests \([0-9.]*\).*/\1/p')
if [[ -z "${INT8_COUNT}" ]] || ! awk -v c="${INT8_COUNT}" \
    'BEGIN { exit (c >= 1) ? 0 : 1 }'; then
  echo "admin smoke: serve/precision_int8_requests counter missing or zero"
  exit 1
fi

# The background sampler (0.2 s period) must accumulate history.
SAMPLES=0
for _ in $(seq 1 50); do
  TIMESERIES=$(curl -sf -m 2 \
    "http://127.0.0.1:${ADMIN_PORT}/timeseriesz?window=60" 2>/dev/null || true)
  SAMPLES=$(sed -n 's/.*"samples_taken": \([0-9]*\).*/\1/p' <<<"${TIMESERIES}")
  [[ -n "${SAMPLES}" && "${SAMPLES}" -ge 2 ]] && break
  sleep 0.2
done
if [[ -z "${SAMPLES}" || "${SAMPLES}" -lt 2 ]]; then
  echo "admin smoke: /timeseriesz never accumulated 2 samples: ${TIMESERIES}"
  exit 1
fi
if ! grep -q '"serve/request_ms/p95"' <<<"${TIMESERIES}"; then
  echo "admin smoke: /timeseriesz missing serve/request_ms quantile series"
  exit 1
fi

# A clean run must not have any SLO alert firing.
ALERTZ=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/alertz")
if ! grep -q '"firing": 0' <<<"${ALERTZ}"; then
  echo "admin smoke: /alertz reports firing alerts on a clean run: ${ALERTZ}"
  exit 1
fi

# Close the exemplar loop: a latency bucket line in /metrics carries
# ` # {trace_id="..."} value_ms unix_s`; that trace id must resolve via
# /requestz to a wide event whose total_us matches value_ms within 10 us.
METRICS2=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/metrics")
EXEMPLAR_LINE=$(grep 'telekit_serve_request_ms_bucket{le="[^+]*"} .* # {trace_id="' \
  <<<"${METRICS2}" | head -1)
if [[ -z "${EXEMPLAR_LINE}" ]]; then
  echo "admin smoke: /metrics has no exemplar on serve_request_ms buckets"
  exit 1
fi
EXEMPLAR_TRACE=$(sed -n 's/.*# {trace_id="\([0-9a-f]*\)"}.*/\1/p' <<<"${EXEMPLAR_LINE}")
EXEMPLAR_MS=$(sed -n 's/.*# {trace_id="[0-9a-f]*"} \([0-9.eE+-]*\) .*/\1/p' \
  <<<"${EXEMPLAR_LINE}")
REQUESTZ=$(curl -sf -m 2 \
  "http://127.0.0.1:${ADMIN_PORT}/requestz?trace_id=${EXEMPLAR_TRACE}")
WIDE_US=$(sed -n 's/.*"total_us": \([0-9]*\).*/\1/p' <<<"${REQUESTZ}" | head -1)
if [[ -z "${WIDE_US}" ]]; then
  echo "admin smoke: exemplar trace ${EXEMPLAR_TRACE} not found in /requestz"
  exit 1
fi
if ! awk -v us="${WIDE_US}" -v ms="${EXEMPLAR_MS}" \
    'BEGIN { d = us - ms * 1000; if (d < 0) d = -d; exit (d <= 10) ? 0 : 1 }'; then
  echo "admin smoke: exemplar value ${EXEMPLAR_MS} ms disagrees with wide event ${WIDE_US} us"
  exit 1
fi

kill "${SERVE_PID}"
wait "${SERVE_PID}" 2>/dev/null || true
trap - EXIT

# The NDJSON request log must round-trip through the repo's own parser.
if [[ ! -s "${REQUEST_LOG}" ]]; then
  echo "admin smoke: --request-log sink is empty"
  exit 1
fi
if ! ./build/src/obs/telekit_jsonlint <"${REQUEST_LOG}"; then
  echo "admin smoke: --request-log NDJSON failed jsonlint"
  exit 1
fi
rm -f "${SERVE_LOG}" "${REQUEST_LOG}"
echo "admin smoke: OK (/healthz + /readyz + /statusz + /timeseriesz + /alertz live," \
  "exemplar -> /requestz loop closed, request log lints)"

echo "== [7/9] retrieval smoke (retrieve + troubleshoot + snapshot warm start) =="
RETR_PORT=18482
RETR_ADMIN_PORT=18483
RETR_LOG=$(mktemp)
INDEX_SNAPSHOT=$(mktemp -u)
./build/src/serve/telekit_serve --port="${RETR_PORT}" \
  --admin-port="${RETR_ADMIN_PORT}" --ef-search=48 \
  --index-path="${INDEX_SNAPSHOT}" \
  >"${RETR_LOG}" 2>&1 &
RETR_PID=$!
retr_cleanup() {
  kill "${RETR_PID}" 2>/dev/null || true
  wait "${RETR_PID}" 2>/dev/null || true
  rm -f "${RETR_LOG}" "${INDEX_SNAPSHOT}"
}
trap retr_cleanup EXIT

wait_retr_ready() {
  for _ in $(seq 1 60); do
    if curl -sf -m 2 "http://127.0.0.1:${RETR_ADMIN_PORT}/readyz" \
        >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "${RETR_PID}" 2>/dev/null; then
      echo "retrieval smoke: telekit_serve died during startup:"
      cat "${RETR_LOG}"
      exit 1
    fi
    sleep 1
  done
  echo "retrieval smoke: server never became ready"
  exit 1
}
wait_retr_ready

# Cold start: /statusz must carry the index section, built (not loaded)
# from the corpus, honouring the --ef-search default.
RETR_STATUSZ=$(curl -sf -m 2 "http://127.0.0.1:${RETR_ADMIN_PORT}/statusz")
if ! grep -q '"index"' <<<"${RETR_STATUSZ}" \
    || ! grep -q '"loaded_from_snapshot": false' <<<"${RETR_STATUSZ}" \
    || ! grep -q '"ef_search": 48' <<<"${RETR_STATUSZ}"; then
  echo "retrieval smoke: /statusz missing cold-start index section: ${RETR_STATUSZ}"
  exit 1
fi

# retrieve: top_k docs with descending scores, ef_search overridable.
exec 3<>"/dev/tcp/127.0.0.1/${RETR_PORT}"
printf '{"op": "retrieve", "text": "kpi deviation after alarm storm on core site", "top_k": 5}\n' >&3
IFS= read -r RETRIEVE_REPLY <&3 || true
printf '{"op": "retrieve", "text": "signaling anomaly during handover", "top_k": 3, "ef_search": 96}\n' >&3
IFS= read -r RETRIEVE_EF_REPLY <&3 || true
TROUBLE_TRACE="00000000beefcafe"
printf '{"op": "troubleshoot", "text": "customers report degradation after link flap", "top_k": 4, "trace": "%s"}\n' \
  "${TROUBLE_TRACE}" >&3
IFS= read -r TROUBLESHOOT_REPLY <&3 || true
exec 3<&- 3>&-
if ! grep -Eq '"ok": ?true' <<<"${RETRIEVE_REPLY}"; then
  echo "retrieval smoke: retrieve failed: ${RETRIEVE_REPLY}"
  exit 1
fi
DOC_COUNT=$(grep -o '"doc_id"' <<<"${RETRIEVE_REPLY}" | wc -l)
if [[ "${DOC_COUNT}" -ne 5 ]]; then
  echo "retrieval smoke: retrieve returned ${DOC_COUNT} docs, want 5: ${RETRIEVE_REPLY}"
  exit 1
fi
# Doc scores must come back best-first (non-increasing).
if ! grep -o '"score": *[0-9.eE+-]*' <<<"${RETRIEVE_REPLY}" | sed 's/.*://' \
    | awk '{ if (NR > 1 && $1 > prev + 1e-6) exit 1; prev = $1 }'; then
  echo "retrieval smoke: retrieve scores not descending: ${RETRIEVE_REPLY}"
  exit 1
fi
if ! grep -Eq '"ok": ?true' <<<"${RETRIEVE_EF_REPLY}" \
    || [[ "$(grep -o '"doc_id"' <<<"${RETRIEVE_EF_REPLY}" | wc -l)" -ne 3 ]]; then
  echo "retrieval smoke: retrieve with ef_search override failed: ${RETRIEVE_EF_REPLY}"
  exit 1
fi

# troubleshoot: RCA verdicts plus the supporting evidence docs.
if ! grep -Eq '"ok": ?true' <<<"${TROUBLESHOOT_REPLY}" \
    || ! grep -q '"results"' <<<"${TROUBLESHOOT_REPLY}" \
    || ! grep -q '"docs"' <<<"${TROUBLESHOOT_REPLY}"; then
  echo "retrieval smoke: troubleshoot failed: ${TROUBLESHOOT_REPLY}"
  exit 1
fi
if ! grep -q "\"trace\": *\"${TROUBLE_TRACE}\"" <<<"${TROUBLESHOOT_REPLY}"; then
  echo "retrieval smoke: troubleshoot reply lost its trace id: ${TROUBLESHOOT_REPLY}"
  exit 1
fi
SPANZ=$(curl -sf -m 2 \
  "http://127.0.0.1:${RETR_ADMIN_PORT}/spanz?trace_id=${TROUBLE_TRACE}")
if ! grep -q '"index/search"' <<<"${SPANZ}" \
    || ! grep -q '"serve/troubleshoot"' <<<"${SPANZ}"; then
  echo "retrieval smoke: span chain missing index/search or serve/troubleshoot: ${SPANZ}"
  exit 1
fi

# Per-op latency histograms must land in the Prometheus exposition.
RETR_METRICS=$(curl -sf -m 2 "http://127.0.0.1:${RETR_ADMIN_PORT}/metrics")
if ! grep -q '^telekit_serve_retrieve_request_ms_count' <<<"${RETR_METRICS}" \
    || ! grep -q '^telekit_serve_troubleshoot_request_ms_count' <<<"${RETR_METRICS}" \
    || ! grep -q '^telekit_index_size' <<<"${RETR_METRICS}"; then
  echo "retrieval smoke: per-op retrieval metrics missing from /metrics"
  exit 1
fi

# Warm restart: the second process must load the snapshot the first one
# wrote instead of rebuilding (near-zero build time, same answers).
kill "${RETR_PID}"
wait "${RETR_PID}" 2>/dev/null || true
if [[ ! -s "${INDEX_SNAPSHOT}" ]]; then
  echo "retrieval smoke: --index-path snapshot was never written"
  exit 1
fi
./build/src/serve/telekit_serve --port="${RETR_PORT}" \
  --admin-port="${RETR_ADMIN_PORT}" --ef-search=48 \
  --index-path="${INDEX_SNAPSHOT}" \
  >"${RETR_LOG}" 2>&1 &
RETR_PID=$!
wait_retr_ready
RETR_STATUSZ=$(curl -sf -m 2 "http://127.0.0.1:${RETR_ADMIN_PORT}/statusz")
if ! grep -q '"loaded_from_snapshot": true' <<<"${RETR_STATUSZ}"; then
  echo "retrieval smoke: warm start did not load snapshot: ${RETR_STATUSZ}"
  exit 1
fi
WARM_BUILD_MS=$(sed -n 's/.*"build_ms": \([0-9.]*\).*/\1/p' <<<"${RETR_STATUSZ}" | head -1)
if [[ -z "${WARM_BUILD_MS}" ]] || ! awk -v ms="${WARM_BUILD_MS}" \
    'BEGIN { exit (ms < 50) ? 0 : 1 }'; then
  echo "retrieval smoke: warm-start build_ms=${WARM_BUILD_MS}, want near zero"
  exit 1
fi
exec 3<>"/dev/tcp/127.0.0.1/${RETR_PORT}"
printf '{"op": "retrieve", "text": "kpi deviation after alarm storm on core site", "top_k": 5}\n' >&3
IFS= read -r WARM_REPLY <&3 || true
exec 3<&- 3>&-
if ! grep -Eq '"ok": ?true' <<<"${WARM_REPLY}" \
    || [[ "$(grep -o '"doc_id"' <<<"${WARM_REPLY}" | wc -l)" -ne 5 ]]; then
  echo "retrieval smoke: warm-start retrieve failed: ${WARM_REPLY}"
  exit 1
fi

kill "${RETR_PID}"
wait "${RETR_PID}" 2>/dev/null || true
trap - EXIT
rm -f "${RETR_LOG}" "${INDEX_SNAPSHOT}"
echo "retrieval smoke: OK (retrieve + ef_search override + troubleshoot," \
  "span chain visible, snapshot warm start build_ms=${WARM_BUILD_MS})"

echo "== [8/9] streamd replay smoke =="
STREAMD_ADMIN_PORT=18475
STREAMD_LOG=$(mktemp)
# Unpaced deterministic replay of a small seeded stream; --linger keeps the
# admin server up after the replay finishes so /statusz can be scraped
# without racing the run.
./build/src/stream/telekit_streamd --seed=4242 --episodes=6 \
  --admin-port="${STREAMD_ADMIN_PORT}" --workers=2 --compute-threads=2 \
  --linger >"${STREAMD_LOG}" 2>&1 &
STREAMD_PID=$!
cleanup_streamd() {
  kill "${STREAMD_PID}" 2>/dev/null || true
  wait "${STREAMD_PID}" 2>/dev/null || true
  rm -f "${STREAMD_LOG}"
}
trap cleanup_streamd EXIT

# Wait until the replay reports itself done through /statusz.
STREAM_STATUS=""
for _ in $(seq 1 120); do
  STREAM_STATUS=$(curl -sf -m 2 \
    "http://127.0.0.1:${STREAMD_ADMIN_PORT}/statusz" 2>/dev/null || true)
  if grep -q '"done": true' <<<"${STREAM_STATUS}"; then
    break
  fi
  if ! kill -0 "${STREAMD_PID}" 2>/dev/null; then
    echo "streamd smoke: telekit_streamd died during the replay:"
    cat "${STREAMD_LOG}"
    exit 1
  fi
  sleep 1
done
if ! grep -q '"done": true' <<<"${STREAM_STATUS}"; then
  echo "streamd smoke: replay never finished: ${STREAM_STATUS}"
  exit 1
fi
EPISODES=$(sed -n 's/.*"episodes": \([0-9]*\).*/\1/p' <<<"${STREAM_STATUS}")
LATE=$(sed -n 's/.*"late_drops": \([0-9]*\).*/\1/p' <<<"${STREAM_STATUS}")
if [[ -z "${EPISODES}" || "${EPISODES}" -eq 0 ]]; then
  echo "streamd smoke: /statusz reports no flushed episodes: ${STREAM_STATUS}"
  exit 1
fi
if [[ -z "${LATE}" || "${LATE}" -ne 0 ]]; then
  echo "streamd smoke: /statusz reports late drops: ${STREAM_STATUS}"
  exit 1
fi
STREAM_METRICS=$(curl -sf -m 2 "http://127.0.0.1:${STREAMD_ADMIN_PORT}/metrics")
for metric in telekit_stream_episodes telekit_serve_rca_requests \
    telekit_serve_eap_requests telekit_serve_fct_requests; do
  if ! grep -q "${metric}" <<<"${STREAM_METRICS}"; then
    echo "streamd smoke: /metrics missing ${metric}"
    exit 1
  fi
done
kill "${STREAMD_PID}"
wait "${STREAMD_PID}" 2>/dev/null || true
trap - EXIT
rm -f "${STREAMD_LOG}"
echo "streamd smoke: OK (${EPISODES} episodes, 0 late drops, per-op serve metrics live)"

echo "== [9/9] router fleet smoke =="
REP1_PORT=18476; REP1_ADMIN=18477
REP2_PORT=18478; REP2_ADMIN=18479
ROUTER_PORT=18480; ROUTER_ADMIN=18481
REP1_LOG=$(mktemp); REP2_LOG=$(mktemp); ROUTER_LOG=$(mktemp)
ROUTER_REQLOG=$(mktemp)
./build/src/serve/telekit_serve --port="${REP1_PORT}" \
  --admin-port="${REP1_ADMIN}" --workers=2 --compute-threads=2 \
  >"${REP1_LOG}" 2>&1 &
REP1_PID=$!
./build/src/serve/telekit_serve --port="${REP2_PORT}" \
  --admin-port="${REP2_ADMIN}" --workers=2 --compute-threads=2 \
  >"${REP2_LOG}" 2>&1 &
REP2_PID=$!
cleanup_router() {
  kill -9 "${REP1_PID}" "${REP2_PID}" "${ROUTER_PID:-}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -f "${REP1_LOG}" "${REP2_LOG}" "${ROUTER_LOG}" "${ROUTER_REQLOG}"
}
trap cleanup_router EXIT

for _ in $(seq 1 60); do
  if curl -sf -m 2 "http://127.0.0.1:${REP1_ADMIN}/readyz" >/dev/null 2>&1 \
      && curl -sf -m 2 "http://127.0.0.1:${REP2_ADMIN}/readyz" \
        >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "${REP1_PID}" 2>/dev/null || ! kill -0 "${REP2_PID}" 2>/dev/null; then
    echo "router smoke: a replica died during startup:"
    cat "${REP1_LOG}" "${REP2_LOG}"
    exit 1
  fi
  sleep 1
done

./build/src/route/telekit_router --port="${ROUTER_PORT}" \
  --admin-port="${ROUTER_ADMIN}" \
  --replica="${REP1_PORT}:${REP1_ADMIN}" \
  --replica="${REP2_PORT}:${REP2_ADMIN}" \
  --probe-interval-ms=100 --eject-after=2 --readmit-after=2 \
  --request-log="${ROUTER_REQLOG}" \
  >"${ROUTER_LOG}" 2>&1 &
ROUTER_PID=$!
for _ in $(seq 1 30); do
  curl -sf -m 2 "http://127.0.0.1:${ROUTER_ADMIN}/readyz" \
    >/dev/null 2>&1 && break
  sleep 0.5
done

# Both replicas must be routable before the chaos starts, and each entry
# must carry its probe telemetry (probe freshness + failure streak).
FLEETZ=$(curl -sf -m 2 "http://127.0.0.1:${ROUTER_ADMIN}/fleetz")
if ! grep -q '"routable": 2' <<<"${FLEETZ}"; then
  echo "router smoke: /fleetz does not show 2 routable replicas: ${FLEETZ}"
  exit 1
fi
for field in last_probe_ms consecutive_failures; do
  if ! grep -q "\"${field}\"" <<<"${FLEETZ}"; then
    echo "router smoke: /fleetz missing per-replica ${field}: ${FLEETZ}"
    exit 1
  fi
done

# Traced traffic through the routed NDJSON path: every reply must be ok
# and carry the router's attribution stamp.
route_burst() {  # route_burst <count> -> echoes number of ok replies
  local count=$1 ok=0 reply
  exec 4<>"/dev/tcp/127.0.0.1/${ROUTER_PORT}"
  for i in $(seq 1 "${count}"); do
    printf '{"op": "rca", "text": "bgp flap on edge %s", "trace": true}\n' \
      "${i}" >&4
    IFS= read -r reply <&4 || break
    grep -Eq '"ok": ?true' <<<"${reply}" && ok=$((ok + 1))
  done
  exec 4<&- 4>&-
  echo "${ok}"
}
OK_BEFORE=$(route_burst 10)
if [[ "${OK_BEFORE}" -ne 10 ]]; then
  echo "router smoke: pre-kill traffic lost requests (${OK_BEFORE}/10)"
  exit 1
fi

# Retrieval ops ride the same routed path: the router keys on the query
# text, the replica answers from its own index.
retrieval_burst() {  # echoes number of ok retrieval replies (max 2)
  local ok=0 reply
  exec 4<>"/dev/tcp/127.0.0.1/${ROUTER_PORT}"
  printf '{"op": "retrieve", "text": "kpi deviation on core site", "top_k": 3}\n' >&4
  IFS= read -r reply <&4 || true
  if grep -Eq '"ok": ?true' <<<"${reply}" && grep -q '"docs"' <<<"${reply}"; then
    ok=$((ok + 1))
  fi
  printf '{"op": "troubleshoot", "text": "degradation after alarm storm", "top_k": 3}\n' >&4
  IFS= read -r reply <&4 || true
  if grep -Eq '"ok": ?true' <<<"${reply}" && grep -q '"results"' <<<"${reply}"; then
    ok=$((ok + 1))
  fi
  exec 4<&- 4>&-
  echo "${ok}"
}
RETRIEVAL_OK=$(retrieval_burst)
if [[ "${RETRIEVAL_OK}" -ne 2 ]]; then
  echo "router smoke: routed retrieve/troubleshoot failed (${RETRIEVAL_OK}/2)"
  exit 1
fi

# Fleet metrics aggregation: with both replicas idle after the burst, the
# fleet-wide rca counter must equal the sum of the per-replica counters.
FLEETMETRICZ=$(curl -sf -m 5 "http://127.0.0.1:${ROUTER_ADMIN}/fleetmetricz")
if ! grep -q '^telekit_fleet_replicas 2' <<<"${FLEETMETRICZ}"; then
  echo "router smoke: /fleetmetricz does not report 2 replicas"
  exit 1
fi
UP_COUNT=$(grep -c '^telekit_fleet_replica_up{replica="[^"]*"} 1' \
  <<<"${FLEETMETRICZ}" || true)
if [[ "${UP_COUNT}" -ne 2 ]]; then
  echo "router smoke: /fleetmetricz does not show both replicas up (${UP_COUNT})"
  exit 1
fi
REP1_RCA=$(curl -sf -m 2 "http://127.0.0.1:${REP1_ADMIN}/metrics" \
  | sed -n 's/^telekit_serve_rca_requests \([0-9.]*\).*/\1/p')
REP2_RCA=$(curl -sf -m 2 "http://127.0.0.1:${REP2_ADMIN}/metrics" \
  | sed -n 's/^telekit_serve_rca_requests \([0-9.]*\).*/\1/p')
FLEET_RCA=$(sed -n 's/^telekit_serve_rca_requests \([0-9.]*\).*/\1/p' \
  <<<"${FLEETMETRICZ}")
if ! awk -v a="${REP1_RCA:-0}" -v b="${REP2_RCA:-0}" -v f="${FLEET_RCA:-x}" \
    'BEGIN { exit (f == a + b && f > 0) ? 0 : 1 }'; then
  echo "router smoke: /fleetmetricz rca counter ${FLEET_RCA} != ${REP1_RCA} + ${REP2_RCA}"
  exit 1
fi

# SIGKILL one replica mid-fleet: traffic must keep succeeding via retry
# failover, and the ejection must land in the router's /metrics.
kill -9 "${REP2_PID}"

# Fire a spread of traced keys immediately — before the prober ejects the
# dead replica — so at least one request fails its first hop and retries.
exec 4<>"/dev/tcp/127.0.0.1/${ROUTER_PORT}"
for i in $(seq 1 12); do
  TRACE_HEX=$(printf '%016x' $((0xfeed0000 + i)))
  printf '{"op": "rca", "text": "link down on rack %s", "trace": "%s"}\n' \
    "${i}" "${TRACE_HEX}" >&4
  IFS= read -r _ <&4 || break
done
exec 4<&- 4>&-
# /tracezd assembles router attempt spans with the live replica's serve
# spans (scraped over /spanz); the retried request shows up as >= 2 hops
# with the losing hop marked failed.
MULTI_HOP_TRACE=""
TRACEZD=""
for i in $(seq 1 12); do
  TRACE_HEX=$(printf '%016x' $((0xfeed0000 + i)))
  TRACEZD=$(curl -sf -m 5 \
    "http://127.0.0.1:${ROUTER_ADMIN}/tracezd?trace_id=${TRACE_HEX}" || true)
  HOPS=$(sed -n 's/.*"hops": \([0-9]*\).*/\1/p' <<<"${TRACEZD}")
  if [[ -n "${HOPS}" && "${HOPS}" -ge 2 ]]; then
    MULTI_HOP_TRACE="${TRACE_HEX}"
    break
  fi
done
if [[ -z "${MULTI_HOP_TRACE}" ]]; then
  echo "router smoke: no traced request assembled a multi-hop retry trace"
  exit 1
fi
if ! grep -q '"outcome": "failed"' <<<"${TRACEZD}"; then
  echo "router smoke: multi-hop trace has no failed hop: ${TRACEZD}"
  exit 1
fi
if ! grep -q '"name": "serve/request"' <<<"${TRACEZD}"; then
  echo "router smoke: trace is missing the replica serve span: ${TRACEZD}"
  exit 1
fi
CHROME=$(curl -sf -m 5 "http://127.0.0.1:${ROUTER_ADMIN}/tracezd?trace_id=${MULTI_HOP_TRACE}&format=chrome")
if ! grep -q '"traceEvents"' <<<"${CHROME}"; then
  echo "router smoke: chrome trace export failed: ${CHROME}"
  exit 1
fi

OK_AFTER=$(route_burst 20)
if [[ "${OK_AFTER}" -ne 20 ]]; then
  echo "router smoke: post-kill traffic lost requests (${OK_AFTER}/20)"
  exit 1
fi
EJECTED=0
for _ in $(seq 1 30); do
  ROUTE_METRICS=$(curl -sf -m 2 "http://127.0.0.1:${ROUTER_ADMIN}/metrics")
  EJECTED=$(sed -n 's/^telekit_route_ejections \([0-9]*\).*/\1/p' \
    <<<"${ROUTE_METRICS}")
  [[ -n "${EJECTED}" && "${EJECTED}" -ge 1 ]] && break
  sleep 0.2
done
if [[ -z "${EJECTED}" || "${EJECTED}" -lt 1 ]]; then
  echo "router smoke: ejection never reached /metrics"
  exit 1
fi

# Hot reload fan-out through the router (the dead replica reports an
# error entry, the live one accepts): traffic across the swap must not
# fail, and a response must eventually carry the new generation.
RELOADZ=$(curl -sf -m 5 \
  "http://127.0.0.1:${ROUTER_ADMIN}/reloadz?model=telebert&seed=4343")
if ! grep -q '"status"' <<<"${RELOADZ}"; then
  echo "router smoke: /reloadz fan-out returned no replica statuses: ${RELOADZ}"
  exit 1
fi
GEN2_SEEN=0
for _ in $(seq 1 60); do
  OK_RELOAD=$(route_burst 5)
  if [[ "${OK_RELOAD}" -ne 5 ]]; then
    echo "router smoke: traffic failed during hot reload (${OK_RELOAD}/5)"
    exit 1
  fi
  RETRIEVAL_RELOAD=$(retrieval_burst)
  if [[ "${RETRIEVAL_RELOAD}" -ne 2 ]]; then
    echo "router smoke: retrieval failed during hot reload (${RETRIEVAL_RELOAD}/2)"
    exit 1
  fi
  exec 4<>"/dev/tcp/127.0.0.1/${ROUTER_PORT}"
  printf '{"op": "encode", "text": "post reload probe"}\n' >&4
  IFS= read -r RELOAD_REPLY <&4 || true
  exec 4<&- 4>&-
  if grep -Eq '"generation": ?2' <<<"${RELOAD_REPLY}"; then
    GEN2_SEEN=1
    break
  fi
  sleep 0.5
done
if [[ "${GEN2_SEEN}" -ne 1 ]]; then
  echo "router smoke: reload never produced a generation-2 response"
  exit 1
fi

# Drain: /quitquitquit answers, then the router exits on its own.
DRAIN=$(curl -sf -m 2 "http://127.0.0.1:${ROUTER_ADMIN}/quitquitquit")
if ! grep -q draining <<<"${DRAIN}"; then
  echo "router smoke: /quitquitquit did not acknowledge: ${DRAIN}"
  exit 1
fi
for _ in $(seq 1 30); do
  kill -0 "${ROUTER_PID}" 2>/dev/null || break
  sleep 0.5
done
if kill -0 "${ROUTER_PID}" 2>/dev/null; then
  echo "router smoke: router did not exit after /quitquitquit"
  exit 1
fi
kill -9 "${REP1_PID}" 2>/dev/null || true
wait 2>/dev/null || true
trap - EXIT

# The router's wide-event request log must be valid NDJSON and carry the
# routed attribution fields alongside the serve-side shape.
if [[ ! -s "${ROUTER_REQLOG}" ]]; then
  echo "router smoke: router --request-log sink is empty"
  exit 1
fi
if ! ./build/src/obs/telekit_jsonlint <"${ROUTER_REQLOG}"; then
  echo "router smoke: router --request-log NDJSON failed jsonlint"
  exit 1
fi
if ! grep -q '"attempts"' "${ROUTER_REQLOG}"; then
  echo "router smoke: router request log has no routed attempts field"
  exit 1
fi
rm -f "${REP1_LOG}" "${REP2_LOG}" "${ROUTER_LOG}" "${ROUTER_REQLOG}"
echo "router smoke: OK (fleet healthy + probe telemetry, fleet metrics sum," \
  "kill survived, retry trace assembled via /tracezd, ejection exported," \
  "hot reload zero-failure, drain clean, request log lints)"

if [[ "${TELEKIT_TSAN:-0}" == "1" ]]; then
  echo "== [tsan] ThreadSanitizer pass (tensor + serve + stream + route + index + obs + admin) =="
  cmake -B build_tsan -S . -DTELEKIT_TSAN=ON
  cmake --build build_tsan -j --target \
    tensor_test serve_test stream_test route_test index_test obs_test \
    obs_admin_test obs_timeseries_test
  TELEKIT_COMPUTE_THREADS=4 ./build_tsan/tests/tensor_test --gtest_brief=1
  TELEKIT_COMPUTE_THREADS=4 ./build_tsan/tests/serve_test --gtest_brief=1
  TELEKIT_COMPUTE_THREADS=4 ./build_tsan/tests/index_test --gtest_brief=1
  TELEKIT_COMPUTE_THREADS=4 ./build_tsan/tests/stream_test --gtest_brief=1
  TELEKIT_COMPUTE_THREADS=4 ./build_tsan/tests/route_test --gtest_brief=1
  ./build_tsan/tests/obs_test --gtest_brief=1
  ./build_tsan/tests/obs_admin_test --gtest_brief=1
  ./build_tsan/tests/obs_timeseries_test --gtest_brief=1
fi

echo "check_tier1: OK"

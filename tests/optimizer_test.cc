#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace telekit {
namespace tensor {
namespace {

TEST(SgdTest, SingleStepMatchesFormula) {
  Tensor w = Tensor::FromData({2}, {1.0f, 2.0f}, true);
  Sgd opt(/*lr=*/0.1f);
  opt.AddParameter(w);
  opt.ZeroGrad();
  Sum(Square(w)).Backward();  // grad = 2w
  opt.Step();
  EXPECT_FLOAT_EQ(w.at(static_cast<int64_t>(0)), 1.0f - 0.1f * 2.0f);
  EXPECT_FLOAT_EQ(w.at(static_cast<int64_t>(1)), 2.0f - 0.1f * 4.0f);
}

TEST(SgdTest, WeightDecayShrinks) {
  Tensor w = Tensor::FromData({1}, {10.0f}, true);
  Sgd opt(/*lr=*/0.1f, /*weight_decay=*/0.5f);
  opt.AddParameter(w);
  opt.ZeroGrad();
  Sum(MulScalar(w, 0.0f)).Backward();  // zero gradient
  opt.Step();
  // Only decay acts: w <- w - lr * wd * w.
  EXPECT_FLOAT_EQ(w.at(static_cast<int64_t>(0)), 10.0f - 0.1f * 0.5f * 10.0f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::FromData({3}, {5.0f, -3.0f, 1.0f}, true);
  Sgd opt(0.1f);
  opt.AddParameter(w);
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    Sum(Square(w)).Backward();
    opt.Step();
  }
  for (float v : w.data()) EXPECT_NEAR(v, 0.0f, 1e-4f);
}

TEST(AdamTest, ConvergesOnQuadraticWithTarget) {
  Rng rng(1);
  Tensor w = Tensor::Randn({4}, rng, 1.0f, true);
  Tensor target = Tensor::FromData({4}, {1.0f, -2.0f, 0.5f, 3.0f});
  Adam opt(0.05f);
  opt.AddParameter(w);
  for (int step = 0; step < 500; ++step) {
    opt.ZeroGrad();
    MseLoss(w, target).Backward();
    opt.Step();
  }
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.at(i), target.at(i), 1e-2f);
  }
}

TEST(AdamTest, FirstStepHasUnitScaleUpdate) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Tensor w = Tensor::FromData({1}, {0.0f}, true);
  Adam opt(0.1f);
  opt.AddParameter(w);
  opt.ZeroGrad();
  Sum(MulScalar(w, 3.0f)).Backward();  // grad = 3
  opt.Step();
  EXPECT_NEAR(w.at(static_cast<int64_t>(0)), -0.1f, 1e-4f);
}

TEST(AdamTest, DecoupledWeightDecayActsOnWeights) {
  Adam::Options options;
  options.lr = 0.0f;  // isolate the decay term: no gradient-driven update
  options.weight_decay = 0.1f;
  options.decoupled_weight_decay = true;
  Tensor w = Tensor::FromData({1}, {2.0f}, true);
  Adam opt(options);
  opt.AddParameter(w);
  opt.ZeroGrad();
  Sum(w).Backward();
  opt.Step();
  // update = lr*(adam term) + lr*wd*w = 0 since lr=0.
  EXPECT_FLOAT_EQ(w.at(static_cast<int64_t>(0)), 2.0f);
}

TEST(OptimizerTest, CountsParametersAndWeights) {
  Sgd opt(0.1f);
  opt.AddParameter(Tensor::Zeros({2, 3}, true));
  opt.AddParameter(Tensor::Zeros({5}, true));
  EXPECT_EQ(opt.num_parameters(), 2u);
  EXPECT_EQ(opt.num_weights(), 11);
}

TEST(OptimizerTest, ClipGradNormRescales) {
  Tensor w = Tensor::FromData({2}, {0.0f, 0.0f}, true);
  Sgd opt(1.0f);
  opt.AddParameter(w);
  opt.ZeroGrad();
  // Construct gradient (3, 4) -> norm 5.
  Sum(Mul(w, Tensor::FromData({2}, {3.0f, 4.0f}))).Backward();
  const float norm = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5f);
  EXPECT_NEAR(w.grad()[0], 3.0f / 5.0f, 1e-5f);
  EXPECT_NEAR(w.grad()[1], 4.0f / 5.0f, 1e-5f);
}

TEST(OptimizerTest, ClipBelowThresholdNoChange) {
  Tensor w = Tensor::FromData({1}, {0.0f}, true);
  Sgd opt(1.0f);
  opt.AddParameter(w);
  opt.ZeroGrad();
  Sum(MulScalar(w, 0.5f)).Backward();
  opt.ClipGradNorm(10.0f);
  EXPECT_FLOAT_EQ(w.grad()[0], 0.5f);
}

TEST(OptimizerTest, StepSkipsUntouchedParams) {
  // A parameter that never received gradient must not change or crash.
  Tensor used = Tensor::FromData({1}, {1.0f}, true);
  Tensor unused = Tensor::FromData({1}, {7.0f}, true);
  Adam opt(0.1f);
  opt.AddParameters({used, unused});
  opt.ZeroGrad();
  Sum(Square(used)).Backward();
  opt.Step();
  EXPECT_NE(used.at(static_cast<int64_t>(0)), 1.0f);
  EXPECT_FLOAT_EQ(unused.at(static_cast<int64_t>(0)), 7.0f);
}

TEST(OptimizerTest, LinearRegressionEndToEnd) {
  // y = 2x + 1 learned by Adam through MatMul/Add graph.
  Rng rng(3);
  Tensor w = Tensor::Randn({1, 1}, rng, 0.1f, true);
  Tensor b = Tensor::Zeros({1}, true);
  Adam opt(0.05f);
  opt.AddParameters({w, b});
  std::vector<float> xs, ys;
  for (int i = 0; i < 16; ++i) {
    const float x = static_cast<float>(i) / 8.0f - 1.0f;
    xs.push_back(x);
    ys.push_back(2.0f * x + 1.0f);
  }
  Tensor x = Tensor::FromData({16, 1}, xs);
  Tensor y = Tensor::FromData({16, 1}, ys);
  for (int step = 0; step < 800; ++step) {
    opt.ZeroGrad();
    Tensor pred = Add(MatMul(x, w), b);
    MseLoss(pred, y).Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.at(0, 0), 2.0f, 0.03f);
  EXPECT_NEAR(b.at(static_cast<int64_t>(0)), 1.0f, 0.03f);
}

}  // namespace
}  // namespace tensor
}  // namespace telekit

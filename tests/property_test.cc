// Property-based tests: invariants checked across parameterized sweeps of
// shapes, rates, and sizes (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "eval/metrics.h"
#include "kg/kge.h"
#include "synth/log.h"
#include "synth/world.h"
#include "tensor/ops.h"
#include "text/masking.h"
#include "text/numeric.h"
#include "text/tokenizer.h"

namespace telekit {
namespace {

using tensor::Shape;
using tensor::Tensor;

// --- Tensor-shape sweeps ---------------------------------------------------------

class TensorShapeProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TensorShapeProperty, TransposeIsInvolution) {
  const auto [m, n] = GetParam();
  Rng rng(m * 100 + n);
  Tensor a = Tensor::Randn({m, n}, rng);
  Tensor round_trip = tensor::Transpose(tensor::Transpose(a));
  EXPECT_EQ(round_trip.shape(), a.shape());
  EXPECT_EQ(round_trip.data(), a.data());
}

TEST_P(TensorShapeProperty, MatMulIdentityIsNoop) {
  const auto [m, n] = GetParam();
  Rng rng(m * 101 + n);
  Tensor a = Tensor::Randn({m, n}, rng);
  Tensor out = tensor::MatMul(a, Tensor::Eye(n));
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(out.at(i), a.at(i), 1e-5f);
  }
}

TEST_P(TensorShapeProperty, SoftmaxRowsAreDistributions) {
  const auto [m, n] = GetParam();
  Rng rng(m * 102 + n);
  Tensor s = tensor::Softmax(Tensor::Randn({m, n}, rng, 3.0f));
  for (int i = 0; i < m; ++i) {
    float total = 0;
    for (int j = 0; j < n; ++j) {
      EXPECT_GE(s.at(i, j), 0.0f);
      total += s.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST_P(TensorShapeProperty, LayerNormRowsStandardized) {
  const auto [m, n] = GetParam();
  if (n < 4) GTEST_SKIP() << "variance estimate too coarse";
  Rng rng(m * 103 + n);
  Tensor y = tensor::LayerNorm(Tensor::Randn({m, n}, rng, 5.0f),
                               Tensor::Ones({n}), Tensor::Zeros({n}));
  for (int i = 0; i < m; ++i) {
    float mean = 0;
    for (int j = 0; j < n; ++j) mean += y.at(i, j);
    mean /= static_cast<float>(n);
    EXPECT_NEAR(mean, 0.0f, 1e-3f);
  }
}

TEST_P(TensorShapeProperty, SumEqualsMeanTimesCount) {
  const auto [m, n] = GetParam();
  Rng rng(m * 104 + n);
  Tensor a = Tensor::Randn({m, n}, rng);
  EXPECT_NEAR(tensor::Sum(a).item(),
              tensor::Mean(a).item() * static_cast<float>(a.size()), 1e-2f);
}

TEST_P(TensorShapeProperty, ConcatThenSliceRecovers) {
  const auto [m, n] = GetParam();
  Rng rng(m * 105 + n);
  Tensor a = Tensor::Randn({m, n}, rng);
  Tensor b = Tensor::Randn({m, n}, rng);
  Tensor cat = tensor::ConcatRows({a, b});
  Tensor a2 = tensor::SliceRows(cat, 0, m);
  Tensor b2 = tensor::SliceRows(cat, m, m);
  EXPECT_EQ(a2.data(), a.data());
  EXPECT_EQ(b2.data(), b.data());
}

TEST_P(TensorShapeProperty, L2NormalizedRowsHaveUnitNorm) {
  const auto [m, n] = GetParam();
  Rng rng(m * 106 + n);
  Tensor y = tensor::L2NormalizeRows(Tensor::Randn({m, n}, rng, 2.0f));
  for (int i = 0; i < m; ++i) {
    float sq = 0;
    for (int j = 0; j < n; ++j) sq += y.at(i, j) * y.at(i, j);
    EXPECT_NEAR(std::sqrt(sq), 1.0f, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TensorShapeProperty,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{1, 8},
                                           std::tuple{3, 5}, std::tuple{8, 8},
                                           std::tuple{16, 4},
                                           std::tuple{7, 33}));

// --- Masking-rate sweep -----------------------------------------------------------

class MaskingRateProperty : public ::testing::TestWithParam<float> {};

TEST_P(MaskingRateProperty, BudgetRespectedAndLabelsConsistent) {
  const float rate = GetParam();
  text::Tokenizer tok(text::TokenizerOptions{.max_len = 32,
                                             .min_word_count = 1});
  std::vector<std::string> corpus = {
      "alpha beta gamma delta epsilon zeta eta theta iota kappa"};
  tok.BuildVocab(corpus);
  text::EncodedInput input = tok.EncodeSentence(corpus[0]);
  const int maskable = 10;
  Rng rng(static_cast<uint64_t>(rate * 1000));
  text::MaskingOptions options;
  options.mask_rate = rate;
  options.strategy = text::MaskingStrategy::kToken;
  for (int trial = 0; trial < 50; ++trial) {
    text::MaskedExample masked =
        text::ApplyMasking(input, tok.vocab(), options, rng);
    EXPECT_GE(masked.num_masked, 1);
    // Budget: at most ceil(rate * maskable) + one unit of overshoot.
    EXPECT_LE(masked.num_masked,
              static_cast<int>(rate * maskable) + 1);
    for (size_t i = 0; i < masked.ids.size(); ++i) {
      if (masked.labels[i] < 0) EXPECT_EQ(masked.ids[i], input.ids[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, MaskingRateProperty,
                         ::testing::Values(0.1f, 0.15f, 0.3f, 0.4f, 0.6f));

// --- Normalizer property sweep -------------------------------------------------------

class NormalizerProperty : public ::testing::TestWithParam<int> {};

TEST_P(NormalizerProperty, NormalizeIsMonotoneAndBounded) {
  const int num_obs = GetParam();
  Rng rng(static_cast<uint64_t>(num_obs));
  text::MinMaxNormalizer norm;
  for (int i = 0; i < num_obs; ++i) {
    norm.Observe("tag", static_cast<float>(rng.Uniform(-100, 100)));
  }
  float prev = -1.0f;
  for (float v = -150.0f; v <= 150.0f; v += 10.0f) {
    const float n = norm.Normalize("tag", v);
    EXPECT_GE(n, 0.0f);
    EXPECT_LE(n, 1.0f);
    EXPECT_GE(n, prev);  // monotone non-decreasing in v
    prev = n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NormalizerProperty,
                         ::testing::Values(2, 5, 50, 500));

// --- World-seed sweep ------------------------------------------------------------------

class WorldSeedProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorldSeedProperty, InvariantsHoldForAnySeed) {
  synth::WorldConfig config;
  config.seed = GetParam();
  config.num_alarm_types = 24;
  config.num_kpi_types = 12;
  config.num_network_elements = 15;
  synth::WorldModel world(config);
  // Acyclic trigger DAG.
  for (const synth::CausalEdge& e : world.causal_edges()) {
    if (e.kind == synth::CausalEdge::Kind::kAlarmTriggersAlarm) {
      EXPECT_LT(e.src_alarm, e.dst);
    }
    EXPECT_GT(e.confidence, 0.0f);
    EXPECT_LE(e.confidence, 1.0f);
  }
  // At least one root; every alarm affects some KPI.
  EXPECT_FALSE(world.RootAlarms().empty());
  for (const synth::AlarmType& alarm : world.alarms()) {
    EXPECT_FALSE(world.AffectedKpis(alarm.id).empty());
  }
  // Episodes respect the DAG.
  synth::LogGenerator logs(world, synth::LogConfig{});
  Rng rng(GetParam() ^ 0xABCDULL);
  for (int i = 0; i < 5; ++i) {
    synth::Episode episode = logs.Simulate(rng);
    for (const synth::AlarmEvent& event : episode.events) {
      if (event.parent_index < 0) continue;
      const synth::AlarmEvent& parent =
          episode.events[static_cast<size_t>(event.parent_index)];
      EXPECT_GT(event.time, parent.time);
      bool direct = false;
      for (const auto& [child, conf] :
           world.TriggeredAlarms(parent.alarm_type)) {
        direct |= child == event.alarm_type;
      }
      EXPECT_TRUE(direct);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSeedProperty,
                         ::testing::Values(1, 7, 42, 1234, 999999));

// --- KGE rank bounds -------------------------------------------------------------------

class KgeRankProperty : public ::testing::TestWithParam<int> {};

TEST_P(KgeRankProperty, RanksAlwaysInBounds) {
  const int num_entities = GetParam();
  kg::TripleStore store;
  for (int i = 0; i < num_entities; ++i) {
    store.AddEntity("e" + std::to_string(i));
  }
  const kg::RelationId r = store.AddRelation("r");
  for (int i = 0; i + 1 < num_entities; i += 2) store.AddTriple(i, r, i + 1);
  Rng rng(static_cast<uint64_t>(num_entities));
  kg::KgeOptions options;
  options.dim = 8;
  options.epochs = 5;
  kg::TranslationalKge kge(store.num_entities(), store.num_relations(),
                           options, rng);
  kg::NegativeSampler sampler(store);
  std::vector<kg::Quadruple> facts;
  for (const kg::Triple& t : store.triples()) {
    facts.push_back({t.head, t.relation, t.tail, 1.0f});
  }
  kge.Fit(facts, sampler, rng);
  std::vector<kg::EntityId> all;
  for (int i = 0; i < num_entities; ++i) all.push_back(i);
  for (const kg::Triple& t : store.triples()) {
    const double rank = kge.RankOfTail(t.head, t.relation, t.tail, all);
    EXPECT_GE(rank, 1.0);
    EXPECT_LE(rank, static_cast<double>(num_entities));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KgeRankProperty,
                         ::testing::Values(4, 10, 30, 100));

// --- Metric identities across sample sizes ------------------------------------------------

class MetricProperty : public ::testing::TestWithParam<int> {};

TEST_P(MetricProperty, RankingIdentities) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 31);
  eval::RankingAccumulator acc;
  for (int i = 0; i < n; ++i) {
    acc.AddRank(1.0 + static_cast<double>(rng.UniformInt(20)));
  }
  // MRR% >= Hits@1%, MR >= 1, Hits monotone in N.
  EXPECT_GE(100.0 * acc.MeanReciprocalRank(), acc.HitsAt(1) - 1e-9);
  EXPECT_GE(acc.MeanRank(), 1.0);
  double prev = 0;
  for (int k : {1, 2, 3, 5, 10, 20}) {
    const double hits = acc.HitsAt(k);
    EXPECT_GE(hits, prev);
    prev = hits;
  }
  EXPECT_NEAR(acc.HitsAt(21), 100.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MetricProperty,
                         ::testing::Values(1, 5, 32, 500));

}  // namespace
}  // namespace telekit

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "synth/signaling.h"
#include "synth/world.h"
#include "text/tokenizer.h"

namespace telekit {
namespace synth {
namespace {

WorldModel& TestWorld() {
  static WorldModel* const kWorld = new WorldModel(WorldConfig{.seed = 5});
  return *kWorld;
}

TEST(SignalingTest, ProcedureAlternatesRequestAnswer) {
  SignalingFlowGenerator gen(TestWorld(), SignalingConfig{});
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    auto records = gen.SimulateProcedure(rng);
    ASSERT_FALSE(records.empty());
    ASSERT_EQ(records.size() % 2, 0u);  // request/answer pairs
    for (size_t i = 0; i + 1 < records.size(); i += 2) {
      // Answer reverses the request direction.
      EXPECT_EQ(records[i].src_element, records[i + 1].dst_element);
      EXPECT_EQ(records[i].dst_element, records[i + 1].src_element);
      EXPECT_TRUE(records[i].success);  // requests always sent
      EXPECT_LT(records[i].time, records[i + 1].time);
    }
  }
}

TEST(SignalingTest, HopsFollowTopology) {
  SignalingFlowGenerator gen(TestWorld(), SignalingConfig{});
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    for (const SignalingRecord& r : gen.SimulateProcedure(rng)) {
      auto neighbors = TestWorld().TopologyNeighbors(r.src_element);
      EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), r.dst_element),
                neighbors.end());
    }
  }
}

TEST(SignalingTest, RejectAbortsProcedure) {
  SignalingConfig config;
  config.base_reject_rate = 1.0;  // every answer rejects
  SignalingFlowGenerator gen(TestWorld(), config);
  Rng rng(3);
  auto records = gen.SimulateProcedure(rng);
  ASSERT_EQ(records.size(), 2u);  // one request, one reject
  EXPECT_FALSE(records[1].success);
  EXPECT_NE(records[1].message.find("reject"), std::string::npos);
}

TEST(SignalingTest, FaultEpisodesRaiseRejectRate) {
  SignalingFlowGenerator gen(TestWorld(), SignalingConfig{});
  LogGenerator logs(TestWorld(), LogConfig{});
  Rng rng(4);
  auto is_answer = [](const SignalingRecord& r) {
    return r.message.find("reject") != std::string::npos ||
           r.message.find("accept") != std::string::npos ||
           r.message.find("answer") != std::string::npos ||
           r.message.find("complete") != std::string::npos;
  };
  int healthy_rejects = 0, faulty_rejects = 0;
  int healthy_total = 0, faulty_total = 0;
  for (int i = 0; i < 300; ++i) {
    for (const SignalingRecord& r : gen.SimulateProcedure(rng)) {
      if (!is_answer(r)) continue;
      ++healthy_total;
      healthy_rejects += !r.success;
    }
    Episode episode = logs.Simulate(rng);
    for (const SignalingRecord& r : gen.SimulateDuringEpisode(episode, rng)) {
      if (!is_answer(r)) continue;
      ++faulty_total;
      faulty_rejects += !r.success;
    }
  }
  ASSERT_GT(healthy_total, 0);
  ASSERT_GT(faulty_total, 0);
  const double healthy_rate =
      static_cast<double>(healthy_rejects) / healthy_total;
  const double faulty_rate = static_cast<double>(faulty_rejects) / faulty_total;
  EXPECT_GT(faulty_rate, healthy_rate);
}

TEST(SignalingTest, PromptUsesExistingTemplates) {
  SignalingFlowGenerator gen(TestWorld(), SignalingConfig{});
  Rng rng(6);
  auto records = gen.SimulateProcedure(rng);
  ASSERT_FALSE(records.empty());
  text::PromptSequence prompt = gen.ToPrompt(records[0]);
  // [DOC] text [LOC] text [ATTR] key | value -> 8 elements.
  ASSERT_EQ(prompt.size(), 8u);
  EXPECT_EQ(prompt[0].special_id, text::SpecialTokens::kDoc);
  EXPECT_EQ(prompt[2].special_id, text::SpecialTokens::kLoc);
  EXPECT_EQ(prompt[4].special_id, text::SpecialTokens::kAttr);
  EXPECT_NE(prompt[1].text.find("signaling"), std::string::npos);
}

TEST(SignalingTest, DeterministicForSeed) {
  SignalingFlowGenerator gen(TestWorld(), SignalingConfig{});
  Rng a(7), b(7);
  auto ra = gen.SimulateMany(5, a);
  auto rb = gen.SimulateMany(5, b);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].message, rb[i].message);
    EXPECT_EQ(ra[i].src_element, rb[i].src_element);
    EXPECT_EQ(ra[i].success, rb[i].success);
  }
}

}  // namespace
}  // namespace synth
}  // namespace telekit

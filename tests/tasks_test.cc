#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/service.h"
#include "synth/log.h"
#include "synth/task_data.h"
#include "synth/world.h"
#include "tasks/eap.h"
#include "tasks/fct.h"
#include "tasks/rca.h"
#include "tensor/ops.h"

namespace telekit {
namespace tasks {
namespace {

using tensor::Tensor;

synth::WorldModel& TestWorld() {
  static synth::WorldModel* const kWorld =
      new synth::WorldModel(synth::WorldConfig{.seed = 77});
  return *kWorld;
}

synth::LogGenerator& TestLogs() {
  static synth::LogGenerator* const kLogs =
      new synth::LogGenerator(TestWorld(), synth::LogConfig{});
  return *kLogs;
}

// Deterministic per-surface embeddings that carry *some* signal: hash the
// surface words. Stands in for service vectors in task unit tests.
std::vector<std::vector<float>> FakeEmbeddings(
    const std::vector<std::string>& surfaces, int dim, uint64_t seed) {
  std::vector<std::vector<float>> out;
  for (const std::string& s : surfaces) {
    uint64_t h = seed;
    for (char c : s) h = h * 131 + static_cast<unsigned char>(c);
    Rng rng(h);
    std::vector<float> v(static_cast<size_t>(dim));
    for (float& x : v) x = static_cast<float>(rng.Uniform(-1, 1));
    out.push_back(std::move(v));
  }
  return out;
}

// --- RCA ------------------------------------------------------------------------

synth::RcaDataset SmallRcaData(int num_graphs = 40) {
  synth::RcaDataGen gen(TestWorld(), TestLogs());
  Rng rng(5);
  return gen.Generate(synth::RcaDataConfig{.num_graphs = num_graphs}, rng);
}

TEST(RcaModelTest, NodeInitMatchesEq13) {
  synth::RcaStateGraph state;
  state.topology.num_nodes = 2;
  state.features = {{2, 0}, {0, 0}};  // node 0: event 0 twice; node 1: none
  state.root_node = 0;
  std::vector<std::vector<float>> embeddings = {{1, 3}, {5, 7}};
  Tensor h = RcaModel::NodeInit(state, embeddings);
  EXPECT_EQ(h.shape(), (tensor::Shape{2, 2}));
  // Node 0: (2 * e0) / 2 = e0.
  EXPECT_FLOAT_EQ(h.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(h.at(0, 1), 3.0f);
  // Node 1 has no events -> zero.
  EXPECT_FLOAT_EQ(h.at(1, 0), 0.0f);
}

TEST(RcaModelTest, NodeInitAveragesMultipleEvents) {
  synth::RcaStateGraph state;
  state.topology.num_nodes = 1;
  state.features = {{1, 3}};
  state.root_node = 0;
  std::vector<std::vector<float>> embeddings = {{4, 0}, {0, 4}};
  Tensor h = RcaModel::NodeInit(state, embeddings);
  // (1*e0 + 3*e1)/4 = (1, 3).
  EXPECT_FLOAT_EQ(h.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(h.at(0, 1), 3.0f);
}

TEST(RcaModelTest, ScoresShapeAndRank) {
  Rng rng(6);
  RcaOptions options;
  RcaModel model(8, options, rng);
  synth::RcaDataset data = SmallRcaData(3);
  auto embeddings = FakeEmbeddings(data.feature_surfaces, 8, 1);
  const synth::RcaStateGraph& g = data.graphs[0];
  Tensor scores = model.Scores(g, RcaModel::NodeInit(g, embeddings));
  EXPECT_EQ(scores.dim(0), g.topology.num_nodes);
  const double rank = model.RankOfRoot(g, embeddings);
  EXPECT_GE(rank, 1.0);
  EXPECT_LE(rank, static_cast<double>(g.topology.num_nodes));
}

TEST(RcaCrossValidationTest, BeatsRandomGuessing) {
  synth::RcaDataset data = SmallRcaData(60);
  // As with EAP, event identity needs dim >= #features to be separable.
  auto embeddings = FakeEmbeddings(data.feature_surfaces, 80, 2);
  RcaOptions options;
  options.epochs = 60;
  Rng rng(7);
  RcaResult result = RunRcaCrossValidation(data, embeddings, options, rng);
  // Random guessing would give MR ~ (n+1)/2 ~ 6 and Hits@1 ~ 9%.
  EXPECT_LT(result.mean_rank, 5.0);
  EXPECT_GT(result.hits1, 20.0);
  EXPECT_GE(result.hits3, result.hits1);
  EXPECT_GE(result.hits5, result.hits3);
}

// --- EAP -------------------------------------------------------------------------

synth::EapDataset SmallEapData() {
  synth::EapDataGen gen(TestWorld(), TestLogs());
  Rng rng(8);
  return gen.Generate(synth::EapDataConfig{.num_packages = 50}, rng);
}

TEST(EapModelTest, LogitShapeAndDeterminism) {
  synth::EapDataset data = SmallEapData();
  auto embeddings = FakeEmbeddings(data.event_surfaces, 8, 3);
  Rng rng(9);
  EapModel model(8, data, EapOptions{}, rng);
  ASSERT_FALSE(data.pairs.empty());
  Tensor l1 = model.PairLogits(data.pairs[0], embeddings);
  Tensor l2 = model.PairLogits(data.pairs[0], embeddings);
  EXPECT_EQ(l1.shape(), (tensor::Shape{1, 2}));
  EXPECT_EQ(l1.data(), l2.data());
}

TEST(EapModelTest, TimeDeltaInfluencesLogits) {
  synth::EapDataset data = SmallEapData();
  auto embeddings = FakeEmbeddings(data.event_surfaces, 8, 4);
  Rng rng(10);
  EapModel model(8, data, EapOptions{}, rng);
  EapPairInput a{.event_a = 0, .event_b = 1, .element_a = 0, .element_b = 1,
                 .time_delta = -1.0f};
  EapPairInput b = a;
  b.time_delta = 1.0f;
  Tensor la = model.PairLogits(a, embeddings);
  Tensor lb = model.PairLogits(b, embeddings);
  EXPECT_NE(la.data(), lb.data());
}

TEST(EapCrossValidationTest, LearnsAboveChance) {
  synth::EapDataset data = SmallEapData();
  // Embedding dim must be >= the number of events for a linear pair scorer
  // to represent event identity (as in the real 64-dim service vectors).
  auto embeddings = FakeEmbeddings(data.event_surfaces, 64, 5);
  EapOptions options;
  options.epochs = 30;
  Rng rng(11);
  EapResult result = RunEapCrossValidation(data, embeddings, options, rng);
  EXPECT_GT(result.accuracy, 55.0);  // chance = 50 on balanced pairs
  EXPECT_GT(result.f1, 55.0);
  EXPECT_LE(result.accuracy, 100.0);
}

// --- FCT -------------------------------------------------------------------------

synth::FctDataset SmallFctData() {
  synth::FctDataGen gen(TestWorld(), TestLogs());
  Rng rng(12);
  return gen.Generate(synth::FctDataConfig{.num_chains = 50}, rng);
}

TEST(FctTest, FilterCandidatesCoverSplits) {
  synth::FctDataset data = SmallFctData();
  auto candidates = FilterCandidates(data);
  EXPECT_FALSE(candidates.empty());
  EXPECT_LE(static_cast<int>(candidates.size()),
            data.store.num_entities());
  // Every test head/tail must be a candidate.
  std::set<kg::EntityId> set(candidates.begin(), candidates.end());
  for (const kg::Quadruple& q : data.test) {
    EXPECT_TRUE(set.count(q.head));
    EXPECT_TRUE(set.count(q.tail));
  }
}

TEST(FctTest, TrainingBeatsUntrained) {
  synth::FctDataset data = SmallFctData();
  FctOptions trained_options;
  trained_options.kge.epochs = 120;
  FctOptions untrained_options;
  untrained_options.kge.epochs = 0;
  Rng rng1(13), rng2(13);
  FctResult trained = RunFct(data, nullptr, trained_options, rng1);
  FctResult untrained = RunFct(data, nullptr, untrained_options, rng2);
  EXPECT_GT(trained.mrr, untrained.mrr);
  EXPECT_GE(trained.hits10, trained.hits1);
}

TEST(FctTest, EmbeddingInitChangesResult) {
  synth::FctDataset data = SmallFctData();
  auto embeddings = FakeEmbeddings(data.node_surfaces, 64, 6);
  FctOptions options;
  options.kge.epochs = 30;
  Rng rng1(14), rng2(14);
  FctResult with_init = RunFct(data, &embeddings, options, rng1);
  FctResult without = RunFct(data, nullptr, options, rng2);
  // Not asserting which is better with fake embeddings — only that the
  // initialization path is exercised and produces valid metrics.
  EXPECT_GE(with_init.mrr, 0.0);
  EXPECT_LE(with_init.mrr, 100.0);
  EXPECT_GE(without.mrr, 0.0);
}

TEST(FctTest, MetricsMonotone) {
  synth::FctDataset data = SmallFctData();
  FctOptions options;
  options.kge.epochs = 60;
  Rng rng(15);
  FctResult result = RunFct(data, nullptr, options, rng);
  EXPECT_LE(result.hits1, result.hits3);
  EXPECT_LE(result.hits3, result.hits10);
  EXPECT_GE(result.mrr, result.hits1);  // 1/r >= 1[r<=1] pointwise
}

}  // namespace
}  // namespace tasks
}  // namespace telekit

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "kg/kge_zoo.h"
#include "kg/store.h"

namespace telekit {
namespace kg {
namespace {

// Shared fixture: a chain KG plus distractors.
TripleStore ChainStore(int chain_len, int extra) {
  TripleStore store;
  for (int i = 0; i < chain_len + extra; ++i) {
    store.AddEntity("e" + std::to_string(i));
  }
  const RelationId r = store.AddRelation("next");
  for (int i = 0; i + 1 < chain_len; ++i) store.AddTriple(i, r, i + 1);
  return store;
}

std::vector<Quadruple> AllFacts(const TripleStore& store) {
  std::vector<Quadruple> out;
  for (const Triple& t : store.triples()) {
    out.push_back({t.head, t.relation, t.tail, 1.0f});
  }
  return out;
}

class KgeZooParam : public ::testing::TestWithParam<KgeModelKind> {};

TEST_P(KgeZooParam, TrainingReducesLoss) {
  TripleStore store = ChainStore(8, 4);
  Rng rng(1);
  KgeOptions options;
  options.dim = 16;
  auto model = MakeKgeModel(GetParam(), store.num_entities(),
                            store.num_relations(), options, rng);
  NegativeSampler sampler(store);
  auto facts = AllFacts(store);
  const float first = model->TrainEpoch(facts, sampler, rng);
  float last = first;
  for (int e = 0; e < 80; ++e) last = model->TrainEpoch(facts, sampler, rng);
  EXPECT_LT(last, first);
}

TEST_P(KgeZooParam, LearnsToRankTrueTails) {
  TripleStore store = ChainStore(8, 4);
  Rng rng(2);
  KgeOptions options;
  options.dim = 16;
  options.epochs = 150;
  auto model = MakeKgeModel(GetParam(), store.num_entities(),
                            store.num_relations(), options, rng);
  NegativeSampler sampler(store);
  model->Fit(AllFacts(store), sampler, rng);
  std::vector<EntityId> all;
  for (int i = 0; i < store.num_entities(); ++i) all.push_back(i);
  double mean_rank = 0;
  for (const Triple& t : store.triples()) {
    mean_rank += model->RankOfTail(t.head, t.relation, t.tail, all);
  }
  mean_rank /= static_cast<double>(store.triples().size());
  // 12 candidates; trained models must rank true tails clearly above the
  // random expectation (~6.5).
  EXPECT_LT(mean_rank, 4.5) << KgeModelKindName(GetParam());
}

TEST_P(KgeZooParam, DeterministicWithSeed) {
  TripleStore store = ChainStore(6, 2);
  KgeOptions options;
  options.dim = 8;
  options.epochs = 10;
  auto run = [&]() {
    Rng rng(3);
    auto model = MakeKgeModel(GetParam(), store.num_entities(),
                              store.num_relations(), options, rng);
    NegativeSampler sampler(store);
    Rng train(4);
    model->Fit(AllFacts(store), sampler, train);
    std::vector<float> scores;
    for (const Triple& t : store.triples()) {
      scores.push_back(model->Score(t.head, t.relation, t.tail));
    }
    return scores;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(KgeZooParam, RanksWithinBounds) {
  TripleStore store = ChainStore(5, 3);
  Rng rng(5);
  KgeOptions options;
  options.dim = 8;
  auto model = MakeKgeModel(GetParam(), store.num_entities(),
                            store.num_relations(), options, rng);
  std::vector<EntityId> all;
  for (int i = 0; i < store.num_entities(); ++i) all.push_back(i);
  for (const Triple& t : store.triples()) {
    const double rank = model->RankOfTail(t.head, t.relation, t.tail, all);
    EXPECT_GE(rank, 1.0);
    EXPECT_LE(rank, static_cast<double>(store.num_entities()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, KgeZooParam,
                         ::testing::Values(KgeModelKind::kTransE,
                                           KgeModelKind::kTransH,
                                           KgeModelKind::kRotatE,
                                           KgeModelKind::kDistMult),
                         [](const auto& info) {
                           return KgeModelKindName(info.param);
                         });

TEST(KgeZooTest, NamesAreDistinct) {
  EXPECT_EQ(KgeModelKindName(KgeModelKind::kTransE), "TransE");
  EXPECT_EQ(KgeModelKindName(KgeModelKind::kTransH), "TransH");
  EXPECT_EQ(KgeModelKindName(KgeModelKind::kRotatE), "RotatE");
  EXPECT_EQ(KgeModelKindName(KgeModelKind::kDistMult), "DistMult");
}

TEST(KgeZooTest, RotatERequiresEvenDim) {
  Rng rng(6);
  KgeOptions options;
  options.dim = 8;  // even: fine
  RotatE model(4, 2, options, rng);
  EXPECT_LE(model.Score(0, 0, 1), 0.0f);  // -distance is never positive
}

TEST(KgeZooTest, RotatERotationIsNormPreserving) {
  // |h * e^{i theta}| = |h|: the distance from t = rotated h is zero when
  // t equals the rotation, regardless of theta.
  Rng rng(7);
  KgeOptions options;
  options.dim = 4;
  options.init_scale = 0.5f;
  RotatE model(2, 1, options, rng);
  // Score(h, r, h-rotated) can't be tested without internals; instead test
  // the triangle property Score(a,r,a) <= 0 and determinism.
  const float s = model.Score(0, 0, 1);
  EXPECT_EQ(s, model.Score(0, 0, 1));
}

TEST(KgeZooTest, DistMultScoreIsSymmetricInHeadTail) {
  // DistMult's diagonal bilinear form is symmetric: s(h,r,t) = s(t,r,h).
  Rng rng(8);
  KgeOptions options;
  options.dim = 12;
  DistMult model(5, 2, options, rng);
  for (int h = 0; h < 5; ++h) {
    for (int t = 0; t < 5; ++t) {
      EXPECT_FLOAT_EQ(model.Score(h, 1, t), model.Score(t, 1, h));
    }
  }
}

TEST(KgeZooTest, ConfidenceScalesMarginForTranslationalModels) {
  TripleStore store = ChainStore(4, 2);
  KgeOptions options;
  options.dim = 8;
  options.confidence_alpha = 1.0f;
  NegativeSampler sampler(store);
  for (KgeModelKind kind :
       {KgeModelKind::kTransE, KgeModelKind::kTransH,
        KgeModelKind::kRotatE}) {
    Rng rng_a(9), rng_b(9);
    auto high = MakeKgeModel(kind, store.num_entities(),
                             store.num_relations(), options, rng_a);
    auto low = MakeKgeModel(kind, store.num_entities(),
                            store.num_relations(), options, rng_b);
    std::vector<Quadruple> high_conf, low_conf;
    for (const Triple& t : store.triples()) {
      high_conf.push_back({t.head, t.relation, t.tail, 1.0f});
      low_conf.push_back({t.head, t.relation, t.tail, 0.1f});
    }
    Rng train_a(10), train_b(10);
    const float loss_high = high->TrainEpoch(high_conf, sampler, train_a);
    const float loss_low = low->TrainEpoch(low_conf, sampler, train_b);
    EXPECT_LT(loss_low, loss_high) << KgeModelKindName(kind);
  }
}

}  // namespace
}  // namespace kg
}  // namespace telekit

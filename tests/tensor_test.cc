#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/rng.h"
#include "tensor/compute_pool.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace telekit {
namespace tensor {
namespace {

// --- Construction --------------------------------------------------------------

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  EXPECT_EQ(Tensor::Ones({4}).at(3), 1.0f);
  EXPECT_EQ(Tensor::Full({2, 2}, -2.5f).at(1, 1), -2.5f);
}

TEST(TensorTest, FromDataRowMajor) {
  Tensor t = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(3.25f).item(), 3.25f);
}

TEST(TensorTest, NegativeDimIndexing) {
  Tensor t = Tensor::Zeros({5, 7});
  EXPECT_EQ(t.dim(-1), 7);
  EXPECT_EQ(t.dim(-2), 5);
}

TEST(TensorTest, RandnStats) {
  Rng rng(1);
  Tensor t = Tensor::Randn({100, 100}, rng, 2.0f);
  double sum = 0, sq = 0;
  for (float v : t.data()) {
    sum += v;
    sq += v * v;
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n), 2.0, 0.05);
}

TEST(TensorTest, EyeIsIdentity) {
  Tensor eye = Tensor::Eye(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(eye.at(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorTest, GlorotWithinLimit) {
  Rng rng(2);
  Tensor w = Tensor::GlorotUniform(30, 40, rng);
  const float limit = std::sqrt(6.0f / 70.0f);
  for (float v : w.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LT(v, limit);
  }
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::Zeros({2});
  Tensor b = a;
  b.mutable_data()[0] = 9.0f;
  EXPECT_EQ(a.at(static_cast<int64_t>(0)), 9.0f);
}

TEST(TensorTest, DetachCopies) {
  Tensor a = Tensor::Ones({2}, /*requires_grad=*/true);
  Tensor d = a.Detach();
  EXPECT_FALSE(d.requires_grad());
  d.mutable_data()[0] = 5.0f;
  EXPECT_EQ(a.at(static_cast<int64_t>(0)), 1.0f);
}

// --- Forward ops -----------------------------------------------------------------

TEST(OpsTest, MatMulKnownValues) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsTest, MatMulIdentity) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 4}, rng);
  Tensor c = MatMul(a, Tensor::Eye(4));
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(c.at(i), a.at(i));
}

TEST(OpsTest, TransposeValues) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(t.at(2, 0), 3.0f);
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {6});
  EXPECT_EQ(r.rank(), 1);
  EXPECT_FLOAT_EQ(r.at(static_cast<int64_t>(5)), 6.0f);
}

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromData({2}, {1, 2});
  Tensor b = Tensor::FromData({2}, {10, 20});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.at(static_cast<int64_t>(0)), 11.0f);
  EXPECT_FLOAT_EQ(c.at(static_cast<int64_t>(1)), 22.0f);
}

TEST(OpsTest, AddRowBroadcast) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor bias = Tensor::FromData({2}, {10, 100});
  Tensor c = Add(a, bias);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 102.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 13.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 104.0f);
}

TEST(OpsTest, AddScalarBroadcast) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::Scalar(5.0f);
  Tensor c = Add(a, s);
  EXPECT_FLOAT_EQ(c.at(1, 1), 9.0f);
}

TEST(OpsTest, SubMulDiv) {
  Tensor a = Tensor::FromData({3}, {6, 8, 10});
  Tensor b = Tensor::FromData({3}, {2, 4, 5});
  EXPECT_FLOAT_EQ(Sub(a, b).at(static_cast<int64_t>(0)), 4.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).at(static_cast<int64_t>(1)), 32.0f);
  EXPECT_FLOAT_EQ(Div(a, b).at(static_cast<int64_t>(2)), 2.0f);
}

TEST(OpsTest, ScalarArithmetic) {
  Tensor a = Tensor::FromData({2}, {1, -2});
  EXPECT_FLOAT_EQ(AddScalar(a, 3.0f).at(static_cast<int64_t>(1)), 1.0f);
  EXPECT_FLOAT_EQ(MulScalar(a, -2.0f).at(static_cast<int64_t>(0)), -2.0f);
  EXPECT_FLOAT_EQ(Neg(a).at(static_cast<int64_t>(1)), 2.0f);
}

TEST(OpsTest, ActivationValues) {
  Tensor x = Tensor::FromData({3}, {-1.0f, 0.0f, 2.0f});
  Tensor r = Relu(x);
  EXPECT_FLOAT_EQ(r.at(static_cast<int64_t>(0)), 0.0f);
  EXPECT_FLOAT_EQ(r.at(static_cast<int64_t>(2)), 2.0f);
  Tensor s = Sigmoid(Tensor::Scalar(0.0f));
  EXPECT_FLOAT_EQ(s.item(), 0.5f);
  Tensor t = Tanh(Tensor::Scalar(100.0f));
  EXPECT_NEAR(t.item(), 1.0f, 1e-6f);
  // GELU(0)=0, GELU(large) ~ identity.
  EXPECT_NEAR(Gelu(Tensor::Scalar(0.0f)).item(), 0.0f, 1e-6f);
  EXPECT_NEAR(Gelu(Tensor::Scalar(10.0f)).item(), 10.0f, 1e-3f);
}

TEST(OpsTest, LogSigmoidStable) {
  EXPECT_NEAR(LogSigmoid(Tensor::Scalar(0.0f)).item(), std::log(0.5f), 1e-6f);
  // Very negative input must not overflow to -inf incorrectly.
  const float v = LogSigmoid(Tensor::Scalar(-50.0f)).item();
  EXPECT_NEAR(v, -50.0f, 1e-3f);
  EXPECT_NEAR(LogSigmoid(Tensor::Scalar(50.0f)).item(), 0.0f, 1e-6f);
}

TEST(OpsTest, ExpLogSqrtSquare) {
  EXPECT_NEAR(Exp(Tensor::Scalar(1.0f)).item(), std::exp(1.0f), 1e-5f);
  EXPECT_NEAR(Log(Tensor::Scalar(std::exp(2.0f))).item(), 2.0f, 1e-5f);
  EXPECT_FLOAT_EQ(Sqrt(Tensor::Scalar(9.0f)).item(), 3.0f);
  EXPECT_FLOAT_EQ(Square(Tensor::Scalar(-3.0f)).item(), 9.0f);
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(a).item(), 21.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 3.5f);
  Tensor mr = MeanRows(a);
  EXPECT_EQ(mr.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(mr.at(static_cast<int64_t>(0)), 2.5f);
  EXPECT_FLOAT_EQ(mr.at(static_cast<int64_t>(2)), 4.5f);
  Tensor sc = SumCols(a);
  EXPECT_EQ(sc.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(sc.at(static_cast<int64_t>(0)), 6.0f);
  EXPECT_FLOAT_EQ(sc.at(static_cast<int64_t>(1)), 15.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = Softmax(a);
  for (int i = 0; i < 2; ++i) {
    float total = 0;
    for (int j = 0; j < 3; ++j) total += s.at(i, j);
    EXPECT_NEAR(total, 1.0f, 1e-6f);
  }
  // Monotone in logits.
  EXPECT_GT(s.at(0, 2), s.at(0, 0));
}

TEST(OpsTest, SoftmaxShiftInvariant) {
  Tensor a = Tensor::FromData({1, 3}, {1, 2, 3});
  Tensor b = Tensor::FromData({1, 3}, {1001, 1002, 1003});
  Tensor sa = Softmax(a), sb = Softmax(b);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(sa.at(0, j), sb.at(0, j), 1e-6f);
}

TEST(OpsTest, LayerNormNormalizes) {
  Rng rng(5);
  Tensor x = Tensor::Randn({4, 16}, rng, 3.0f);
  Tensor g = Tensor::Ones({16});
  Tensor b = Tensor::Zeros({16});
  Tensor y = LayerNorm(x, g, b);
  for (int i = 0; i < 4; ++i) {
    float mean = 0, var = 0;
    for (int j = 0; j < 16; ++j) mean += y.at(i, j);
    mean /= 16;
    for (int j = 0; j < 16; ++j) {
      var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(OpsTest, LayerNormGainBiasApplied) {
  Tensor x = Tensor::FromData({1, 2}, {-1, 1});
  Tensor g = Tensor::FromData({2}, {2, 2});
  Tensor b = Tensor::FromData({2}, {10, 10});
  Tensor y = LayerNorm(x, g, b);
  EXPECT_NEAR(y.at(0, 0), 10.0f - 2.0f, 1e-3f);
  EXPECT_NEAR(y.at(0, 1), 10.0f + 2.0f, 1e-3f);
}

TEST(OpsTest, DropoutEvalIsIdentity) {
  Rng rng(6);
  Tensor x = Tensor::Ones({10});
  Tensor y = Dropout(x, 0.5f, rng, /*training=*/false);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(y.at(i), 1.0f);
}

TEST(OpsTest, DropoutTrainZerosAndRescales) {
  Rng rng(7);
  Tensor x = Tensor::Ones({2000});
  Tensor y = Dropout(x, 0.25f, rng, /*training=*/true);
  int zeros = 0;
  double total = 0;
  for (int64_t i = 0; i < y.size(); ++i) {
    const float v = y.at(i);
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 1.0f / 0.75f) < 1e-6f);
    zeros += (v == 0.0f);
    total += v;
  }
  EXPECT_NEAR(zeros / 2000.0, 0.25, 0.05);
  EXPECT_NEAR(total / 2000.0, 1.0, 0.05);  // expectation preserved
}

TEST(OpsTest, ConcatRows) {
  Tensor a = Tensor::FromData({1, 2}, {1, 2});
  Tensor b = Tensor::FromData({2, 2}, {3, 4, 5, 6});
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(c.at(2, 1), 6.0f);
}

TEST(OpsTest, ConcatRowsRank1AsRow) {
  Tensor a = Tensor::FromData({3}, {1, 2, 3});
  Tensor b = Tensor::FromData({3}, {4, 5, 6});
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.at(1, 0), 4.0f);
}

TEST(OpsTest, ConcatCols) {
  Tensor a = Tensor::FromData({2, 1}, {1, 2});
  Tensor b = Tensor::FromData({2, 2}, {3, 4, 5, 6});
  Tensor c = ConcatCols({a, b});
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 5.0f);
}

TEST(OpsTest, ConcatVec) {
  Tensor c = ConcatVec({Tensor::FromData({2}, {1, 2}),
                        Tensor::FromData({1}, {3})});
  EXPECT_EQ(c.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(c.at(static_cast<int64_t>(2)), 3.0f);
}

TEST(OpsTest, SliceRowsAndCols) {
  Tensor a = Tensor::FromData({3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor r = SliceRows(a, 1, 2);
  EXPECT_EQ(r.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(r.at(0, 0), 4.0f);
  Tensor c = SliceCols(a, 1, 1);
  EXPECT_EQ(c.shape(), (Shape{3, 1}));
  EXPECT_FLOAT_EQ(c.at(2, 0), 8.0f);
}

TEST(OpsTest, GatherRowsWithDuplicates) {
  Tensor a = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 6.0f);
}

TEST(OpsTest, RowExtracts) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Row(a, 1);
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(r.at(static_cast<int64_t>(2)), 6.0f);
}

TEST(OpsTest, L2NormalizeRowsUnitNorm) {
  Tensor a = Tensor::FromData({2, 2}, {3, 4, 0, 5});
  Tensor n = L2NormalizeRows(a);
  EXPECT_NEAR(n.at(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(n.at(0, 1), 0.8f, 1e-5f);
  EXPECT_NEAR(n.at(1, 1), 1.0f, 1e-5f);
}

TEST(OpsTest, EmbeddingLookup) {
  Tensor table = Tensor::FromData({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor e = EmbeddingLookup(table, {1, 1, 2});
  EXPECT_EQ(e.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(e.at(0, 1), 11.0f);
  EXPECT_FLOAT_EQ(e.at(2, 0), 20.0f);
}

// --- Losses ---------------------------------------------------------------------

TEST(LossTest, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor loss = CrossEntropyWithLogits(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(LossTest, CrossEntropyIgnoresMinusOne) {
  Tensor logits = Tensor::FromData({2, 2}, {100, 0, 0, 100});
  // Second row ignored; first row is (almost) perfectly correct.
  Tensor loss = CrossEntropyWithLogits(logits, {0, -1});
  EXPECT_NEAR(loss.item(), 0.0f, 1e-5f);
}

TEST(LossTest, CrossEntropyPenalizesWrongLabel) {
  Tensor logits = Tensor::FromData({1, 2}, {10, -10});
  const float good = CrossEntropyWithLogits(logits, {0}).item();
  const float bad = CrossEntropyWithLogits(logits, {1}).item();
  EXPECT_LT(good, 1e-4f);
  EXPECT_GT(bad, 10.0f);
}

TEST(LossTest, BceWithLogitsSymmetry) {
  Tensor z = Tensor::FromData({1}, {0.0f});
  EXPECT_NEAR(BceWithLogits(z, {1.0f}).item(), std::log(2.0f), 1e-5f);
  EXPECT_NEAR(BceWithLogits(z, {0.0f}).item(), std::log(2.0f), 1e-5f);
}

TEST(LossTest, LogisticLossCorrectSide) {
  Tensor s = Tensor::FromData({2}, {5.0f, -5.0f});
  // Correctly classified pairs have tiny loss.
  EXPECT_LT(LogisticLoss(s, {1.0f, -1.0f}).item(), 0.01f);
  // Misclassified pairs have large loss.
  EXPECT_GT(LogisticLoss(s, {-1.0f, 1.0f}).item(), 4.0f);
}

TEST(LossTest, MseZeroForEqual) {
  Tensor a = Tensor::FromData({3}, {1, 2, 3});
  EXPECT_FLOAT_EQ(MseLoss(a, a.Detach()).item(), 0.0f);
  Tensor b = Tensor::FromData({3}, {2, 3, 4});
  EXPECT_FLOAT_EQ(MseLoss(a, b).item(), 1.0f);
}

// --- Serialization -----------------------------------------------------------------

TEST(SerializeTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tensors.bin";
  TensorMap tensors;
  tensors["w"] = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  tensors["b"] = Tensor::FromData({3}, {-1, 0, 1});
  ASSERT_TRUE(SaveTensorMap(tensors, path).ok());
  auto loaded = LoadTensorMap(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->at("w").shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(loaded->at("w").at(1, 2), 6.0f);
  EXPECT_FLOAT_EQ(loaded->at("b").at(static_cast<int64_t>(0)), -1.0f);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadMissingFileFails) {
  auto loaded = LoadTensorMap("/nonexistent/path/x.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SerializeTest, RestoreIntoMatchingModel) {
  const std::string path = ::testing::TempDir() + "/restore.bin";
  TensorMap saved;
  saved["w"] = Tensor::FromData({2}, {7, 8});
  ASSERT_TRUE(SaveTensorMap(saved, path).ok());
  auto loaded = LoadTensorMap(path);
  ASSERT_TRUE(loaded.ok());
  TensorMap target;
  target["w"] = Tensor::Zeros({2}, /*requires_grad=*/true);
  ASSERT_TRUE(RestoreInto(*loaded, target).ok());
  EXPECT_FLOAT_EQ(target["w"].at(static_cast<int64_t>(1)), 8.0f);
  EXPECT_TRUE(target["w"].requires_grad());  // grad flag survives restore
  std::remove(path.c_str());
}

TEST(SerializeTest, RestoreShapeMismatchFails) {
  TensorMap source;
  source["w"] = Tensor::Zeros({2});
  TensorMap target;
  target["w"] = Tensor::Zeros({3});
  EXPECT_FALSE(RestoreInto(source, target).ok());
}

TEST(SerializeTest, RestoreMissingNameFails) {
  TensorMap source;
  TensorMap target;
  target["w"] = Tensor::Zeros({1});
  EXPECT_EQ(RestoreInto(source, target).code(), StatusCode::kNotFound);
}

// --- Row-wise op rank contract ----------------------------------------------

// Tensor constructors reject rank >= 3 up front, so reaching the row-wise
// ops with a bad rank requires wrapping a raw node — exactly what the ops'
// own checks defend against (they previously mis-strode such input as one
// flat row).
Tensor Rank3Tensor() {
  auto node = std::make_shared<internal::Node>();
  node->shape = {2, 3, 4};
  node->value.assign(24, 0.0f);
  return Tensor::FromNode(node);
}

TEST(OpsDeathTest, ConstructorRejectsRank3) {
  EXPECT_DEATH(Tensor::Zeros({2, 3, 4}), "rank <= 2");
}

TEST(OpsDeathTest, SoftmaxRejectsRank3) {
  EXPECT_DEATH(Softmax(Rank3Tensor()), "rank <= 2");
}

TEST(OpsDeathTest, LayerNormRejectsRank3) {
  Tensor gain = Tensor::Ones({4});
  Tensor bias = Tensor::Zeros({4});
  EXPECT_DEATH(LayerNorm(Rank3Tensor(), gain, bias, 1e-5f), "rank <= 2");
}

TEST(OpsDeathTest, L2NormalizeRowsRejectsRank3) {
  EXPECT_DEATH(L2NormalizeRows(Rank3Tensor(), 1e-6f), "rank <= 2");
}

// --- ComputePool determinism --------------------------------------------------

// Forward values + leaf gradients from one composite graph covering every
// parallelized kernel: tiled MatMul (forward and both backward transposes),
// Softmax, LayerNorm, GELU/Sigmoid and the elementwise broadcasts, the
// embedding gather/scatter with duplicate rows, and L2NormalizeRows. Sized
// so ParallelFor genuinely fans out (matmul rows, >16k-element elementwise
// loops, grouped scatter).
struct OpSuiteResult {
  std::vector<std::vector<float>> values;
  std::vector<std::vector<float>> grads;

  bool BitIdentical(const OpSuiteResult& other) const {
    if (values.size() != other.values.size() ||
        grads.size() != other.grads.size()) {
      return false;
    }
    auto same = [](const std::vector<float>& x, const std::vector<float>& y) {
      return x.size() == y.size() &&
             std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0;
    };
    for (size_t i = 0; i < values.size(); ++i) {
      if (!same(values[i], other.values[i])) return false;
    }
    for (size_t i = 0; i < grads.size(); ++i) {
      if (!same(grads[i], other.grads[i])) return false;
    }
    return true;
  }
};

OpSuiteResult RunOpSuite() {
  constexpr int kDim = 160;
  Rng rng(7);
  Tensor a = Tensor::Randn({kDim, kDim}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({kDim, kDim}, rng, 1.0f, true);
  Tensor gain = Tensor::Randn({kDim}, rng, 1.0f, true);
  Tensor bias = Tensor::Randn({kDim}, rng, 1.0f, true);
  Tensor row = Tensor::Randn({kDim}, rng, 1.0f, true);
  Tensor table = Tensor::Randn({50, kDim}, rng, 1.0f, true);

  Tensor h = MatMul(a, b);
  Tensor hr = Add(h, row);  // kRow broadcast
  Tensor act = Gelu(hr);
  Tensor ln = LayerNorm(act, gain, bias, 1e-5f);
  Tensor sm = Softmax(ln);
  std::vector<int> indices;
  for (int i = 0; i < 1000; ++i) indices.push_back((i * 7) % 50);  // dups
  Tensor gathered = GatherRows(table, indices);
  Tensor cov = MatMul(Transpose(gathered), gathered);  // [kDim, kDim]
  Tensor mixed = Mul(sm, Sigmoid(MulScalar(cov, 0.01f)));  // kSame
  Tensor normed = L2NormalizeRows(mixed, 1e-6f);
  Tensor loss = Add(Mean(Square(normed)), Mean(Mul(normed, act)));
  loss.Backward();

  OpSuiteResult result;
  result.values = {h.data(),  act.data(),    ln.data(),  sm.data(),
                   cov.data(), normed.data(), loss.data()};
  result.grads = {a.grad(),   b.grad(),   gain.grad(),
                  bias.grad(), row.grad(), table.grad()};
  return result;
}

TEST(ComputePoolTest, OpSuiteBitIdenticalAcrossThreadCounts) {
  const int previous = ComputeThreads();
  SetComputeThreads(1);
  const OpSuiteResult serial = RunOpSuite();
  for (int threads : {2, 4}) {
    SetComputeThreads(threads);
    const OpSuiteResult parallel = RunOpSuite();
    EXPECT_TRUE(parallel.BitIdentical(serial))
        << "results diverged at compute_threads=" << threads;
  }
  SetComputeThreads(previous);
}

TEST(ComputePoolTest, RepeatedRunsAreDeterministic) {
  const int previous = ComputeThreads();
  SetComputeThreads(4);
  const OpSuiteResult first = RunOpSuite();
  const OpSuiteResult second = RunOpSuite();
  EXPECT_TRUE(first.BitIdentical(second));
  SetComputeThreads(previous);
}

TEST(ComputePoolTest, SetComputeThreadsRoundTrips) {
  const int previous = ComputeThreads();
  SetComputeThreads(3);
  EXPECT_EQ(ComputeThreads(), 3);
  SetComputeThreads(0);  // back to env / hardware default
  EXPECT_GE(ComputeThreads(), 1);
  SetComputeThreads(previous);
}

TEST(ComputePoolTest, MatMulKnownValuesUnderThreads) {
  const int previous = ComputeThreads();
  SetComputeThreads(4);
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
  SetComputeThreads(previous);
}

// --- simd kernels ------------------------------------------------------------

/// Restores the process-wide backend on scope exit so SIMD tests cannot
/// leak a forced backend into later tests.
class BackendGuard {
 public:
  BackendGuard() : previous_(simd::ActiveBackend()) {}
  ~BackendGuard() { simd::ForceBackend(previous_); }

 private:
  simd::Backend previous_;
};

std::vector<float> RandomVec(int n, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  return v;
}

// Sizes straddling the 8-lane AVX2 / 4-lane NEON width: remainder lanes,
// single element, exactly one vector, just over/under a vector.
const int kSimdSizes[] = {1, 3, 7, 8, 9, 16, 31, 100};

TEST(SimdKernelTest, VectorBackendAgreesWithScalarWithinEps) {
  if (simd::DetectBackend() == simd::Backend::kScalar) {
    GTEST_SKIP() << "no vector backend on this CPU/build";
  }
  BackendGuard guard;
  Rng rng(11);
  for (int n : kSimdSizes) {
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);

    simd::ForceBackend(simd::Backend::kScalar);
    const float dot_s = simd::Dot(a.data(), b.data(), n);
    const float max_s = simd::ReduceMax(a.data(), n);
    const float sum_s = simd::ReduceSum(a.data(), n);
    const float ssq_s = simd::ReduceSumSqDiff(a.data(), 0.25f, n);
    std::vector<float> add_s(a.size()), axpy_s = b;
    simd::Add(a.data(), b.data(), add_s.data(), n);
    simd::Axpy(0.5f, a.data(), axpy_s.data(), n);

    simd::ForceBackend(simd::DetectBackend());
    const float dot_v = simd::Dot(a.data(), b.data(), n);
    const float max_v = simd::ReduceMax(a.data(), n);
    const float sum_v = simd::ReduceSum(a.data(), n);
    const float ssq_v = simd::ReduceSumSqDiff(a.data(), 0.25f, n);
    std::vector<float> add_v(a.size()), axpy_v = b;
    simd::Add(a.data(), b.data(), add_v.data(), n);
    simd::Axpy(0.5f, a.data(), axpy_v.data(), n);

    // Reductions reassociate into lanes: epsilon-bounded, not bit-equal.
    const float eps = 1e-4f * static_cast<float>(n);
    EXPECT_NEAR(dot_v, dot_s, eps) << "n=" << n;
    EXPECT_NEAR(sum_v, sum_s, eps) << "n=" << n;
    EXPECT_NEAR(ssq_v, ssq_s, eps) << "n=" << n;
    // Max is order-independent: bit-equal.
    EXPECT_EQ(max_v, max_s) << "n=" << n;
    // Per-element ops are bit-exact across backends...
    EXPECT_EQ(add_v, add_s) << "n=" << n;
    // ...except Axpy, where FMA fuses the multiply-add rounding.
    for (size_t i = 0; i < axpy_s.size(); ++i) {
      EXPECT_NEAR(axpy_v[i], axpy_s[i], 1e-5f) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernelTest, ElementwiseKernelsBitExactAcrossBackends) {
  if (simd::DetectBackend() == simd::Backend::kScalar) {
    GTEST_SKIP() << "no vector backend on this CPU/build";
  }
  BackendGuard guard;
  Rng rng(12);
  for (int n : kSimdSizes) {
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    std::vector<float> s(a.size()), v(a.size());

    const auto run_both = [&](auto kernel) {
      simd::ForceBackend(simd::Backend::kScalar);
      kernel(s.data());
      simd::ForceBackend(simd::DetectBackend());
      kernel(v.data());
      EXPECT_EQ(s, v) << "n=" << n;
    };
    run_both([&](float* out) { simd::Sub(a.data(), b.data(), out, n); });
    run_both([&](float* out) { simd::Mul(a.data(), b.data(), out, n); });
    run_both([&](float* out) { simd::ScaleTo(a.data(), 1.5f, out, n); });
    run_both([&](float* out) { simd::AddScalarTo(a.data(), -0.75f, out, n); });
    run_both([&](float* out) { simd::ReluTo(a.data(), out, n); });
  }
}

TEST(SimdKernelTest, EmptyInputsAreSafe) {
  BackendGuard guard;
  std::vector<float> out(1, 42.0f);
  EXPECT_EQ(simd::Dot(out.data(), out.data(), 0), 0.0f);
  EXPECT_EQ(simd::ReduceSum(out.data(), 0), 0.0f);
  simd::Add(out.data(), out.data(), out.data(), 0);
  simd::Axpy(2.0f, out.data(), out.data(), 0);
  EXPECT_EQ(out[0], 42.0f);
  EXPECT_EQ(simd::DotI8(nullptr, nullptr, 0), 0);
}

TEST(SimdKernelTest, NormalizeAffineMatchesScalarLayerNormPath) {
  if (simd::DetectBackend() == simd::Backend::kScalar) {
    GTEST_SKIP() << "no vector backend on this CPU/build";
  }
  BackendGuard guard;
  Rng rng(13);
  for (int n : kSimdSizes) {
    const std::vector<float> x = RandomVec(n, rng);
    const std::vector<float> gain = RandomVec(n, rng);
    const std::vector<float> bias = RandomVec(n, rng);
    const float mean = simd::ReduceSum(x.data(), n) / static_cast<float>(n);
    const float istd = 0.8f;
    std::vector<float> xhat_s(x.size()), out_s(x.size());
    std::vector<float> xhat_v(x.size()), out_v(x.size());
    simd::ForceBackend(simd::Backend::kScalar);
    simd::NormalizeAffine(x.data(), mean, istd, gain.data(), bias.data(),
                          xhat_s.data(), out_s.data(), n);
    simd::ForceBackend(simd::DetectBackend());
    simd::NormalizeAffine(x.data(), mean, istd, gain.data(), bias.data(),
                          xhat_v.data(), out_v.data(), n);
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(out_v[i], out_s[i], 1e-5f) << "n=" << n << " i=" << i;
      EXPECT_NEAR(xhat_v[i], xhat_s[i], 1e-6f) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernelTest, DotI8BitIdenticalAcrossBackends) {
  if (simd::DetectBackend() == simd::Backend::kScalar) {
    GTEST_SKIP() << "no vector backend on this CPU/build";
  }
  BackendGuard guard;
  Rng rng(14);
  for (int n : kSimdSizes) {
    std::vector<int8_t> a(static_cast<size_t>(n)), b(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] =
          static_cast<int8_t>(rng.UniformInt(255) - 127);
      b[static_cast<size_t>(i)] =
          static_cast<int8_t>(rng.UniformInt(255) - 127);
    }
    simd::ForceBackend(simd::Backend::kScalar);
    const int32_t scalar = simd::DotI8(a.data(), b.data(), n);
    simd::ForceBackend(simd::DetectBackend());
    // Integer accumulation: exact, so backends agree to the bit.
    EXPECT_EQ(simd::DotI8(a.data(), b.data(), n), scalar) << "n=" << n;
  }
}

TEST(SimdKernelTest, QuantizeRowProperties) {
  BackendGuard guard;
  Rng rng(15);
  // All-zero row quantizes to scale 0 and an all-zero payload.
  std::vector<int8_t> q(16);
  std::vector<float> zeros(16, 0.0f);
  EXPECT_EQ(simd::QuantizeRow(zeros.data(), 16, 0.0f, q.data()), 0.0f);
  for (int8_t v : q) EXPECT_EQ(v, 0);

  const std::vector<float> x = RandomVec(16, rng);
  float max_abs = 0.0f;
  for (float v : x) max_abs = std::max(max_abs, std::fabs(v));

  // Unclipped: scale = maxabs/127 and the round trip stays within scale/2.
  const float scale = simd::QuantizeRow(x.data(), 16, 0.0f, q.data());
  EXPECT_FLOAT_EQ(scale, max_abs / 127.0f);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(static_cast<float>(q[i]) * scale, x[i], scale * 0.5f + 1e-7f);
    EXPECT_GE(q[i], -127);
    EXPECT_LE(q[i], 127);
  }

  // A clip below maxabs bounds the scale and saturates the outliers.
  const float clip = max_abs * 0.5f;
  const float clipped_scale = simd::QuantizeRow(x.data(), 16, clip, q.data());
  EXPECT_FLOAT_EQ(clipped_scale, clip / 127.0f);
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x[i]) >= clip) {
      EXPECT_EQ(std::abs(static_cast<int>(q[i])), 127) << "i=" << i;
    }
  }
}

// The vectorized MatMul must stay bit-identical across ComputePool thread
// counts: the chunk grid is fixed per (n, grain) and each chunk's result
// depends only on its operands.
TEST(SimdKernelTest, MatMulBitIdenticalAcrossThreadCountsOnSimdPath) {
  BackendGuard guard;
  simd::ForceBackend(simd::DetectBackend());
  Rng rng(16);
  Tensor a = Tensor::Randn({64, 96}, rng, 1.0f);
  Tensor b = Tensor::Randn({96, 80}, rng, 1.0f);
  const int previous = ComputeThreads();
  SetComputeThreads(1);
  const std::vector<float> serial = MatMul(a, b).data();
  for (int threads : {2, 4}) {
    SetComputeThreads(threads);
    EXPECT_EQ(MatMul(a, b).data(), serial) << "threads=" << threads;
  }
  SetComputeThreads(previous);
}

}  // namespace
}  // namespace tensor
}  // namespace telekit

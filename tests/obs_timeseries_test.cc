// Tests for the observability additions of ISSUE 6: the time-series
// store's ring buffers and counter-delta math, the SLO engine's burn-rate
// boundaries and alert state machine (driven with synthetic SampleNow
// ticks, no wall clock), the wide-event request log and its NDJSON
// round-trip, the exemplar store, and a sampler-vs-writer concurrency
// test that the TSan gate exercises.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace telekit {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// TimeSeriesStore

TEST(TimeSeriesStoreTest, SweepCapturesCountersGaugesAndQuantiles) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  registry.GetCounter("tst/sweep_requests").Increment(7);
  registry.GetGauge("tst/sweep_depth").Set(3.5);
  LatencyHistogram& latency = registry.GetLatencyHistogram("tst/sweep_ms");
  for (int i = 0; i < 100; ++i) latency.Observe(10.0);

  TimeSeriesStore store;
  store.SampleNow(1.0);

  const auto counter = store.SeriesSamples("tst/sweep_requests");
  ASSERT_EQ(counter.size(), 1u);
  EXPECT_DOUBLE_EQ(counter[0].t_s, 1.0);
  EXPECT_DOUBLE_EQ(counter[0].value, 7.0);

  const auto gauge = store.SeriesSamples("tst/sweep_depth");
  ASSERT_EQ(gauge.size(), 1u);
  EXPECT_DOUBLE_EQ(gauge[0].value, 3.5);

  const auto p50 = store.SeriesSamples("tst/sweep_ms/p50");
  ASSERT_EQ(p50.size(), 1u);
  EXPECT_NEAR(p50[0].value, 10.0, 10.0 * 0.05);  // bucket resolution
  const auto count = store.SeriesSamples("tst/sweep_ms/count");
  ASSERT_EQ(count.size(), 1u);
  EXPECT_DOUBLE_EQ(count[0].value, 100.0);
  EXPECT_EQ(store.samples_taken(), 1u);
}

TEST(TimeSeriesStoreTest, RingWraparoundKeepsNewestChronological) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Counter& counter = registry.GetCounter("tst/wrap_requests");

  TimeSeriesOptions options;
  options.capacity = 3;
  TimeSeriesStore store(options);
  for (int tick = 1; tick <= 5; ++tick) {
    counter.Increment(static_cast<uint64_t>(tick));
    store.SampleNow(static_cast<double>(tick));
  }
  // Cumulative values were 1, 3, 6, 10, 15; only the newest three survive,
  // oldest-first.
  const auto samples = store.SeriesSamples("tst/wrap_requests");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].t_s, 3.0);
  EXPECT_DOUBLE_EQ(samples[0].value, 6.0);
  EXPECT_DOUBLE_EQ(samples[1].t_s, 4.0);
  EXPECT_DOUBLE_EQ(samples[1].value, 10.0);
  EXPECT_DOUBLE_EQ(samples[2].t_s, 5.0);
  EXPECT_DOUBLE_EQ(samples[2].value, 15.0);
}

TEST(TimeSeriesStoreTest, CounterDeltaClampsResetsAtZero) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Counter& counter = registry.GetCounter("tst/reset_requests");

  TimeSeriesStore store;
  counter.Increment(5);
  store.SampleNow(1.0);  // 5
  counter.Increment(7);
  store.SampleNow(2.0);  // 12
  registry.Reset();      // counter restarts (process restart / Reset())
  counter.Increment(2);
  store.SampleNow(3.0);  // 2: raw delta -10 must clamp to 0
  counter.Increment(2);
  store.SampleNow(4.0);  // 4
  // (5->12) + clamp(12->2) + (2->4) = 7 + 0 + 2.
  EXPECT_DOUBLE_EQ(store.CounterDelta("tst/reset_requests", 10.0, 4.0), 9.0);
}

TEST(TimeSeriesStoreTest, CounterDeltaEmptyAndSingleSampleWindows) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Counter& counter = registry.GetCounter("tst/delta_requests");

  TimeSeriesStore store;
  EXPECT_DOUBLE_EQ(store.CounterDelta("tst/delta_requests", 60.0, 100.0),
                   0.0);  // no samples at all
  EXPECT_DOUBLE_EQ(store.CounterDelta("tst/never_sampled", 60.0, 100.0),
                   0.0);  // unknown series
  counter.Increment(5);
  store.SampleNow(1.0);
  EXPECT_DOUBLE_EQ(store.CounterDelta("tst/delta_requests", 60.0, 1.0),
                   0.0);  // a single sample has no delta
  counter.Increment(5);
  store.SampleNow(2.0);
  // Window entirely after the samples -> empty.
  EXPECT_DOUBLE_EQ(store.CounterDelta("tst/delta_requests", 5.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(store.CounterDelta("tst/delta_requests", 10.0, 2.0), 5.0);
}

TEST(TimeSeriesStoreTest, ThresholdSeriesCountsAtOrBelow) {
  EXPECT_EQ(TimeSeriesStore::ThresholdSeriesName("serve/request_ms", 25.0),
            "serve/request_ms/le_25");
  EXPECT_EQ(TimeSeriesStore::ThresholdSeriesName("x/ms", 2.5), "x/ms/le_2.5");

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  LatencyHistogram& latency = registry.GetLatencyHistogram("tst/thr_ms");
  TimeSeriesStore store;
  store.TrackLatencyThreshold("tst/thr_ms", 25.0);
  latency.Observe(10.0);   // at or below 25
  latency.Observe(100.0);  // above
  store.SampleNow(1.0);
  const auto good = store.SeriesSamples("tst/thr_ms/le_25");
  ASSERT_EQ(good.size(), 1u);
  EXPECT_DOUBLE_EQ(good[0].value, 1.0);
}

TEST(TimeSeriesStoreTest, BackgroundSamplerTicksAndStops) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  TimeSeriesOptions options;
  options.interval_s = 0.005;
  TimeSeriesStore store(options);
  std::atomic<int> callbacks{0};
  store.SetOnSample([&](double) { callbacks.fetch_add(1); });
  EXPECT_FALSE(store.running());
  store.Start();
  EXPECT_TRUE(store.running());
  for (int i = 0; i < 400 && store.samples_taken() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  store.Stop();
  EXPECT_FALSE(store.running());
  EXPECT_GE(store.samples_taken(), 2u);
  EXPECT_GE(callbacks.load(), 2);
  const uint64_t after_stop = store.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(store.samples_taken(), after_stop);
}

TEST(TimeSeriesStoreTest, QueryJsonWindowStepAndPrefix) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Counter& counter = registry.GetCounter("tst/q_requests");
  registry.GetGauge("other/q_depth").Set(1.0);
  TimeSeriesStore store;
  for (int tick = 1; tick <= 10; ++tick) {
    counter.Increment(2);
    store.SampleNow(static_cast<double>(tick));
  }

  // Prefix filter keeps only matching series.
  const JsonValue only = store.QueryJson(100.0, 0.0, "tst/");
  const JsonValue* series = only.Find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_NE(series->Find("tst/q_requests"), nullptr);
  EXPECT_EQ(series->Find("other/q_depth"), nullptr);

  // Counters carry derived rates; rate values are clamped deltas per
  // second (2 per 1 s tick).
  const JsonValue* entry = series->Find("tst/q_requests");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Find("kind")->AsString(), "counter");
  const JsonValue* rates = entry->Find("rate_per_s");
  ASSERT_NE(rates, nullptr);
  ASSERT_GT(rates->size(), 0u);
  EXPECT_NEAR(rates->at(rates->size() - 1).at(1).AsNumber(), 2.0, 1e-9);

  // Gauges have no rate series.
  const JsonValue all = store.QueryJson(100.0, 0.0, "");
  EXPECT_EQ(all.Find("series")->Find("other/q_depth")->Find("rate_per_s"),
            nullptr);

  // A short window drops old samples; a step >= 2 s halves the density.
  const JsonValue windowed = store.QueryJson(3.0, 0.0, "tst/");
  const JsonValue* wsamples =
      windowed.Find("series")->Find("tst/q_requests")->Find("samples");
  ASSERT_NE(wsamples, nullptr);
  EXPECT_LE(wsamples->size(), 4u);
  const JsonValue stepped = store.QueryJson(100.0, 2.0, "tst/");
  const JsonValue* ssamples =
      stepped.Find("series")->Find("tst/q_requests")->Find("samples");
  ASSERT_NE(ssamples, nullptr);
  EXPECT_LE(ssamples->size(), 6u);
}

TEST(TimeSeriesStoreTest, HandleQueryValidatesParameters) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  TimeSeriesStore store;
  store.SampleNow(1.0);

  HttpRequest request;
  request.method = "GET";
  request.path = "/timeseriesz";
  request.query = "window=60&step=5";
  EXPECT_EQ(store.HandleQuery(request).status, 200);
  request.query = "window=abc";
  EXPECT_EQ(store.HandleQuery(request).status, 400);
  request.query = "step=-3";
  EXPECT_EQ(store.HandleQuery(request).status, 400);
}

// ---------------------------------------------------------------------------
// SloEngine

TEST(SloEngineTest, BurnRateBoundaries) {
  // Exactly at budget: error ratio == 1 - target -> burn 1.0.
  EXPECT_DOUBLE_EQ(SloEngine::BurnRate(10.0, 100.0, 0.9), 1.0);
  // No traffic burns nothing (empty window).
  EXPECT_DOUBLE_EQ(SloEngine::BurnRate(0.0, 0.0, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(SloEngine::BurnRate(0.0, 100.0, 0.9), 0.0);
  // bad > total (deadline expiries count errors without requests) clamps
  // the ratio at 1 instead of overshooting.
  EXPECT_DOUBLE_EQ(SloEngine::BurnRate(200.0, 100.0, 0.9), 10.0);
  // Everything bad at a 99.9% target: 1 / 0.001.
  EXPECT_NEAR(SloEngine::BurnRate(50.0, 50.0, 0.999), 1000.0, 1e-6);
}

/// Synthetic-tick state machine: healthy -> firing -> resolved, with
/// burn-rate windows driven entirely through SampleNow timestamps.
TEST(SloEngineTest, AlertLifecycleOverSyntheticTicks) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Counter& total = registry.GetCounter("slot/total");
  Counter& bad = registry.GetCounter("slot/bad");

  TimeSeriesStore store;
  SloConfig config;
  config.fast_window_s = 10.0;
  config.slow_window_s = 30.0;
  config.budget_window_s = 120.0;
  config.burn_threshold = 2.0;
  SloEngine slo(&store, config);
  SloObjective objective;
  objective.name = "slot/availability";
  objective.kind = SloObjective::Kind::kAvailability;
  objective.total_counter = "slot/total";
  objective.bad_counter = "slot/bad";
  objective.target = 0.9;
  slo.AddObjective(objective);

  double t = 0.0;
  auto tick = [&](uint64_t good_n, uint64_t bad_n) {
    t += 1.0;
    total.Increment(good_n + bad_n);
    bad.Increment(bad_n);
    store.SampleNow(t);
    slo.Evaluate(t);
    std::vector<SloStatus> statuses = slo.Snapshot();
    return statuses.at(0);
  };

  SloStatus status;
  for (int i = 0; i < 40; ++i) status = tick(10, 0);
  EXPECT_EQ(status.state, AlertState::kHealthy);
  EXPECT_DOUBLE_EQ(status.fast_burn, 0.0);
  EXPECT_EQ(slo.firing_count(), 0u);

  // 100% errors: both windows must cross 2x budget burn, slow window last.
  int ticks_to_fire = 0;
  for (int i = 0; i < 40 && status.state != AlertState::kFiring; ++i) {
    status = tick(0, 10);
    ++ticks_to_fire;
  }
  ASSERT_EQ(status.state, AlertState::kFiring);
  // Slow window needs ratio >= 0.2: 6 bad ticks out of 30 -> fires on
  // tick 6, not instantly (the fast window alone crossed on tick 2).
  EXPECT_GT(ticks_to_fire, 2);
  EXPECT_GT(status.fast_burn, 2.0);
  EXPECT_GE(status.slow_burn, 2.0);
  EXPECT_GT(status.fired_at_s, 0.0);
  EXPECT_LT(status.budget_remaining, 1.0);
  EXPECT_EQ(slo.firing_count(), 1u);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("obs/alerts_firing").value(), 1.0);

  // Recovery: the alert resolves once either window's burn drops below
  // threshold, and kResolved is sticky (distinguishable from kHealthy).
  for (int i = 0; i < 60 && status.state == AlertState::kFiring; ++i) {
    status = tick(10, 0);
  }
  ASSERT_EQ(status.state, AlertState::kResolved);
  EXPECT_GT(status.resolved_at_s, status.fired_at_s);
  EXPECT_GE(status.transitions, 2u);
  EXPECT_EQ(slo.firing_count(), 0u);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("obs/alerts_firing").value(), 0.0);

  // ToJson carries the lifecycle fields /alertz exposes.
  const JsonValue json = slo.ToJson();
  EXPECT_DOUBLE_EQ(json.Find("firing")->AsNumber(), 0.0);
  const JsonValue* first = &json.Find("objectives")->at(0);
  EXPECT_EQ(first->Find("name")->AsString(), "slot/availability");
  EXPECT_EQ(first->Find("state")->AsString(), "resolved");
}

TEST(SloEngineTest, PendingDwellDelaysFiring) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  Counter& total = registry.GetCounter("slop/total");
  Counter& bad = registry.GetCounter("slop/bad");

  TimeSeriesStore store;
  SloConfig config;
  config.fast_window_s = 5.0;
  config.slow_window_s = 5.0;
  config.burn_threshold = 1.0;
  config.pending_for_s = 3.0;
  SloEngine slo(&store, config);
  SloObjective objective;
  objective.name = "slop/availability";
  objective.kind = SloObjective::Kind::kAvailability;
  objective.total_counter = "slop/total";
  objective.bad_counter = "slop/bad";
  objective.target = 0.9;
  slo.AddObjective(objective);

  double t = 0.0;
  auto tick = [&]() {
    t += 1.0;
    total.Increment(10);
    bad.Increment(10);
    store.SampleNow(t);
    slo.Evaluate(t);
    return slo.Snapshot().at(0);
  };
  tick();                     // t=1: a single sample, no burn yet
  SloStatus status = tick();  // t=2: burn over threshold -> pending
  EXPECT_EQ(status.state, AlertState::kPending);
  status = tick();  // t=3: dwell 1 s < 3 s
  EXPECT_EQ(status.state, AlertState::kPending);
  status = tick();  // t=4: dwell 2 s
  EXPECT_EQ(status.state, AlertState::kPending);
  status = tick();  // t=5: dwell 3 s >= pending_for_s -> firing
  EXPECT_EQ(status.state, AlertState::kFiring);
}

TEST(SloEngineTest, LatencyObjectiveRegistersThresholdSeries) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  LatencyHistogram& latency = registry.GetLatencyHistogram("slol/ms");

  TimeSeriesStore store;
  SloConfig config;
  config.fast_window_s = 5.0;
  config.slow_window_s = 5.0;
  config.burn_threshold = 1.0;
  SloEngine slo(&store, config);
  SloObjective objective;
  objective.name = "slol/latency";
  objective.kind = SloObjective::Kind::kLatency;
  objective.histogram = "slol/ms";
  objective.threshold_ms = 25.0;
  objective.target = 0.5;
  slo.AddObjective(objective);

  double t = 0.0;
  auto tick = [&](double value_ms) {
    t += 1.0;
    for (int i = 0; i < 10; ++i) latency.Observe(value_ms);
    store.SampleNow(t);
    slo.Evaluate(t);
    return slo.Snapshot().at(0);
  };
  SloStatus status;
  for (int i = 0; i < 8; ++i) status = tick(1.0);  // all under threshold
  EXPECT_EQ(status.state, AlertState::kHealthy);
  for (int i = 0; i < 8 && status.state != AlertState::kFiring; ++i) {
    status = tick(400.0);  // all over threshold
  }
  EXPECT_EQ(status.state, AlertState::kFiring);
}

// ---------------------------------------------------------------------------
// RequestLog + ExemplarStore

WideEvent MakeEvent(uint64_t trace_id, const std::string& op,
                    uint64_t total_us) {
  WideEvent event;
  event.t_s = 1.5;
  event.trace_id = trace_id;
  event.op = op;
  event.batch_size = 4;
  event.cache_hit = true;
  event.queue_us = 100;
  event.encode_us = 200;
  event.score_us = 300;
  event.total_us = total_us;
  event.verdict = "power failure";
  event.ok = true;
  event.status = "ok";
  return event;
}

TEST(RequestLogTest, BoundedRingKeepsNewestFirst) {
  RequestLog log(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    log.Record(MakeEvent(i, "rca", i * 1000));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5u);
  const std::vector<WideEvent> events = log.Query({});
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].trace_id, 5u);
  EXPECT_EQ(events[1].trace_id, 4u);
  EXPECT_EQ(events[2].trace_id, 3u);
}

TEST(RequestLogTest, QueryFilters) {
  RequestLog log;
  log.Record(MakeEvent(0xaa, "rca", 2000));
  log.Record(MakeEvent(0xbb, "eap", 9000));
  log.Record(MakeEvent(0xcc, "rca", 40000));

  RequestLog::Filter by_trace;
  by_trace.trace_id = 0xbb;
  ASSERT_EQ(log.Query(by_trace).size(), 1u);
  EXPECT_EQ(log.Query(by_trace)[0].op, "eap");

  RequestLog::Filter by_op;
  by_op.op = "rca";
  EXPECT_EQ(log.Query(by_op).size(), 2u);

  RequestLog::Filter slow;
  slow.min_ms = 5.0;
  EXPECT_EQ(log.Query(slow).size(), 2u);

  RequestLog::Filter capped;
  capped.limit = 1;
  ASSERT_EQ(log.Query(capped).size(), 1u);
  EXPECT_EQ(log.Query(capped)[0].trace_id, 0xccu);
}

TEST(RequestLogTest, WideEventJsonRoundTrip) {
  const WideEvent event = MakeEvent(0x4fca12d9e01u, "fct", 12345);
  const JsonValue json = event.ToJson();
  // Trace ids travel as 16-hex strings, never JSON numbers.
  EXPECT_EQ(json.Find("trace_id")->AsString(), "000004fca12d9e01");

  WideEvent parsed;
  ASSERT_TRUE(WideEvent::FromJson(json, &parsed));
  EXPECT_EQ(parsed.trace_id, event.trace_id);
  EXPECT_EQ(parsed.op, event.op);
  EXPECT_EQ(parsed.batch_size, event.batch_size);
  EXPECT_EQ(parsed.cache_hit, event.cache_hit);
  EXPECT_EQ(parsed.queue_us, event.queue_us);
  EXPECT_EQ(parsed.encode_us, event.encode_us);
  EXPECT_EQ(parsed.score_us, event.score_us);
  EXPECT_EQ(parsed.total_us, event.total_us);
  EXPECT_EQ(parsed.verdict, event.verdict);
  EXPECT_EQ(parsed.ok, event.ok);
  EXPECT_EQ(parsed.status, event.status);

  // Strictness: a missing field fails instead of defaulting silently.
  JsonValue truncated = event.ToJson();
  truncated.Set("trace_id", JsonValue());
  WideEvent ignored;
  EXPECT_FALSE(WideEvent::FromJson(truncated, &ignored));
}

TEST(RequestLogTest, RoutedEventFieldsRoundTripAndStayOffServeEvents) {
  // A serve-side event (attempts == 0) serializes no routing fields, so
  // existing log consumers see an unchanged shape.
  const WideEvent plain = MakeEvent(0x1, "rca", 1000);
  EXPECT_EQ(plain.ToJson().Find("replica"), nullptr);
  EXPECT_EQ(plain.ToJson().Find("attempts"), nullptr);
  EXPECT_EQ(plain.ToJson().Find("hedge"), nullptr);

  WideEvent routed = MakeEvent(0x2, "encode", 2000);
  routed.replica = "127.0.0.1:7102";
  routed.attempts = 3;
  routed.hedge = "won";
  const JsonValue json = routed.ToJson();
  WideEvent parsed;
  ASSERT_TRUE(WideEvent::FromJson(json, &parsed));
  EXPECT_EQ(parsed.replica, "127.0.0.1:7102");
  EXPECT_EQ(parsed.attempts, 3);
  EXPECT_EQ(parsed.hedge, "won");

  // The routing story is all-or-nothing: attempts without its companions
  // is a malformed record, not a silent partial parse.
  JsonValue partial = json;
  partial.Set("replica", JsonValue());
  EXPECT_FALSE(WideEvent::FromJson(partial, &parsed));
}

TEST(RequestLogTest, NdjsonSinkRoundTripsThroughParser) {
  const std::string path = "obs_requestlog_test_sink.ndjson";
  std::remove(path.c_str());
  {
    RequestLog log;
    ASSERT_TRUE(log.SetSinkFile(path));
    EXPECT_EQ(log.sink_path(), path);
    log.Record(MakeEvent(0x111, "rca", 1500));
    log.Record(MakeEvent(0x222, "eap", 2500));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<WideEvent> parsed;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue value;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(line, &value, &error)) << error;
    WideEvent event;
    ASSERT_TRUE(WideEvent::FromJson(value, &event));
    parsed.push_back(event);
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].trace_id, 0x111u);
  EXPECT_EQ(parsed[1].trace_id, 0x222u);
  std::remove(path.c_str());

  // An unopenable sink is reported, not fatal.
  RequestLog log;
  EXPECT_FALSE(log.SetSinkFile("/nonexistent-dir/sink.ndjson"));
}

TEST(RequestLogTest, HandleQueryFiltersAndValidates) {
  RequestLog::Global().Reset();
  RequestLog::Global().Record(MakeEvent(0xabc, "rca", 7000));
  RequestLog::Global().Record(MakeEvent(0xdef, "eap", 1000));

  HttpRequest request;
  request.method = "GET";
  request.path = "/requestz";
  request.query = "trace_id=abc";
  HttpResponse response = RequestLog::Global().HandleQuery(request);
  EXPECT_EQ(response.status, 200);
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(response.body, &parsed, &error)) << error;
  ASSERT_EQ(parsed.Find("events")->size(), 1u);
  EXPECT_EQ(parsed.Find("events")->at(0).Find("trace_id")->AsString(),
            "0000000000000abc");

  request.query = "min_ms=5";
  response = RequestLog::Global().HandleQuery(request);
  ASSERT_TRUE(JsonValue::Parse(response.body, &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("events")->size(), 1u);

  request.query = "trace_id=zzz";
  EXPECT_EQ(RequestLog::Global().HandleQuery(request).status, 400);
  request.query = "min_ms=abc";
  EXPECT_EQ(RequestLog::Global().HandleQuery(request).status, 400);
  request.query = "limit=0";
  EXPECT_EQ(RequestLog::Global().HandleQuery(request).status, 400);
  RequestLog::Global().Reset();
}

TEST(ExemplarStoreTest, LatestWinsPerBucketAndFindsByUpperBound) {
  ExemplarStore store;
  store.Record("tst/ex_ms", 23.7, 0x111);
  store.Record("tst/ex_ms", 23.9, 0x222);   // same bucket: replaces
  store.Record("tst/ex_ms", 500.0, 0x333);  // different bucket

  const double le = LatencyHistogram::BucketUpperMs(
      LatencyHistogram::BucketIndex(23.7));
  ExemplarStore::Exemplar exemplar;
  ASSERT_TRUE(store.Find("tst/ex_ms", le, &exemplar));
  EXPECT_EQ(exemplar.trace_id, 0x222u);
  EXPECT_DOUBLE_EQ(exemplar.value_ms, 23.9);
  EXPECT_GT(exemplar.unix_s, 0.0);

  EXPECT_FALSE(store.Find("tst/ex_ms", le * 4.0, &exemplar));
  EXPECT_FALSE(store.Find("tst/other_ms", le, &exemplar));
  store.Reset();
  EXPECT_FALSE(store.Find("tst/ex_ms", le, &exemplar));
}

// ---------------------------------------------------------------------------
// Concurrency (exercised under TSan by scripts/check_tier1.sh)

TEST(TimeSeriesStoreTest, SamplerRacesWritersAndReaders) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  TimeSeriesOptions options;
  options.interval_s = 0.001;
  options.capacity = 16;
  TimeSeriesStore store(options);
  SloConfig config;
  config.fast_window_s = 0.01;
  config.slow_window_s = 0.05;
  SloEngine slo(&store, config);
  SloObjective objective;
  objective.name = "race/availability";
  objective.kind = SloObjective::Kind::kAvailability;
  objective.total_counter = "race/total";
  objective.bad_counter = "race/bad";
  slo.AddObjective(objective);
  // The SLO engine re-enters the store from the sampler callback — the
  // deadlock/race shape the lock ordering is designed for.
  store.SetOnSample([&](double now_s) { slo.Evaluate(now_s); });
  store.Start();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Counter& total = registry.GetCounter("race/total");
    LatencyHistogram& latency = registry.GetLatencyHistogram("race/ms");
    uint64_t i = 0;
    while (!stop.load()) {
      total.Increment();
      latency.Observe(static_cast<double>(i % 40) + 0.5);
      ++i;
    }
  });
  std::thread reader([&] {
    while (!stop.load()) {
      store.QueryJson(1.0, 0.0, "race/");
      store.SeriesSamples("race/total");
      slo.Snapshot();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  stop.store(true);
  writer.join();
  reader.join();
  store.Stop();
  EXPECT_GE(store.samples_taken(), 2u);
  registry.Reset();
}

}  // namespace
}  // namespace obs
}  // namespace telekit

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/rng.h"
#include "text/bpe.h"
#include "text/masking.h"
#include "text/numeric.h"
#include "text/prompt.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace telekit {
namespace text {
namespace {

// --- Vocab ----------------------------------------------------------------------

TEST(VocabTest, SpecialTokensPreRegistered) {
  Vocab v;
  EXPECT_EQ(v.size(), SpecialTokens::kFirstRegular);
  EXPECT_EQ(v.Id("[CLS]"), SpecialTokens::kCls);
  EXPECT_EQ(v.Id("[MASK]"), SpecialTokens::kMask);
  EXPECT_EQ(v.Id("[ALM]"), SpecialTokens::kAlm);
  EXPECT_EQ(v.Id("[NUM]"), SpecialTokens::kNum);
  EXPECT_EQ(v.Id("|"), SpecialTokens::kBar);
}

TEST(VocabTest, AddIsIdempotent) {
  Vocab v;
  const int a = v.AddToken("alarm");
  const int b = v.AddToken("alarm");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), SpecialTokens::kFirstRegular + 1);
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.Id("zzz"), SpecialTokens::kUnk);
  EXPECT_FALSE(v.Contains("zzz"));
}

TEST(VocabTest, RoundTrip) {
  Vocab v;
  const int id = v.AddToken("PGW");
  EXPECT_EQ(v.Token(id), "PGW");
  EXPECT_EQ(v.Id("PGW"), id);
}

TEST(VocabTest, IsSpecialBoundary) {
  EXPECT_TRUE(Vocab::IsSpecial(SpecialTokens::kNum));
  EXPECT_TRUE(Vocab::IsSpecial(SpecialTokens::kBar));
  EXPECT_FALSE(Vocab::IsSpecial(SpecialTokens::kFirstRegular));
}

TEST(VocabTest, RegularTokensExcludeSpecials) {
  Vocab v;
  v.AddToken("x");
  v.AddToken("y");
  auto regular = v.RegularTokens();
  ASSERT_EQ(regular.size(), 2u);
  EXPECT_EQ(regular[0], "x");
}

// --- BPE ------------------------------------------------------------------------

std::vector<std::string> RepeatedCorpus() {
  // "PGW" and "MME" appear as substrings of many words.
  std::vector<std::string> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back("PGW1 connects PGW2 and PGW3");
    corpus.push_back("MME node MME backup MME pool");
    corpus.push_back("the link from PGW4 to MME9 failed");
  }
  return corpus;
}

TEST(BpeTest, LearnsFrequentMerges) {
  BpeLearner bpe(BpeOptions{.num_merges = 50, .min_frequency = 10});
  bpe.Fit(RepeatedCorpus());
  EXPECT_FALSE(bpe.merges().empty());
  // "PGW" should be formed (frequency ~200 across the corpus).
  EXPECT_GT(bpe.SymbolFrequency("PG") + bpe.SymbolFrequency("PGW"), 0);
}

TEST(BpeTest, SegmentUsesLearnedMerges) {
  BpeLearner bpe(BpeOptions{.num_merges = 80, .min_frequency = 5});
  bpe.Fit(RepeatedCorpus());
  auto pieces = bpe.Segment("PGW7");
  // The whole "PGW" prefix should collapse into few pieces.
  EXPECT_LE(pieces.size(), 3u);
  std::string joined;
  for (const auto& p : pieces) joined += p;
  EXPECT_EQ(joined, "PGW7");
}

TEST(BpeTest, SegmentUnseenCharactersFallsBack) {
  BpeLearner bpe;
  bpe.Fit(RepeatedCorpus());
  auto pieces = bpe.Segment("@#");
  std::string joined;
  for (const auto& p : pieces) joined += p;
  EXPECT_EQ(joined, "@#");
}

TEST(BpeTest, ExtractTeleTokensRespectsConstraints) {
  BpeLearner bpe(BpeOptions{
      .num_merges = 80, .min_token_len = 2, .max_token_len = 4,
      .min_frequency = 50});
  bpe.Fit(RepeatedCorpus());
  Vocab base;
  base.AddToken("the");  // pretend base vocabulary entry
  auto tokens = bpe.ExtractTeleTokens(base);
  for (const auto& t : tokens) {
    EXPECT_GE(t.size(), 2u);
    EXPECT_LE(t.size(), 4u);
    EXPECT_FALSE(base.Contains(t));
    EXPECT_GE(bpe.SymbolFrequency(t), 50);
  }
  // "PGW" is a canonical candidate from this corpus.
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "PGW"), tokens.end());
}

TEST(BpeTest, DeterministicAcrossRuns) {
  BpeLearner a, b;
  a.Fit(RepeatedCorpus());
  b.Fit(RepeatedCorpus());
  EXPECT_EQ(a.merges(), b.merges());
}

// --- Prompt ----------------------------------------------------------------------

TEST(PromptTest, AlarmTemplateShape) {
  PromptSequence p = PromptBuilder()
                         .Alarm("link down")
                         .Attribute("severity", "major")
                         .Build();
  // [ALM] text [ATTR] key | value
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p[0].kind, PromptElement::Kind::kSpecial);
  EXPECT_EQ(p[0].special_id, SpecialTokens::kAlm);
  EXPECT_EQ(p[1].text, "link down");
  EXPECT_EQ(p[2].special_id, SpecialTokens::kAttr);
  EXPECT_EQ(p[4].special_id, SpecialTokens::kBar);
  EXPECT_EQ(p[5].text, "major");
}

TEST(PromptTest, KpiCarriesNumericSlot) {
  PromptSequence p = PromptBuilder().Kpi("registration rate", 0.75f).Build();
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0].special_id, SpecialTokens::kKpi);
  EXPECT_EQ(p[2].special_id, SpecialTokens::kBar);
  EXPECT_EQ(p[3].kind, PromptElement::Kind::kNumeric);
  EXPECT_EQ(p[3].tag, "registration rate");
  EXPECT_FLOAT_EQ(p[3].value, 0.75f);
}

TEST(PromptTest, TripleTemplate) {
  PromptSequence p = PromptBuilder()
                         .Entity("alarm A")
                         .Relation("triggers")
                         .Entity("alarm B")
                         .Build();
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p[0].special_id, SpecialTokens::kEnt);
  EXPECT_EQ(p[2].special_id, SpecialTokens::kRel);
  EXPECT_EQ(p[4].special_id, SpecialTokens::kEnt);
}

TEST(PromptTest, ToStringRendersTokens) {
  Vocab v;
  PromptSequence p =
      PromptBuilder().Alarm("x").NumericAttribute("count", 0.5f).Build();
  const std::string s = PromptToString(p, v);
  EXPECT_NE(s.find("[ALM]"), std::string::npos);
  EXPECT_NE(s.find("[ATTR]"), std::string::npos);
  EXPECT_NE(s.find("count"), std::string::npos);
}

// --- Tokenizer ---------------------------------------------------------------------

std::vector<std::string> TinyCorpus() {
  std::vector<std::string> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back("the alarm triggers abnormal registration failures");
    corpus.push_back("network congestion points lead to service loss");
    corpus.push_back("the service recovers after the alarm clears");
  }
  return corpus;
}

Tokenizer MakeTokenizer(int max_len = 24) {
  Tokenizer tok(TokenizerOptions{.max_len = max_len, .min_word_count = 2});
  tok.BuildVocab(TinyCorpus());
  return tok;
}

TEST(TokenizerTest, SplitWordsStripsPunctuation) {
  auto words = Tokenizer::SplitWords("Hello, world! (test)");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "Hello");
  EXPECT_EQ(words[1], "world");
  EXPECT_EQ(words[2], "test");
}

TEST(TokenizerTest, FrequentWordsAreWholeTokens) {
  Tokenizer tok = MakeTokenizer();
  auto ids = tok.WordToIds("alarm");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_GE(ids[0], SpecialTokens::kFirstRegular);
}

TEST(TokenizerTest, UnseenWordSegmentsNotUnk) {
  Tokenizer tok = MakeTokenizer();
  // A novel compound of in-corpus characters must segment without [UNK].
  auto ids = tok.WordToIds("alarmloss");
  EXPECT_GE(ids.size(), 1u);
  for (int id : ids) EXPECT_NE(id, SpecialTokens::kUnk);
  // A word with characters never seen in the corpus degrades to [UNK].
  auto unk_ids = tok.WordToIds("xyz@");
  EXPECT_NE(std::find(unk_ids.begin(), unk_ids.end(), SpecialTokens::kUnk),
            unk_ids.end());
}

TEST(TokenizerTest, EncodeSentenceFraming) {
  Tokenizer tok = MakeTokenizer();
  EncodedInput e = tok.EncodeSentence("the alarm triggers service loss");
  EXPECT_EQ(e.ids.front(), SpecialTokens::kCls);
  EXPECT_EQ(e.ids[static_cast<size_t>(e.length - 1)], SpecialTokens::kSep);
  EXPECT_EQ(static_cast<int>(e.ids.size()), tok.options().max_len);
  for (size_t i = static_cast<size_t>(e.length); i < e.ids.size(); ++i) {
    EXPECT_EQ(e.ids[i], SpecialTokens::kPad);
  }
  EXPECT_FALSE(e.word_spans.empty());
}

TEST(TokenizerTest, TruncationKeepsSepAndDropsOverflowSpans) {
  Tokenizer tok = MakeTokenizer(/*max_len=*/6);
  EncodedInput e = tok.EncodeSentence(
      "the alarm triggers abnormal registration failures again and again");
  EXPECT_EQ(static_cast<int>(e.ids.size()), 6);
  EXPECT_EQ(e.ids[5], SpecialTokens::kSep);
  for (const auto& [start, len] : e.word_spans) {
    EXPECT_LE(start + len, 5);
  }
}

TEST(TokenizerTest, PromptEncodingPlacesSpecials) {
  Tokenizer tok = MakeTokenizer();
  EncodedInput e = tok.Encode(PromptBuilder()
                                  .Alarm("service loss")
                                  .Attribute("severity", "major")
                                  .Build());
  // [CLS] [ALM] ... [ATTR] ... | ...
  EXPECT_EQ(e.ids[0], SpecialTokens::kCls);
  EXPECT_EQ(e.ids[1], SpecialTokens::kAlm);
  const auto& ids = e.ids;
  EXPECT_NE(std::find(ids.begin(), ids.end(), SpecialTokens::kAttr),
            ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), SpecialTokens::kBar), ids.end());
}

TEST(TokenizerTest, NumericSlotRecorded) {
  Tokenizer tok = MakeTokenizer();
  EncodedInput e =
      tok.Encode(PromptBuilder().Kpi("registration failures", 0.3f).Build());
  ASSERT_EQ(e.numeric_slots.size(), 1u);
  const NumericSlot& slot = e.numeric_slots[0];
  EXPECT_EQ(e.ids[static_cast<size_t>(slot.position)], SpecialTokens::kNum);
  EXPECT_FLOAT_EQ(slot.value, 0.3f);
  EXPECT_FALSE(slot.tag_ids.empty());
  EXPECT_EQ(slot.tag, "registration failures");
}

TEST(TokenizerTest, NumericSlotNeverInWordSpans) {
  Tokenizer tok = MakeTokenizer();
  EncodedInput e = tok.Encode(PromptBuilder()
                                  .Alarm("service loss")
                                  .NumericAttribute("count", 0.9f)
                                  .Build());
  ASSERT_EQ(e.numeric_slots.size(), 1u);
  const int num_pos = e.numeric_slots[0].position;
  for (const auto& [start, len] : e.word_spans) {
    EXPECT_TRUE(num_pos < start || num_pos >= start + len);
  }
}

TEST(TokenizerTest, DomainPhraseFormsSingleSpan) {
  Tokenizer tok = MakeTokenizer();
  tok.AddDomainPhrases({"network congestion points"});
  EncodedInput e = tok.EncodeSentence("network congestion points lead to");
  // First span covers all three phrase words.
  ASSERT_FALSE(e.word_spans.empty());
  EXPECT_EQ(e.word_spans[0].second, 3);
}

TEST(TokenizerTest, TeleTokenPromotion) {
  Tokenizer tok(TokenizerOptions{.max_len = 16, .min_word_count = 100});
  std::vector<std::string> corpus;
  for (int i = 0; i < 100; ++i) corpus.push_back("PGW7 MME3 PGW9 MME1");
  tok.BuildVocab(corpus, BpeOptions{.num_merges = 30, .min_frequency = 50});
  const int before = tok.vocab().size();
  auto added = tok.AddSpecialTeleTokens(10);
  EXPECT_EQ(tok.vocab().size(), before + static_cast<int>(added.size()));
  for (const auto& t : added) EXPECT_TRUE(tok.vocab().Contains(t));
}

// --- Tokenizer persistence --------------------------------------------------------

TEST(TokenizerIoTest, SaveLoadRoundTripEncodesIdentically) {
  Tokenizer tok = MakeTokenizer();
  tok.AddDomainPhrases({"network congestion points"});
  tok.AddSpecialTeleTokens(8);
  const std::string path = ::testing::TempDir() + "/tok.txt";
  ASSERT_TRUE(tok.Save(path).ok());
  auto loaded = Tokenizer::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->vocab().size(), tok.vocab().size());
  for (const std::string& sentence :
       {std::string("the alarm triggers service loss"),
        std::string("network congestion points lead to unseenword")}) {
    EncodedInput a = tok.EncodeSentence(sentence);
    EncodedInput b = loaded->EncodeSentence(sentence);
    EXPECT_EQ(a.ids, b.ids) << sentence;
    EXPECT_EQ(a.word_spans, b.word_spans) << sentence;
  }
  // Prompt encodings with numeric slots round-trip too.
  EncodedInput a = tok.Encode(
      PromptBuilder().Kpi("registration failures", 0.4f).Build());
  EncodedInput b = loaded->Encode(
      PromptBuilder().Kpi("registration failures", 0.4f).Build());
  EXPECT_EQ(a.ids, b.ids);
  ASSERT_EQ(b.numeric_slots.size(), 1u);
  EXPECT_EQ(a.numeric_slots[0].tag_ids, b.numeric_slots[0].tag_ids);
  std::remove(path.c_str());
}

TEST(TokenizerIoTest, SaveUnbuiltFails) {
  Tokenizer tok;
  EXPECT_EQ(tok.Save(::testing::TempDir() + "/x.txt").code(),
            StatusCode::kFailedPrecondition);
}

TEST(TokenizerIoTest, LoadMissingOrCorruptFails) {
  EXPECT_EQ(Tokenizer::Load("/no/such/file").status().code(),
            StatusCode::kNotFound);
  const std::string path = ::testing::TempDir() + "/corrupt.txt";
  {
    std::ofstream out(path);
    out << "not a tokenizer\n";
  }
  EXPECT_EQ(Tokenizer::Load(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --- Masking -----------------------------------------------------------------------

TEST(MaskingTest, LabelsMatchOriginalAtMaskedPositions) {
  Tokenizer tok = MakeTokenizer();
  EncodedInput e = tok.EncodeSentence("the alarm triggers service loss");
  Rng rng(1);
  MaskingOptions options;
  options.mask_rate = 0.4f;
  MaskedExample masked = ApplyMasking(e, tok.vocab(), options, rng);
  EXPECT_GT(masked.num_masked, 0);
  int labelled = 0;
  for (size_t i = 0; i < masked.labels.size(); ++i) {
    if (masked.labels[i] >= 0) {
      ++labelled;
      EXPECT_EQ(masked.labels[i], e.ids[i]);  // label = original token
    } else {
      EXPECT_EQ(masked.ids[i], e.ids[i]);  // untouched elsewhere
    }
  }
  EXPECT_EQ(labelled, masked.num_masked);
}

TEST(MaskingTest, NeverMasksSpecialsOrNumeric) {
  Tokenizer tok = MakeTokenizer();
  EncodedInput e = tok.Encode(PromptBuilder()
                                  .Alarm("service loss")
                                  .Kpi("registration failures", 0.5f)
                                  .Build());
  Rng rng(2);
  MaskingOptions options;
  options.mask_rate = 0.9f;  // aggressive; specials must still survive
  for (int trial = 0; trial < 20; ++trial) {
    MaskedExample masked = ApplyMasking(e, tok.vocab(), options, rng);
    EXPECT_EQ(masked.ids[0], SpecialTokens::kCls);
    for (size_t i = 0; i < masked.ids.size(); ++i) {
      if (Vocab::IsSpecial(e.ids[i]) && e.ids[i] != SpecialTokens::kUnk) {
        EXPECT_EQ(masked.ids[i], e.ids[i]);
        EXPECT_EQ(masked.labels[i], -1);
      }
    }
  }
}

TEST(MaskingTest, WholeWordMasksEntireSpan) {
  Tokenizer tok = MakeTokenizer();
  tok.AddDomainPhrases({"network congestion points"});
  EncodedInput e = tok.EncodeSentence("network congestion points lead to");
  Rng rng(3);
  MaskingOptions options;
  options.mask_rate = 0.05f;  // budget 1 -> exactly one unit selected
  options.strategy = MaskingStrategy::kWholeWord;
  options.mask_token_prob = 1.0f;
  options.random_token_prob = 0.0f;
  bool saw_phrase_mask = false;
  for (int trial = 0; trial < 50; ++trial) {
    MaskedExample masked = ApplyMasking(e, tok.vocab(), options, rng);
    // Per span: either fully labelled or fully unlabelled.
    for (const auto& [start, len] : e.word_spans) {
      int labelled = 0;
      for (int k = 0; k < len; ++k) {
        labelled += masked.labels[static_cast<size_t>(start + k)] >= 0;
      }
      EXPECT_TRUE(labelled == 0 || labelled == len);
      if (len == 3 && labelled == len) saw_phrase_mask = true;
    }
  }
  EXPECT_TRUE(saw_phrase_mask);
}

TEST(MaskingTest, HigherRateMasksMore) {
  Tokenizer tok = MakeTokenizer();
  EncodedInput e = tok.EncodeSentence(
      "the alarm triggers abnormal registration failures after congestion");
  Rng rng(4);
  MaskingOptions low;
  low.mask_rate = 0.15f;
  MaskingOptions high;
  high.mask_rate = 0.40f;
  int low_total = 0, high_total = 0;
  for (int i = 0; i < 100; ++i) {
    low_total += ApplyMasking(e, tok.vocab(), low, rng).num_masked;
    high_total += ApplyMasking(e, tok.vocab(), high, rng).num_masked;
  }
  EXPECT_GT(high_total, low_total);
}

TEST(MaskingTest, DynamicMaskingVariesAcrossCalls) {
  Tokenizer tok = MakeTokenizer();
  EncodedInput e = tok.EncodeSentence(
      "the alarm triggers abnormal registration failures after congestion");
  Rng rng(5);
  MaskingOptions options;
  options.mask_rate = 0.3f;
  std::set<std::vector<int>> patterns;
  for (int i = 0; i < 20; ++i) {
    patterns.insert(ApplyMasking(e, tok.vocab(), options, rng).labels);
  }
  EXPECT_GT(patterns.size(), 1u);
}

// --- MinMaxNormalizer ------------------------------------------------------------------

TEST(NormalizerTest, MapsToUnitInterval) {
  MinMaxNormalizer norm;
  norm.Observe("kpi", 10.0f);
  norm.Observe("kpi", 20.0f);
  EXPECT_FLOAT_EQ(norm.Normalize("kpi", 10.0f), 0.0f);
  EXPECT_FLOAT_EQ(norm.Normalize("kpi", 20.0f), 1.0f);
  EXPECT_FLOAT_EQ(norm.Normalize("kpi", 15.0f), 0.5f);
}

TEST(NormalizerTest, ClampsOutOfRange) {
  MinMaxNormalizer norm;
  norm.Observe("kpi", 0.0f);
  norm.Observe("kpi", 1.0f);
  EXPECT_FLOAT_EQ(norm.Normalize("kpi", -5.0f), 0.0f);
  EXPECT_FLOAT_EQ(norm.Normalize("kpi", 9.0f), 1.0f);
}

TEST(NormalizerTest, UnseenTagMidpoint) {
  MinMaxNormalizer norm;
  EXPECT_FLOAT_EQ(norm.Normalize("new field", 123.0f), 0.5f);
  EXPECT_FALSE(norm.HasTag("new field"));
}

TEST(NormalizerTest, ConstantFieldMidpoint) {
  MinMaxNormalizer norm;
  norm.Observe("c", 7.0f);
  norm.Observe("c", 7.0f);
  EXPECT_FLOAT_EQ(norm.Normalize("c", 7.0f), 0.5f);
}

TEST(NormalizerTest, SeparateTagsIndependent) {
  MinMaxNormalizer norm;
  norm.Observe("a", 0.0f);
  norm.Observe("a", 1.0f);
  norm.Observe("b", 100.0f);
  norm.Observe("b", 200.0f);
  EXPECT_FLOAT_EQ(norm.Normalize("a", 0.5f), 0.5f);
  EXPECT_FLOAT_EQ(norm.Normalize("b", 150.0f), 0.5f);
  EXPECT_EQ(norm.num_tags(), 2);
}

TEST(NormalizerTest, DenormalizeRoundTrip) {
  MinMaxNormalizer norm;
  norm.Observe("x", -10.0f);
  norm.Observe("x", 30.0f);
  const float n = norm.Normalize("x", 5.0f);
  EXPECT_NEAR(norm.Denormalize("x", n), 5.0f, 1e-4f);
}

}  // namespace
}  // namespace text
}  // namespace telekit

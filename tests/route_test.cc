#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/spanstore.h"
#include "obs/trace.h"
#include "route/fleet_metrics.h"
#include "route/health.h"
#include "route/ring.h"
#include "route/router.h"
#include "route/trace_assembler.h"
#include "serve/line_io.h"
#include "serve/ndjson_server.h"
#include "serve/protocol.h"

namespace telekit {
namespace route {
namespace {

// ---------------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------------

TEST(HashRingTest, DeterministicAndInRange) {
  const HashRing ring({"a", "b", "c"}, 64);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const size_t owner = ring.Pick(key);
    EXPECT_LT(owner, 3u);
    EXPECT_EQ(owner, ring.Pick(key)) << key;
  }
  // A second ring with the same membership agrees completely.
  const HashRing twin({"a", "b", "c"}, 64);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(ring.Pick(key), twin.Pick(key));
  }
}

TEST(HashRingTest, VirtualNodesBalanceLoad) {
  const HashRing ring({"a", "b", "c", "d"}, 128);
  const std::vector<double> shares = ring.LoadShares(20000);
  for (double share : shares) {
    // Perfect balance is 0.25; vnodes keep every node within ~2x.
    EXPECT_GT(share, 0.10);
    EXPECT_LT(share, 0.45);
  }
}

TEST(HashRingTest, WalkOrderCoversAllNodesStartingAtOwner) {
  const HashRing ring({"a", "b", "c", "d"}, 32);
  for (int i = 0; i < 30; ++i) {
    const std::string key = "walk-" + std::to_string(i);
    const std::vector<size_t> order = ring.WalkOrder(key);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], ring.Pick(key));
    std::vector<bool> seen(4, false);
    for (size_t node : order) {
      ASSERT_LT(node, 4u);
      EXPECT_FALSE(seen[node]);  // distinct
      seen[node] = true;
    }
  }
}

TEST(HashRingTest, RemovingOneNodeMovesOnlyItsShare) {
  // Consistency property: keys not owned by the removed node stay put.
  const HashRing three({"a", "b", "c"}, 128);
  const HashRing two({"a", "b"}, 128);
  int moved = 0, kept = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "stable-" + std::to_string(i);
    const size_t before = three.Pick(key);
    const size_t after = two.Pick(key);
    if (before == 2) continue;  // owned by the removed node; must move
    if (three.nodes()[before] == two.nodes()[after]) {
      ++kept;
    } else {
      ++moved;
    }
  }
  // A mod-N hash would reshuffle ~half; the ring moves (nearly) none.
  EXPECT_LT(moved, (moved + kept) / 20);
}

// ---------------------------------------------------------------------------
// LineReader framing (the NDJSON partial-read/partial-write regression)
// ---------------------------------------------------------------------------

/// ReadFn that serves a fixed byte stream in caller-chosen segment sizes.
class ScriptedStream {
 public:
  ScriptedStream(std::string data, std::vector<size_t> segments)
      : data_(std::move(data)), segments_(std::move(segments)) {}

  serve::LineReader::ReadFn AsReadFn() {
    return [this](char* buffer, size_t n) -> long {
      if (offset_ >= data_.size()) return 0;  // EOF
      size_t want = segments_.empty()
                        ? data_.size() - offset_
                        : segments_[std::min(segment_, segments_.size() - 1)];
      ++segment_;
      want = std::min({want, n, data_.size() - offset_});
      std::memcpy(buffer, data_.data() + offset_, want);
      offset_ += want;
      return static_cast<long>(want);
    };
  }

 private:
  std::string data_;
  std::vector<size_t> segments_;
  size_t offset_ = 0;
  size_t segment_ = 0;
};

TEST(LineReaderTest, ByteAtATimeDelivery) {
  ScriptedStream stream("{\"a\":1}\n{\"b\":2}\n", {1});
  serve::LineReader reader(stream.AsReadFn());
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "{\"a\":1}");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "{\"b\":2}");
  EXPECT_FALSE(reader.ReadLine(&line));
}

TEST(LineReaderTest, CoalescedLinesInOneSegment) {
  ScriptedStream stream("one\ntwo\nthree\n", {});
  serve::LineReader reader(stream.AsReadFn());
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "one");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "two");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "three");
  EXPECT_FALSE(reader.ReadLine(&line));
}

TEST(LineReaderTest, LineSplitAcrossArbitrarySegments) {
  // '\n' lands mid-segment, lines span segments, and a segment carries the
  // tail of one line plus the head of the next.
  ScriptedStream stream("hello world\nsecond line\nlast\n", {3, 9, 1, 7, 5});
  serve::LineReader reader(stream.AsReadFn());
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "hello world");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "second line");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "last");
  EXPECT_FALSE(reader.ReadLine(&line));
}

TEST(LineReaderTest, CrlfAndFinalUnterminatedLine) {
  ScriptedStream stream("dos\r\nunix\nno-newline", {4});
  serve::LineReader reader(stream.AsReadFn());
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "dos");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "unix");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "no-newline");
  EXPECT_FALSE(reader.ReadLine(&line));
}

TEST(LineReaderTest, OverflowGuardStopsUnboundedLines) {
  ScriptedStream stream(std::string(1000, 'x'), {100});
  serve::LineReader reader(stream.AsReadFn(), /*max_line=*/256);
  std::string line;
  EXPECT_FALSE(reader.ReadLine(&line));
  EXPECT_TRUE(reader.overflowed());
}

// Regression: a recv *error* (e.g. EAGAIN from SO_RCVTIMEO) is not EOF.
// Flushing a partially-buffered line as if it were complete handed the
// router a truncated upstream response as a success.
TEST(LineReaderTest, ReadErrorDoesNotFlushPartialLine) {
  int calls = 0;
  serve::LineReader reader([&calls](char* buffer, size_t) -> long {
    ++calls;
    if (calls == 1) {
      std::memcpy(buffer, "{\"a\":1", 6);  // partial line, no '\n'
      return 6;
    }
    errno = EAGAIN;  // receive timeout mid-response
    return -1;
  });
  std::string line = "sentinel";
  EXPECT_FALSE(reader.ReadLine(&line));
  EXPECT_EQ(line, "sentinel");  // the fragment was never surfaced
  EXPECT_TRUE(reader.failed());
  EXPECT_FALSE(reader.overflowed());
  // The stream is poisoned: later calls fail without touching the fd.
  EXPECT_FALSE(reader.ReadLine(&line));
  EXPECT_EQ(calls, 2);
}

TEST(LineReaderTest, ReadErrorAfterCompleteLineStillFramesIt) {
  int calls = 0;
  serve::LineReader reader([&calls](char* buffer, size_t) -> long {
    ++calls;
    if (calls == 1) {
      std::memcpy(buffer, "done\npart", 9);
      return 9;
    }
    errno = ECONNRESET;
    return -1;
  });
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "done");
  EXPECT_FALSE(reader.ReadLine(&line));  // "part" is not a line
  EXPECT_TRUE(reader.failed());
}

// ---------------------------------------------------------------------------
// HealthProber state machine (fake probe, no real time)
// ---------------------------------------------------------------------------

TEST(HealthProberTest, EjectsAfterConsecutiveFailuresAndReadmits) {
  std::atomic<bool> up{true};
  ProberOptions options;
  options.eject_after = 3;
  options.readmit_after = 2;
  HealthProber prober(
      1, options, [&up](size_t, double) { return up.load(); });

  EXPECT_EQ(prober.Health(0), ReplicaHealth::kHealthy);
  up = false;
  prober.ProbeOnce();
  EXPECT_EQ(prober.Health(0), ReplicaHealth::kSuspect);
  EXPECT_TRUE(prober.IsRoutable(0));  // suspect still takes traffic
  prober.ProbeOnce();
  prober.ProbeOnce();
  EXPECT_EQ(prober.Health(0), ReplicaHealth::kEjected);
  EXPECT_FALSE(prober.IsRoutable(0));
  EXPECT_EQ(prober.ejections(), 1u);
  EXPECT_EQ(prober.num_routable(), 0u);

  // One good probe is not enough to readmit...
  up = true;
  prober.ProbeOnce();
  EXPECT_EQ(prober.Health(0), ReplicaHealth::kEjected);
  // ...two consecutive are.
  prober.ProbeOnce();
  EXPECT_EQ(prober.Health(0), ReplicaHealth::kHealthy);
  EXPECT_EQ(prober.readmissions(), 1u);
  EXPECT_EQ(prober.num_routable(), 1u);
}

TEST(HealthProberTest, SuccessResetsFailureStreak) {
  std::atomic<bool> up{false};
  ProberOptions options;
  options.eject_after = 3;
  HealthProber prober(
      1, options, [&up](size_t, double) { return up.load(); });
  prober.ProbeOnce();
  prober.ProbeOnce();
  up = true;
  prober.ProbeOnce();  // streak broken at 2
  up = false;
  prober.ProbeOnce();
  prober.ProbeOnce();
  EXPECT_EQ(prober.Health(0), ReplicaHealth::kSuspect);
  EXPECT_EQ(prober.ejections(), 0u);
}

TEST(HealthProberTest, DataPlaneFailuresEjectWithoutProbe) {
  ProberOptions options;
  options.eject_after = 2;
  HealthProber prober(2, options, [](size_t, double) { return true; });
  prober.ReportFailure(1);
  prober.ReportFailure(1);
  EXPECT_EQ(prober.Health(1), ReplicaHealth::kEjected);
  EXPECT_EQ(prober.Health(0), ReplicaHealth::kHealthy);
  EXPECT_EQ(prober.num_routable(), 1u);
  const obs::JsonValue status = prober.StatusJson();
  ASSERT_EQ(status.size(), 2u);
  EXPECT_EQ(status.at(1).Find("health")->AsString(), "ejected");
}

// ---------------------------------------------------------------------------
// ParseReplicaSpec
// ---------------------------------------------------------------------------

TEST(ReplicaSpecTest, ParsesAllForms) {
  ReplicaSpec spec;
  ASSERT_TRUE(ParseReplicaSpec("7101", &spec));
  EXPECT_EQ(spec.host, "127.0.0.1");
  EXPECT_EQ(spec.port, 7101);
  EXPECT_EQ(spec.admin_port, 0);

  ASSERT_TRUE(ParseReplicaSpec("7101:7201", &spec));
  EXPECT_EQ(spec.port, 7101);
  EXPECT_EQ(spec.admin_port, 7201);

  ASSERT_TRUE(ParseReplicaSpec("10.0.0.5:7101", &spec));
  EXPECT_EQ(spec.host, "10.0.0.5");
  EXPECT_EQ(spec.port, 7101);

  ASSERT_TRUE(ParseReplicaSpec("10.0.0.5:7101:7201", &spec));
  EXPECT_EQ(spec.host, "10.0.0.5");
  EXPECT_EQ(spec.admin_port, 7201);
  EXPECT_EQ(spec.name, "10.0.0.5:7101");

  EXPECT_FALSE(ParseReplicaSpec("", &spec));
  EXPECT_FALSE(ParseReplicaSpec("host:", &spec));
  EXPECT_FALSE(ParseReplicaSpec("host:port", &spec));
  EXPECT_FALSE(ParseReplicaSpec("0", &spec));
  EXPECT_FALSE(ParseReplicaSpec("70000", &spec));
}

TEST(ReplicaSpecTest, RejectsAtoiTruncatedPorts) {
  // Before the strict parser, "7101x" atoi'd to 7101 and an over-long
  // digit string was undefined behavior in atoi.
  ReplicaSpec spec;
  EXPECT_FALSE(ParseReplicaSpec("7101x", &spec));
  EXPECT_FALSE(ParseReplicaSpec("host:7101x", &spec));
  EXPECT_FALSE(ParseReplicaSpec("host:7101:72o1", &spec));
  EXPECT_FALSE(ParseReplicaSpec("99999999999999999999", &spec));
  EXPECT_FALSE(ParseReplicaSpec("host:0", &spec));
  EXPECT_FALSE(ParseReplicaSpec("host:-1", &spec));
}

// ---------------------------------------------------------------------------
// Router against scripted fake replicas
// ---------------------------------------------------------------------------

/// A fake telekit_serve: an NdjsonServer whose handler is scripted per
/// test. Responses use the real wire shapes so the router's retry logic
/// sees what production would send.
class FakeReplica {
 public:
  explicit FakeReplica(serve::LineHandler handler) {
    EXPECT_TRUE(server_.Start(0, std::move(handler)));
  }
  int port() const { return server_.port(); }
  void Kill() { server_.Stop(); }

 private:
  serve::NdjsonServer server_;
};

/// Replies {"ok": true, "replica": name} after `delay_ms`.
serve::LineHandler ScriptedHandler(std::string name, double delay_ms = 0.0,
                                   std::atomic<int>* hits = nullptr) {
  return [name = std::move(name), delay_ms,
          hits](std::string) -> std::future<std::string> {
    if (hits != nullptr) hits->fetch_add(1);
    return std::async(std::launch::async, [name, delay_ms] {
      if (delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
      obs::JsonValue out = obs::JsonValue::Object();
      out.Set("ok", obs::JsonValue(true));
      out.Set("replica", obs::JsonValue(name));
      return out.Dump();
    });
  };
}

/// Replies the serve-protocol error for `status` immediately.
serve::LineHandler ErrorHandler(Status status) {
  return [status](std::string) -> std::future<std::string> {
    std::promise<std::string> ready;
    ready.set_value(serve::ErrorToJson(status, nullptr).Dump());
    return ready.get_future();
  };
}

RouterOptions TestOptions() {
  RouterOptions options;
  options.hedge = false;  // individual tests opt in
  options.probe_override = [](size_t, double) { return true; };
  options.prober.eject_after = 3;
  return options;
}

std::vector<ReplicaSpec> Specs(const std::vector<int>& ports) {
  std::vector<ReplicaSpec> specs;
  for (int port : ports) {
    ReplicaSpec spec;
    spec.port = port;
    spec.name = "127.0.0.1:" + std::to_string(port);
    specs.push_back(spec);
  }
  return specs;
}

obs::JsonValue MustParse(const std::string& line) {
  obs::JsonValue json;
  std::string error;
  EXPECT_TRUE(obs::JsonValue::Parse(line, &json, &error)) << error;
  return json;
}

std::string RequestLine(const std::string& text, double deadline_ms = 0.0) {
  obs::JsonValue json = obs::JsonValue::Object();
  json.Set("op", obs::JsonValue("encode"));
  json.Set("text", obs::JsonValue(text));
  json.Set("id", obs::JsonValue(text));
  if (deadline_ms > 0.0) {
    json.Set("deadline_ms", obs::JsonValue(deadline_ms));
  }
  return json.Dump();
}

/// A key whose consistent-hash owner is `want_primary` among `names`.
std::string KeyOwnedBy(const std::vector<std::string>& names,
                       size_t want_primary, int vnodes) {
  const HashRing ring(names, vnodes);
  for (int i = 0; i < 10000; ++i) {
    const std::string key = "affinity-key-" + std::to_string(i);
    if (ring.Pick(key) == want_primary) return key;
  }
  ADD_FAILURE() << "no key found for primary " << want_primary;
  return "";
}

TEST(RouterTest, RoutesByHashWithStableAffinity) {
  std::atomic<int> hits_a{0}, hits_b{0};
  FakeReplica a(ScriptedHandler("A", 0.0, &hits_a));
  FakeReplica b(ScriptedHandler("B", 0.0, &hits_b));
  Router router(Specs({a.port(), b.port()}), TestOptions());

  // The same text always lands on the same replica; the response carries
  // the routing stamp.
  std::string first_replica;
  for (int i = 0; i < 6; ++i) {
    const obs::JsonValue response =
        MustParse(router.Handle(RequestLine("stable text")));
    ASSERT_TRUE(response.Find("ok")->AsBool());
    const obs::JsonValue* routed = response.Find("routed");
    ASSERT_NE(routed, nullptr);
    EXPECT_EQ(routed->Find("attempts")->AsNumber(), 1);
    EXPECT_FALSE(routed->Find("hedged")->AsBool());
    if (first_replica.empty()) {
      first_replica = routed->Find("replica")->AsString();
    }
    EXPECT_EQ(routed->Find("replica")->AsString(), first_replica);
  }
  EXPECT_EQ(hits_a.load() + hits_b.load(), 6);
  EXPECT_TRUE(hits_a.load() == 0 || hits_b.load() == 0);
}

TEST(RouterTest, RetriesOnUpstreamUnavailable) {
  // The primary for the key drains; the router must fail over and the
  // client must never see the retryable error.
  FakeReplica draining(ErrorHandler(Status::Unavailable("draining")));
  FakeReplica healthy(ScriptedHandler("healthy"));
  const std::vector<int> ports = {draining.port(), healthy.port()};
  RouterOptions options = TestOptions();
  Router router(Specs(ports), options);
  const std::string key =
      KeyOwnedBy({"127.0.0.1:" + std::to_string(ports[0]),
                  "127.0.0.1:" + std::to_string(ports[1])},
                 0, options.vnodes);

  const obs::JsonValue response = MustParse(router.Handle(RequestLine(key)));
  ASSERT_TRUE(response.Find("ok")->AsBool()) << response.Dump();
  EXPECT_EQ(response.Find("replica")->AsString(), "healthy");
  EXPECT_EQ(response.Find("routed")->Find("attempts")->AsNumber(), 2);
}

TEST(RouterTest, NonRetryableUpstreamErrorsPassThrough) {
  FakeReplica broken(ErrorHandler(Status::NotFound("unknown model: x")));
  FakeReplica healthy(ScriptedHandler("healthy"));
  const std::vector<int> ports = {broken.port(), healthy.port()};
  RouterOptions options = TestOptions();
  Router router(Specs(ports), options);
  const std::string key =
      KeyOwnedBy({"127.0.0.1:" + std::to_string(ports[0]),
                  "127.0.0.1:" + std::to_string(ports[1])},
                 0, options.vnodes);

  const obs::JsonValue response = MustParse(router.Handle(RequestLine(key)));
  ASSERT_FALSE(response.Find("ok")->AsBool());
  EXPECT_EQ(static_cast<int>(response.Find("error")->Find("code")->AsNumber()),
            static_cast<int>(StatusCode::kNotFound));
}

TEST(RouterTest, TransportFailureFailsOverAndEventuallyEjects) {
  FakeReplica dead(ScriptedHandler("dead"));
  FakeReplica alive(ScriptedHandler("alive"));
  const int dead_port = dead.port();
  dead.Kill();  // connection refused from now on
  const std::vector<int> ports = {dead_port, alive.port()};
  RouterOptions options = TestOptions();
  options.prober.eject_after = 3;
  Router router(Specs(ports), options);
  const std::string key =
      KeyOwnedBy({"127.0.0.1:" + std::to_string(ports[0]),
                  "127.0.0.1:" + std::to_string(ports[1])},
                 0, options.vnodes);

  for (int i = 0; i < 4; ++i) {
    const obs::JsonValue response =
        MustParse(router.Handle(RequestLine(key)));
    ASSERT_TRUE(response.Find("ok")->AsBool()) << response.Dump();
    EXPECT_EQ(response.Find("replica")->AsString(), "alive");
  }
  // Three data-plane failures ejected the dead replica; later requests
  // skip it entirely (attempts == 1).
  EXPECT_EQ(router.prober().Health(0), ReplicaHealth::kEjected);
  const obs::JsonValue response = MustParse(router.Handle(RequestLine(key)));
  EXPECT_EQ(response.Find("routed")->Find("attempts")->AsNumber(), 1);
}

TEST(RouterTest, BudgetExhaustionIsDeadlineExceededNotUnavailable) {
  // Replicas are alive but slow: the budget lapses while waiting, which
  // must surface as DEADLINE_EXCEEDED (code 7), not UNAVAILABLE (code 6).
  FakeReplica slow_a(ScriptedHandler("a", 400.0));
  FakeReplica slow_b(ScriptedHandler("b", 400.0));
  RouterOptions options = TestOptions();
  options.per_try_ms = 1000.0;
  Router router(Specs({slow_a.port(), slow_b.port()}), options);

  const obs::JsonValue response = MustParse(
      router.Handle(RequestLine("slow request", /*deadline_ms=*/60.0)));
  ASSERT_FALSE(response.Find("ok")->AsBool());
  EXPECT_EQ(static_cast<int>(response.Find("error")->Find("code")->AsNumber()),
            static_cast<int>(StatusCode::kDeadlineExceeded));
  EXPECT_EQ(response.Find("id")->AsString(), "slow request");
  router.Stop();  // reap the still-sleeping attempt before teardown
}

TEST(RouterTest, AllReplicasDownIsUnavailable) {
  FakeReplica a(ScriptedHandler("a"));
  FakeReplica b(ScriptedHandler("b"));
  const std::vector<int> ports = {a.port(), b.port()};
  a.Kill();
  b.Kill();
  Router router(Specs(ports), TestOptions());

  const obs::JsonValue response =
      MustParse(router.Handle(RequestLine("doomed")));
  ASSERT_FALSE(response.Find("ok")->AsBool());
  EXPECT_EQ(static_cast<int>(response.Find("error")->Find("code")->AsNumber()),
            static_cast<int>(StatusCode::kUnavailable));

  // Once both are ejected the router answers without attempting.
  for (int i = 0; i < 6; ++i) router.Handle(RequestLine("doomed"));
  EXPECT_EQ(router.prober().num_routable(), 0u);
  const obs::JsonValue fast =
      MustParse(router.Handle(RequestLine("doomed")));
  EXPECT_EQ(static_cast<int>(fast.Find("error")->Find("code")->AsNumber()),
            static_cast<int>(StatusCode::kUnavailable));
}

TEST(RouterTest, HedgeWinsOverSlowPrimaryAndLoserIsDiscarded) {
  FakeReplica slow(ScriptedHandler("slow", 250.0));
  FakeReplica fast(ScriptedHandler("fast", 0.0));
  const std::vector<int> ports = {slow.port(), fast.port()};
  RouterOptions options = TestOptions();
  options.hedge = true;
  options.hedge_delay_ms = 15.0;  // fixed trigger: tests must not depend
                                  // on the live latency quantile
  Router router(Specs(ports), options);
  const std::string key =
      KeyOwnedBy({"127.0.0.1:" + std::to_string(ports[0]),
                  "127.0.0.1:" + std::to_string(ports[1])},
                 0, options.vnodes);

  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t discarded_before =
      registry.GetCounter("route/hedge_discarded").value();
  const uint64_t wins_before =
      registry.GetCounter("route/hedge_wins").value();

  const auto start = std::chrono::steady_clock::now();
  const std::string raw = router.Handle(RequestLine(key));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  const obs::JsonValue response = MustParse(raw);
  ASSERT_TRUE(response.Find("ok")->AsBool()) << raw;
  // Exactly one response, from the hedge, well before the primary's 250ms.
  EXPECT_EQ(response.Find("replica")->AsString(), "fast");
  EXPECT_TRUE(response.Find("routed")->Find("hedged")->AsBool());
  EXPECT_LT(elapsed_ms, 200.0);
  EXPECT_EQ(registry.GetCounter("route/hedge_wins").value(),
            wins_before + 1);

  // The slow primary's late response is suppressed as a duplicate.
  router.Stop();  // joins the losing attempt
  EXPECT_EQ(registry.GetCounter("route/hedge_discarded").value(),
            discarded_before + 1);
}

TEST(RouterTest, HedgeNotTriggeredWhenPrimaryIsFast) {
  FakeReplica a(ScriptedHandler("a", 0.0));
  FakeReplica b(ScriptedHandler("b", 0.0));
  RouterOptions options = TestOptions();
  options.hedge = true;
  options.hedge_delay_ms = 200.0;
  Router router(Specs({a.port(), b.port()}), options);
  const obs::JsonValue response =
      MustParse(router.Handle(RequestLine("quick")));
  ASSERT_TRUE(response.Find("ok")->AsBool());
  EXPECT_FALSE(response.Find("routed")->Find("hedged")->AsBool());
  EXPECT_EQ(response.Find("routed")->Find("attempts")->AsNumber(), 1);
}

// ---------------------------------------------------------------------------
// Distributed tracing: span propagation, assembly, trace-id echo
// ---------------------------------------------------------------------------

/// A fake replica that behaves like a traced telekit_serve: it parses the
/// forwarded trace/parent_span and records a "serve/request" span under a
/// distinct process label before answering, so assembly tests exercise a
/// real cross-process tree (the in-process fleet shares the global store;
/// the assembler's span-id dedup is built for exactly that topology).
serve::LineHandler SpanRecordingHandler(std::string name) {
  return [name](std::string line) -> std::future<std::string> {
    obs::JsonValue request;
    std::string error;
    uint64_t trace_id = 0;
    uint64_t parent = 0;
    if (obs::JsonValue::Parse(line, &request, &error)) {
      if (const obs::JsonValue* trace = request.Find("trace");
          trace != nullptr && trace->is_string()) {
        obs::ParseTraceIdHex(trace->AsString(), &trace_id);
      }
      if (const obs::JsonValue* span = request.Find("parent_span");
          span != nullptr && span->is_string()) {
        obs::ParseTraceIdHex(span->AsString(), &parent);
      }
    }
    obs::SpanRecord span;
    span.trace_id = trace_id;
    span.parent_span = parent;
    span.name = "serve/request";
    span.process = "fake_serve:" + name;
    span.outcome = "ok";
    span.start_unix_us = obs::UnixNowUs();
    span.dur_us = 50;
    obs::SpanStore::Global().Record(std::move(span));
    std::promise<std::string> ready;
    obs::JsonValue out = obs::JsonValue::Object();
    out.Set("ok", obs::JsonValue(true));
    out.Set("replica", obs::JsonValue(name));
    // Real replicas echo the trace id on every response (SetTrace).
    out.Set("trace", trace_id != 0
                         ? obs::JsonValue(obs::TraceIdToHex(trace_id))
                         : obs::JsonValue());
    ready.set_value(out.Dump());
    return ready.get_future();
  };
}

const obs::JsonValue* ChildNamed(const obs::JsonValue& node,
                                 const std::string& name) {
  const obs::JsonValue* children = node.Find("children");
  if (children == nullptr) return nullptr;
  for (size_t i = 0; i < children->size(); ++i) {
    if (children->at(i).Find("name")->AsString() == name) {
      return &children->at(i);
    }
  }
  return nullptr;
}

TEST(RouterTraceTest, RetriedRequestAssemblesOneTraceWithHopPerAttempt) {
  obs::SpanStore::Global().Reset();
  FakeReplica draining(ErrorHandler(Status::Unavailable("draining")));
  FakeReplica healthy(SpanRecordingHandler("healthy"));
  const std::vector<int> ports = {draining.port(), healthy.port()};
  RouterOptions options = TestOptions();
  Router router(Specs(ports), options);
  const std::string key =
      KeyOwnedBy({"127.0.0.1:" + std::to_string(ports[0]),
                  "127.0.0.1:" + std::to_string(ports[1])},
                 0, options.vnodes);

  obs::JsonValue line = MustParse(RequestLine(key));
  line.Set("trace", obs::JsonValue("00000000000abcde"));
  const obs::JsonValue response = MustParse(router.Handle(line.Dump()));
  ASSERT_TRUE(response.Find("ok")->AsBool()) << response.Dump();
  EXPECT_EQ(response.Find("trace")->AsString(), "00000000000abcde");
  ASSERT_EQ(response.Find("routed")->Find("attempts")->AsNumber(), 2);
  // Attempt spans are recorded after delivery, on the attempt thread;
  // Stop() joins those threads so assembly sees both hops.
  router.Stop();

  // Assemble with no remote sources: the in-process fleet already shares
  // the local store.
  const CollectedSpans collected = CollectSpans(0xabcdeu, {}, 100.0);
  const obs::JsonValue trace = AssembleTraceJson(0xabcdeu, collected);
  EXPECT_EQ(trace.Find("hops")->AsNumber(), 2.0);  // one hop per attempt
  ASSERT_EQ(trace.Find("spans")->size(), 1u);      // a single tree
  const obs::JsonValue& root = trace.Find("spans")->at(0);
  EXPECT_EQ(root.Find("name")->AsString(), "route/request");
  EXPECT_TRUE(root.Find("parent_span")->is_null());
  const obs::JsonValue* attempts = root.Find("children");
  ASSERT_NE(attempts, nullptr);
  ASSERT_EQ(attempts->size(), 2u);
  // The first leg failed against the draining replica; the retry won.
  EXPECT_EQ(attempts->at(0).Find("outcome")->AsString(), "failed");
  EXPECT_EQ(attempts->at(0).Find("attempt")->AsNumber(), 1.0);
  EXPECT_FALSE(attempts->at(0).Find("ok")->AsBool());
  EXPECT_EQ(attempts->at(1).Find("outcome")->AsString(), "won");
  EXPECT_EQ(attempts->at(1).Find("attempt")->AsNumber(), 2.0);
  // The replica's serve-side span joined the tree under the winning hop,
  // annotated with the cross-process clock story.
  const obs::JsonValue* serve_span =
      ChildNamed(attempts->at(1), "serve/request");
  ASSERT_NE(serve_span, nullptr);
  EXPECT_NE(serve_span->Find("send_skew_us"), nullptr);
  EXPECT_NE(serve_span->Find("recv_skew_us"), nullptr);
  EXPECT_EQ(ChildNamed(attempts->at(0), "serve/request"), nullptr);
  obs::SpanStore::Global().Reset();
}

TEST(RouterTraceTest, HedgedRequestMarksTheLosingLeg) {
  obs::SpanStore::Global().Reset();
  FakeReplica slow(ScriptedHandler("slow", 250.0));
  FakeReplica fast(ScriptedHandler("fast", 0.0));
  const std::vector<int> ports = {slow.port(), fast.port()};
  RouterOptions options = TestOptions();
  options.hedge = true;
  options.hedge_delay_ms = 15.0;
  Router router(Specs(ports), options);
  const std::string key =
      KeyOwnedBy({"127.0.0.1:" + std::to_string(ports[0]),
                  "127.0.0.1:" + std::to_string(ports[1])},
                 0, options.vnodes);

  obs::JsonValue line = MustParse(RequestLine(key));
  line.Set("trace", obs::JsonValue("0000000000000ced"));
  const obs::JsonValue response = MustParse(router.Handle(line.Dump()));
  ASSERT_TRUE(response.Find("ok")->AsBool()) << response.Dump();
  EXPECT_TRUE(response.Find("routed")->Find("hedged")->AsBool());
  router.Stop();  // joins the losing leg so its span is recorded

  const std::vector<obs::SpanRecord> spans =
      obs::SpanStore::Global().Query(0xcedu);
  int won = 0, lost = 0, hedged = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.name != "route/attempt") continue;
    if (span.outcome == "won") ++won;
    if (span.outcome == "lost") ++lost;
    if (span.hedge) ++hedged;
  }
  EXPECT_EQ(won, 1);
  EXPECT_EQ(lost, 1);  // the slow primary's late duplicate
  EXPECT_EQ(hedged, 1);
  const obs::JsonValue trace =
      AssembleTraceJson(0xcedu, CollectSpans(0xcedu, {}, 100.0));
  EXPECT_EQ(trace.Find("hops")->AsNumber(), 2.0);
  ASSERT_EQ(trace.Find("spans")->size(), 1u);
  obs::SpanStore::Global().Reset();
}

TEST(RouterTraceTest, ErrorRepliesEchoTraceOnEveryPath) {
  // No routable replica: the inbound trace id must come back verbatim.
  FakeReplica gone(ScriptedHandler("gone"));
  const int gone_port = gone.port();
  gone.Kill();
  Router router(Specs({gone_port}), TestOptions());
  obs::JsonValue line = MustParse(RequestLine("doomed"));
  line.Set("trace", obs::JsonValue("00000000deadbeef"));
  const obs::JsonValue unavailable = MustParse(router.Handle(line.Dump()));
  ASSERT_FALSE(unavailable.Find("ok")->AsBool());
  EXPECT_EQ(unavailable.Find("trace")->AsString(), "00000000deadbeef");
  EXPECT_EQ(unavailable.Find("id")->AsString(), "doomed");

  // Untraced requests get a router-assigned id (never null) so even a
  // failure can be pulled from /tracezd after the fact.
  const obs::JsonValue assigned =
      MustParse(router.Handle(RequestLine("doomed")));
  ASSERT_FALSE(assigned.Find("trace")->is_null());
  uint64_t parsed = 0;
  ASSERT_TRUE(
      obs::ParseTraceIdHex(assigned.Find("trace")->AsString(), &parsed));
  EXPECT_NE(parsed, 0u);

  // Deadline exhaustion echoes the trace too.
  FakeReplica slow(ScriptedHandler("slow", 400.0));
  RouterOptions slow_options = TestOptions();
  slow_options.per_try_ms = 1000.0;
  Router slow_router(Specs({slow.port()}), slow_options);
  obs::JsonValue slow_line =
      MustParse(RequestLine("late", /*deadline_ms=*/60.0));
  slow_line.Set("trace", obs::JsonValue("0000000000001a7e"));
  const obs::JsonValue late = MustParse(slow_router.Handle(slow_line.Dump()));
  ASSERT_FALSE(late.Find("ok")->AsBool());
  EXPECT_EQ(static_cast<int>(late.Find("error")->Find("code")->AsNumber()),
            static_cast<int>(StatusCode::kDeadlineExceeded));
  EXPECT_EQ(late.Find("trace")->AsString(), "0000000000001a7e");
  slow_router.Stop();  // reap the still-sleeping attempt
}

// ---------------------------------------------------------------------------
// Fleet metrics: exposition parse + cross-replica aggregation
// ---------------------------------------------------------------------------

TEST(FleetMetricsTest, ParsesCountersGaugesHistogramsAndExemplars) {
  const std::string text =
      "# HELP telekit_requests_total requests\n"
      "# TYPE telekit_requests_total counter\n"
      "telekit_requests_total 7\n"
      "# TYPE telekit_queue_depth gauge\n"
      "telekit_queue_depth 3\n"
      "# TYPE telekit_request_ms histogram\n"
      "telekit_request_ms_bucket{le=\"1\"} 2 # {trace_id=\"abc\"} 0.5 1e9\n"
      "telekit_request_ms_bucket{le=\"5\"} 4\n"
      "telekit_request_ms_bucket{le=\"+Inf\"} 5\n"
      "telekit_request_ms_sum 11.5\n"
      "telekit_request_ms_count 5\n";
  const std::map<std::string, FleetMetric> metrics =
      ParsePrometheusText(text);
  ASSERT_EQ(metrics.count("telekit_requests_total"), 1u);
  EXPECT_EQ(metrics.at("telekit_requests_total").type, "counter");
  EXPECT_DOUBLE_EQ(metrics.at("telekit_requests_total").value, 7.0);
  EXPECT_DOUBLE_EQ(metrics.at("telekit_queue_depth").value, 3.0);
  ASSERT_EQ(metrics.count("telekit_request_ms"), 1u);
  const FleetMetric& histogram = metrics.at("telekit_request_ms");
  EXPECT_TRUE(histogram.has_histogram);
  // The +Inf bucket is implied by _count; the exemplar suffix is ignored.
  ASSERT_EQ(histogram.buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(histogram.buckets[0].first, 1.0);
  EXPECT_DOUBLE_EQ(histogram.buckets[0].second, 2.0);
  EXPECT_DOUBLE_EQ(histogram.buckets[1].first, 5.0);
  EXPECT_DOUBLE_EQ(histogram.buckets[1].second, 4.0);
  EXPECT_DOUBLE_EQ(histogram.sum, 11.5);
  EXPECT_DOUBLE_EQ(histogram.count, 5.0);
}

TEST(FleetMetricsTest, AggregatesSumsCountersMergesHistogramsLabelsGauges) {
  ReplicaScrape a;
  a.replica = "127.0.0.1:7101";
  a.ok = true;
  a.exposition =
      "# TYPE telekit_requests_total counter\n"
      "telekit_requests_total 7\n"
      "# TYPE telekit_queue_depth gauge\n"
      "telekit_queue_depth 3\n"
      "# TYPE telekit_request_ms histogram\n"
      "telekit_request_ms_bucket{le=\"1\"} 2\n"
      "telekit_request_ms_bucket{le=\"5\"} 4\n"
      "telekit_request_ms_bucket{le=\"+Inf\"} 5\n"
      "telekit_request_ms_sum 10\n"
      "telekit_request_ms_count 5\n";
  ReplicaScrape b;
  b.replica = "127.0.0.1:7102";
  b.ok = true;
  b.exposition =
      "# TYPE telekit_requests_total counter\n"
      "telekit_requests_total 5\n"
      "# TYPE telekit_queue_depth gauge\n"
      "telekit_queue_depth 9\n"
      "# TYPE telekit_request_ms histogram\n"
      "telekit_request_ms_bucket{le=\"2\"} 1\n"
      "telekit_request_ms_bucket{le=\"+Inf\"} 3\n"
      "telekit_request_ms_sum 9\n"
      "telekit_request_ms_count 3\n";
  ReplicaScrape down;
  down.replica = "127.0.0.1:7103";
  const std::string merged = AggregateFleetMetrics({a, b, down});

  // Fleet meta-gauges lead the exposition.
  EXPECT_NE(merged.find("telekit_fleet_replicas 3\n"), std::string::npos);
  EXPECT_NE(merged.find(
                "telekit_fleet_replica_up{replica=\"127.0.0.1:7101\"} 1\n"),
            std::string::npos);
  EXPECT_NE(merged.find(
                "telekit_fleet_replica_up{replica=\"127.0.0.1:7103\"} 0\n"),
            std::string::npos);
  // Counters: one fleet-wide sum under the unchanged name.
  EXPECT_NE(merged.find("telekit_requests_total 12\n"), std::string::npos);
  // Gauges: one series per replica (a sum would hide the hot replica).
  EXPECT_NE(merged.find("telekit_queue_depth{replica=\"127.0.0.1:7101\"} 3\n"),
            std::string::npos);
  EXPECT_NE(merged.find("telekit_queue_depth{replica=\"127.0.0.1:7102\"} 9\n"),
            std::string::npos);
  // Histograms: cumulative counts merged on the union le grid.
  EXPECT_NE(merged.find("telekit_request_ms_bucket{le=\"1\"} 2\n"),
            std::string::npos);  // a:2 + b:0
  EXPECT_NE(merged.find("telekit_request_ms_bucket{le=\"2\"} 3\n"),
            std::string::npos);  // a:2 (step holds) + b:1
  EXPECT_NE(merged.find("telekit_request_ms_bucket{le=\"5\"} 5\n"),
            std::string::npos);  // a:4 + b:1
  EXPECT_NE(merged.find("telekit_request_ms_bucket{le=\"+Inf\"} 8\n"),
            std::string::npos);
  EXPECT_NE(merged.find("telekit_request_ms_sum 19\n"), std::string::npos);
  EXPECT_NE(merged.find("telekit_request_ms_count 8\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency: prober + forwarders under load (TSan coverage)
// ---------------------------------------------------------------------------

TEST(RouteConcurrencyTest, ProberAndForwardersRaceCleanly) {
  FakeReplica a(ScriptedHandler("a", 1.0));
  FakeReplica b(ScriptedHandler("b", 1.0));
  RouterOptions options = TestOptions();
  options.hedge = true;
  options.hedge_delay_ms = 2.0;
  options.prober.interval_ms = 1.0;
  std::atomic<bool> flaky{true};
  // The probe signal flips while forwarders run, exercising the
  // eject/readmit transitions concurrently with PlanAttempts.
  options.probe_override = [&flaky](size_t replica, double) {
    return replica == 0 ? true : flaky.load();
  };
  Router router(Specs({a.port(), b.port()}), options);
  router.Start();

  std::vector<std::thread> clients;
  std::atomic<int> responses{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&router, &responses, t] {
      for (int i = 0; i < 25; ++i) {
        const std::string line = router.Handle(
            RequestLine("client-" + std::to_string(t) + "-" +
                        std::to_string(i)));
        if (!line.empty()) responses.fetch_add(1);
      }
    });
  }
  std::thread flipper([&flaky] {
    for (int i = 0; i < 20; ++i) {
      flaky.store(!flaky.load());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    flaky.store(true);
  });
  std::thread observer([&router] {
    for (int i = 0; i < 30; ++i) {
      router.FleetJson();
      router.prober().StatusJson();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& t : clients) t.join();
  flipper.join();
  observer.join();
  router.Stop();
  EXPECT_EQ(responses.load(), 100);
}

// /spanz scrapes (store queries + trace assembly) race traced traffic and
// the recording writers; run under TSan via scripts/check_tier1.sh.
TEST(RouteConcurrencyTest, SpanScrapesRaceTracedTraffic) {
  obs::SpanStore::Global().Reset();
  FakeReplica a(ScriptedHandler("a", 1.0));
  FakeReplica b(ScriptedHandler("b", 1.0));
  RouterOptions options = TestOptions();
  options.hedge = true;
  options.hedge_delay_ms = 2.0;
  Router router(Specs({a.port(), b.port()}), options);
  router.Start();

  std::atomic<bool> stop{false};
  std::thread scraper([&stop] {
    obs::HttpRequest summary;
    summary.path = "/spanz";
    obs::HttpRequest query;
    query.path = "/spanz";
    query.query = "trace_id=00000000000000aa";
    while (!stop.load()) {
      obs::SpanStore::Global().HandleQuery(summary);
      obs::SpanStore::Global().HandleQuery(query);
      AssembleTraceJson(0xaau, CollectSpans(0xaau, {}, 10.0));
    }
  });
  std::vector<std::thread> clients;
  std::atomic<int> responses{0};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&router, &responses, t] {
      for (int i = 0; i < 20; ++i) {
        obs::JsonValue line = MustParse(
            RequestLine("traced-" + std::to_string(t) + "-" +
                        std::to_string(i)));
        line.Set("trace", obs::JsonValue("00000000000000aa"));
        if (!router.Handle(line.Dump()).empty()) responses.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  scraper.join();
  router.Stop();
  EXPECT_EQ(responses.load(), 60);
  EXPECT_GT(obs::SpanStore::Global().total_recorded(), 0u);
  obs::SpanStore::Global().Reset();
}

// ---------------------------------------------------------------------------
// NdjsonServer over real sockets: byte-at-a-time and coalesced writes
// ---------------------------------------------------------------------------

TEST(NdjsonServerTest, SurvivesArbitraryWriteSegmentation) {
  serve::NdjsonServer server;
  ASSERT_TRUE(server.Start(0, [](std::string line) {
    std::promise<std::string> ready;
    ready.set_value("echo:" + line);
    return ready.get_future();
  }));

  const int fd = serve::ConnectTcp("127.0.0.1", server.port(), 1000.0);
  ASSERT_GE(fd, 0);
  // One line dribbled byte-by-byte, then two lines in a single send.
  const std::string dribble = "{\"n\":1}\n";
  for (char c : dribble) {
    ASSERT_TRUE(serve::SendAll(fd, &c, 1));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const std::string coalesced = "{\"n\":2}\n{\"n\":3}\n";
  ASSERT_TRUE(serve::SendAll(fd, coalesced.data(), coalesced.size()));
  ::shutdown(fd, SHUT_WR);

  serve::LineReader reader(fd);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "echo:{\"n\":1}");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "echo:{\"n\":2}");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "echo:{\"n\":3}");
  EXPECT_FALSE(reader.ReadLine(&line));
  ::close(fd);
  server.Stop();
}

TEST(NdjsonServerTest, DrainStopsAcceptingButFinishesSessions) {
  serve::NdjsonServer server;
  ASSERT_TRUE(server.Start(0, [](std::string line) {
    return std::async(std::launch::deferred,
                      [line = std::move(line)] { return "ok:" + line; });
  }));
  const int fd = serve::ConnectTcp("127.0.0.1", server.port(), 1000.0);
  ASSERT_GE(fd, 0);
  // Round-trip once so the session is accepted before the listener dies
  // (a queued-but-unaccepted connection is torn down with the listener).
  serve::LineReader reader(fd);
  std::string line;
  ASSERT_TRUE(serve::SendLine(fd, "early"));
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "ok:early");

  server.Drain();
  // New connections are refused (the listener is shut down)...
  const int rejected = serve::ConnectTcp("127.0.0.1", server.port(), 200.0);
  if (rejected >= 0) ::close(rejected);  // backlog race; never served
  // ...but the existing session still answers.
  ASSERT_TRUE(serve::SendLine(fd, "late"));
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "ok:late");
  ::close(fd);
  server.Stop();
}

// Regression: finished sessions must be reaped while the server runs — a
// long-running daemon must not hold one fd + thread per disconnected
// client until Stop() (fd exhaustion kills the accept loop).
TEST(NdjsonServerTest, ReapsFinishedConnections) {
  serve::NdjsonServer server;
  ASSERT_TRUE(server.Start(0, [](std::string line) {
    std::promise<std::string> ready;
    ready.set_value("echo:" + line);
    return ready.get_future();
  }));

  for (int i = 0; i < 3; ++i) {
    const int fd = serve::ConnectTcp("127.0.0.1", server.port(), 1000.0);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve::SendLine(fd, "ping"));
    serve::LineReader reader(fd);
    std::string line;
    ASSERT_TRUE(reader.ReadLine(&line));
    ::close(fd);
  }
  // The accept loop sweeps at least once a second (listener timeout), so
  // every closed session is joined + closed well within the deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.tracked_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(server.tracked_connections(), 0u);
  server.Stop();
}

TEST(ConnectTcpTest, ResolvesHostnames) {
  serve::NdjsonServer server;
  ASSERT_TRUE(server.Start(0, [](std::string line) {
    std::promise<std::string> ready;
    ready.set_value("hi:" + line);
    return ready.get_future();
  }));
  // "localhost" exercises getaddrinfo (and the fall-through past any ::1
  // candidate — the server listens on 127.0.0.1 only).
  const int fd = serve::ConnectTcp("localhost", server.port(), 2000.0);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(serve::SendLine(fd, "there"));
  serve::LineReader reader(fd);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "hi:there");
  ::close(fd);
  server.Stop();
}

TEST(RouterTest, ReloadAllRejectsUnknownModelWithoutFanOut) {
  FakeReplica a(ScriptedHandler("a"));
  Router router(Specs({a.port()}), TestOptions());
  // '&' would corrupt the query string fanned out to every replica.
  const obs::JsonValue rejected = router.ReloadAll("bad&model=x", 1);
  ASSERT_NE(rejected.Find("error"), nullptr);
  EXPECT_EQ(rejected.Find("replicas")->size(), 0u);
  // A known wire name passes validation and reaches the per-replica loop
  // (here reporting the spec's missing admin plane, not a rejection).
  const obs::JsonValue accepted = router.ReloadAll("telebert", 1);
  EXPECT_EQ(accepted.Find("error"), nullptr);
  ASSERT_EQ(accepted.Find("replicas")->size(), 1u);
  EXPECT_NE(accepted.Find("replicas")->at(0).Find("error"), nullptr);
}

}  // namespace
}  // namespace route
}  // namespace telekit

// Tests for the telekit::obs observability layer: structured logging
// (level filtering, sink capture), the metrics registry (counter / gauge /
// histogram semantics, JSON snapshot round-trip), nested span aggregation
// and Chrome trace_event export, plus the disabled-logging overhead bound
// the ISSUE's acceptance criteria call for.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace telekit {
namespace obs {
namespace {

// Captures every dispatched record; restores the default sink and the
// info level on destruction so tests do not leak state into each other.
class SinkCapture {
 public:
  SinkCapture() {
    Logger::Global().SetSink(
        [this](const LogRecord& record) { records_.push_back(record); });
  }
  ~SinkCapture() {
    Logger::Global().SetSink(nullptr);
    Logger::Global().set_level(LogLevel::kInfo);
  }
  const std::vector<LogRecord>& records() const { return records_; }

 private:
  std::vector<LogRecord> records_;
};

TEST(LogTest, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kWarn), LogLevel::kWarn);
}

TEST(LogTest, LevelFiltering) {
  SinkCapture capture;
  Logger::Global().set_level(LogLevel::kWarn);
  TELEKIT_LOG(DEBUG) << "debug message";
  TELEKIT_LOG(INFO) << "info message";
  TELEKIT_LOG(WARN) << "warn message";
  TELEKIT_LOG(ERROR) << "error message";
  ASSERT_EQ(capture.records().size(), 2u);
  EXPECT_EQ(capture.records()[0].level, LogLevel::kWarn);
  EXPECT_EQ(capture.records()[0].message, "warn message");
  EXPECT_EQ(capture.records()[1].level, LogLevel::kError);
}

TEST(LogTest, OffSilencesEverything) {
  SinkCapture capture;
  Logger::Global().set_level(LogLevel::kOff);
  TELEKIT_LOG(ERROR) << "should not appear";
  EXPECT_TRUE(capture.records().empty());
}

TEST(LogTest, SinkCapturesStructuredFields) {
  SinkCapture capture;
  Logger::Global().set_level(LogLevel::kDebug);
  TELEKIT_LOG(INFO) << "step done" << F("step", 42) << F("loss", 0.5);
  ASSERT_EQ(capture.records().size(), 1u);
  const LogRecord& record = capture.records()[0];
  EXPECT_EQ(record.message, "step done");
  ASSERT_EQ(record.fields.size(), 2u);
  EXPECT_EQ(record.fields[0].first, "step");
  EXPECT_EQ(record.fields[0].second, "42");
  EXPECT_EQ(record.fields[1].first, "loss");
  EXPECT_EQ(record.fields[1].second, "0.5");
  EXPECT_EQ(record.Rendered(), "step done step=42 loss=0.5");
  EXPECT_STREQ(record.file, "obs_test.cc");
  EXPECT_GT(record.line, 0);
}

TEST(LogTest, DisabledLevelEvaluatesNothing) {
  SinkCapture capture;
  Logger::Global().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  TELEKIT_LOG(DEBUG) << "x" << F("v", expensive());
  EXPECT_EQ(evaluations, 0);
  TELEKIT_LOG(ERROR) << "x" << F("v", expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST(MetricsTest, CounterSemantics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test/counter");
  counter.Zero();
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  // Same name returns the same object.
  EXPECT_EQ(&registry.GetCounter("test/counter"), &counter);
  // Reset zeroes in place: cached references stay valid.
  registry.Reset();
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  EXPECT_EQ(registry.GetCounter("test/counter").value(), 1u);
}

// Many threads racing registration (same + distinct names) and updates:
// first-use creation must hand every thread the same object, and counts
// must not be lost. Run under -DTELEKIT_TSAN=ON for the data-race check.
TEST(MetricsTest, RegistryIsThreadSafeUnderContention) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  constexpr int kIterations = 5000;
  registry.GetCounter("test/mt_counter").Zero();
  registry.GetHistogram("test/mt_histogram", {1.0, 10.0}).Zero();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Per-thread metric: registration races with other names only.
      Counter& own =
          registry.GetCounter("test/mt_own_" + std::to_string(t));
      for (int i = 0; i < kIterations; ++i) {
        registry.GetCounter("test/mt_counter").Increment();
        registry.GetHistogram("test/mt_histogram")
            .Observe(static_cast<double>(i % 20));
        registry.GetGauge("test/mt_gauge").Set(static_cast<double>(i));
        own.Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("test/mt_counter").value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.GetHistogram("test/mt_histogram").count(),
            static_cast<uint64_t>(kThreads) * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("test/mt_own_" + std::to_string(t)).value(),
              static_cast<uint64_t>(kIterations));
  }
  // Snapshot while racing is exercised implicitly above; a final snapshot
  // must see every registered name.
  EXPECT_TRUE(registry.Snapshot().Find("counters")->Has("test/mt_counter"));
}

TEST(MetricsTest, GaugeSemantics) {
  Gauge& gauge = MetricsRegistry::Global().GetGauge("test/gauge");
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.Zero();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricsTest, HistogramSemantics) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (le 1)
  histogram.Observe(1.0);    // bucket 0 (inclusive upper bound)
  histogram.Observe(7.0);    // bucket 1 (le 10)
  histogram.Observe(1000.0); // overflow bucket
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1008.5);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 1000.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 1008.5 / 4.0);
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 1u);
  EXPECT_EQ(histogram.bucket_count(2), 0u);
  EXPECT_EQ(histogram.bucket_count(3), 1u);  // overflow

  JsonValue json = histogram.ToJson();
  EXPECT_DOUBLE_EQ(json.Find("count")->AsNumber(), 4.0);
  const JsonValue* buckets = json.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  // Sparse export: only non-empty buckets appear (3 of 4 here).
  EXPECT_EQ(buckets->size(), 3u);
  EXPECT_EQ(buckets->at(2).Find("le")->AsString(), "inf");

  histogram.Zero();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.bucket_count(0), 0u);
}

TEST(MetricsTest, ScopedTimerObservesIntoHistogram) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test/timer_ms");
  histogram.Zero();
  {
    ScopedTimer timer(histogram);
  }
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_GE(histogram.max(), 0.0);
}

TEST(MetricsTest, SnapshotJsonRoundTrip) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  registry.GetCounter("rt/counter").Increment(7);
  registry.GetGauge("rt/gauge").Set(1.25);
  registry.GetHistogram("rt/hist_ms", {1.0, 5.0}).Observe(3.0);

  const std::string dumped = registry.Snapshot().Dump();
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(dumped, &parsed, &error)) << error;
  EXPECT_DOUBLE_EQ(parsed.Find("counters")->Find("rt/counter")->AsNumber(),
                   7.0);
  EXPECT_DOUBLE_EQ(parsed.Find("gauges")->Find("rt/gauge")->AsNumber(), 1.25);
  const JsonValue* hist = parsed.Find("histograms")->Find("rt/hist_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->AsNumber(), 3.0);
}

TEST(JsonTest, DumpParseRoundTrip) {
  JsonValue object = JsonValue::Object();
  object.Set("string", JsonValue("line1\nline2 \"quoted\""));
  object.Set("int", JsonValue(42));
  object.Set("float", JsonValue(2.5));
  object.Set("negative", JsonValue(-17));
  object.Set("bool", JsonValue(true));
  object.Set("null", JsonValue());
  JsonValue array = JsonValue::Array();
  array.Append(JsonValue(1));
  array.Append(JsonValue("two"));
  JsonValue nested = JsonValue::Object();
  nested.Set("deep", JsonValue(3.0));
  array.Append(std::move(nested));
  object.Set("array", std::move(array));

  for (int indent : {0, 2}) {
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(object.Dump(indent), &parsed, &error))
        << error;
    EXPECT_EQ(parsed.Find("string")->AsString(), "line1\nline2 \"quoted\"");
    EXPECT_DOUBLE_EQ(parsed.Find("int")->AsNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parsed.Find("float")->AsNumber(), 2.5);
    EXPECT_DOUBLE_EQ(parsed.Find("negative")->AsNumber(), -17.0);
    EXPECT_TRUE(parsed.Find("bool")->AsBool());
    EXPECT_TRUE(parsed.Find("null")->is_null());
    const JsonValue* parsed_array = parsed.Find("array");
    ASSERT_EQ(parsed_array->size(), 3u);
    EXPECT_EQ(parsed_array->at(1).AsString(), "two");
    EXPECT_DOUBLE_EQ(parsed_array->at(2).Find("deep")->AsNumber(), 3.0);
  }
}

TEST(JsonTest, ParseRejectsGarbage) {
  JsonValue out;
  EXPECT_FALSE(JsonValue::Parse("", &out));
  EXPECT_FALSE(JsonValue::Parse("{", &out));
  EXPECT_FALSE(JsonValue::Parse("[1,]", &out));
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing", &out));
  EXPECT_FALSE(JsonValue::Parse("nope", &out));
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}", &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, ParseUnicodeEscape) {
  JsonValue out;
  ASSERT_TRUE(JsonValue::Parse("\"a\\u00e9b\"", &out));
  EXPECT_EQ(out.AsString(), "a\xc3\xa9" "b");
}

TEST(JsonTest, ParseSurrogatePairEscape) {
  JsonValue out;
  // U+1F600 (emoji) = \uD83D \uDE00, which must decode to one code point
  // and the 4-byte UTF-8 sequence F0 9F 98 80 — not two 3-byte CESU-8
  // halves.
  ASSERT_TRUE(JsonValue::Parse("\"\\ud83d\\ude00\"", &out));
  EXPECT_EQ(out.AsString(), "\xF0\x9F\x98\x80");
  ASSERT_TRUE(JsonValue::Parse("\"a\\uD83D\\uDE00b\"", &out));
  EXPECT_EQ(out.AsString(), "a\xF0\x9F\x98\x80" "b");
}

TEST(JsonTest, SurrogatePairDumpParseRoundTrip) {
  JsonValue out;
  ASSERT_TRUE(JsonValue::Parse("\"\\ud83d\\ude00\"", &out));
  const std::string dumped = JsonValue(out.AsString()).Dump();
  JsonValue again;
  ASSERT_TRUE(JsonValue::Parse(dumped, &again));
  EXPECT_EQ(again.AsString(), out.AsString());
}

TEST(JsonTest, RejectsLoneSurrogates) {
  JsonValue out;
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83d\"", &out));         // lone high
  EXPECT_FALSE(JsonValue::Parse("\"\\ude00\"", &out));         // lone low
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83dxx\"", &out));       // high + junk
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83d\\u0041\"", &out));  // high + BMP
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83d\"", &out, &error));
  EXPECT_NE(error.find("surrogate"), std::string::npos);
}

// Burns ~a few hundred microseconds so span durations are nonzero.
uint64_t BusyWork(int iterations) {
  volatile uint64_t accumulator = 0;
  for (int i = 0; i < iterations; ++i) {
    accumulator = accumulator + static_cast<uint64_t>(i);
  }
  return accumulator;
}

TEST(TraceTest, NestedSpanAggregation) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Reset();
  collector.set_recording(true);
  {
    Span outer("test/outer");
    BusyWork(50000);
    {
      Span inner("test/inner");
      BusyWork(50000);
    }
    {
      Span inner("test/inner");
      BusyWork(50000);
    }
  }
  collector.set_recording(false);

  const auto aggregate = collector.Aggregate();
  ASSERT_EQ(aggregate.count("test/outer"), 1u);
  ASSERT_EQ(aggregate.count("test/inner"), 1u);
  const SpanStats& outer = aggregate.at("test/outer");
  const SpanStats& inner = aggregate.at("test/inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 2u);
  // Parent duration covers both children.
  EXPECT_GE(outer.total_us, inner.total_us);
  // Self time excludes direct children but keeps the parent's own work.
  EXPECT_LE(outer.self_us, outer.total_us);
  EXPECT_GE(outer.self_us + inner.total_us, outer.total_us);
  EXPECT_GE(inner.max_us, inner.total_us / 2);
}

TEST(TraceTest, TraceEventJsonIsChromeLoadable) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Reset();
  collector.set_recording(true);
  {
    Span outer("test/outer");
    Span inner("test/inner");
    BusyWork(10000);
  }
  collector.set_recording(false);

  EXPECT_EQ(collector.NumEvents(), 2u);
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(
      JsonValue::Parse(collector.TraceEventsJson().Dump(), &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 2u);
  // Spans close inner-first, so the inner span is recorded first.
  const JsonValue& inner = parsed.at(0);
  const JsonValue& outer = parsed.at(1);
  EXPECT_EQ(inner.Find("name")->AsString(), "test/inner");
  EXPECT_EQ(inner.Find("ph")->AsString(), "X");
  EXPECT_DOUBLE_EQ(inner.Find("args")->Find("depth")->AsNumber(), 1.0);
  EXPECT_EQ(outer.Find("name")->AsString(), "test/outer");
  EXPECT_DOUBLE_EQ(outer.Find("args")->Find("depth")->AsNumber(), 0.0);
  // The inner event starts no earlier and fits inside the outer event.
  EXPECT_GE(inner.Find("ts")->AsNumber(), outer.Find("ts")->AsNumber());
  EXPECT_LE(inner.Find("dur")->AsNumber(), outer.Find("dur")->AsNumber());
}

TEST(MetricsTest, LatencyHistogramQuantileAccuracy) {
  LatencyHistogram histogram;
  // Uniform 1..1000 ms: the true q-quantile is q * 1000.
  for (int i = 1; i <= 1000; ++i) {
    histogram.Observe(static_cast<double>(i));
  }
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 1000.0);
  // Log bucketing bounds relative error by 2^(1/16) - 1 (~4.4%); allow a
  // little slack for interpolation at bucket edges.
  for (const double q : {0.50, 0.90, 0.95, 0.99}) {
    const double expected = q * 1000.0;
    EXPECT_NEAR(histogram.Quantile(q), expected, expected * 0.06)
        << "q=" << q;
  }
  // Quantiles never escape the observed range, even at the extremes.
  EXPECT_GE(histogram.Quantile(0.0), histogram.min());
  EXPECT_LE(histogram.Quantile(1.0), histogram.max());
}

TEST(MetricsTest, LatencyHistogramEdgeCases) {
  LatencyHistogram histogram;
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);  // empty
  // Out-of-range and non-finite observations clamp to the tracked range
  // instead of corrupting the buckets.
  histogram.Observe(0.0);
  histogram.Observe(-5.0);
  histogram.Observe(1e9);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_GE(histogram.Quantile(0.5), 0.0);
  histogram.Zero();
  EXPECT_EQ(histogram.count(), 0u);

  // A single observation: every quantile is that value (clamped exactly).
  histogram.Observe(3.7);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 3.7);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 3.7);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 3.7);
}

TEST(MetricsTest, LatencyHistogramBoundaryRanks) {
  LatencyHistogram histogram;
  // 10 fast + 90 slow samples: ranks 1..10 live in the fast bucket. The
  // boundary rank q = 0.10 (rank exactly 10, i.e. q*n equal to the fast
  // bucket's cumulative count) must resolve strictly inside the fast
  // bucket — the old fractional-rank walk pinned it to the bucket's upper
  // edge — and rank 11 (q = 0.11) must jump to the slow cluster.
  for (int i = 0; i < 10; ++i) histogram.Observe(2.0);
  for (int i = 0; i < 90; ++i) histogram.Observe(500.0);
  const double fast_upper =
      LatencyHistogram::BucketUpperMs(LatencyHistogram::BucketIndex(2.0));
  EXPECT_GE(histogram.Quantile(0.10), 2.0);
  EXPECT_LT(histogram.Quantile(0.10), fast_upper);
  EXPECT_NEAR(histogram.Quantile(0.11), 500.0, 500.0 * 0.06);
  // Extremes map to nearest ranks 1 and n, never below min or above max.
  EXPECT_NEAR(histogram.Quantile(0.0), 2.0, 2.0 * 0.06);
  EXPECT_NEAR(histogram.Quantile(1.0), 500.0, 500.0 * 0.06);
  EXPECT_GE(histogram.Quantile(0.0), histogram.min());
  EXPECT_LE(histogram.Quantile(1.0), histogram.max());
}

TEST(MetricsTest, LatencyHistogramRepeatedValueExactAtAllRanks) {
  LatencyHistogram histogram;
  // Eight identical samples: every rank lands in the same bucket and the
  // [min, max] clamp collapses the estimate to the exact value, including
  // at the rank boundaries q = k/8.
  for (int i = 0; i < 8; ++i) histogram.Observe(7.25);
  for (const double q : {0.0, 0.125, 0.5, 0.875, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram.Quantile(q), 7.25) << "q=" << q;
  }
}

TEST(MetricsTest, LatencyHistogramConcurrentObserve) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(1.0 + static_cast<double>((t + i) % 100));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(histogram.Quantile(0.5), 1.0);
  EXPECT_LE(histogram.Quantile(0.99), 101.0);
}

// Regression: an empty histogram used to dump min=inf / max=-inf style
// sentinels; both kinds must emit null so the artifact stays parseable and
// unambiguous.
TEST(MetricsTest, EmptyHistogramSnapshotHasNullMinMax) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  registry.GetHistogram("empty/fixed_ms");
  registry.GetLatencyHistogram("empty/latency_ms");

  const std::string dumped = registry.Snapshot().Dump();
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(dumped, &parsed, &error)) << error;

  const JsonValue* fixed =
      parsed.Find("histograms")->Find("empty/fixed_ms");
  ASSERT_NE(fixed, nullptr);
  EXPECT_DOUBLE_EQ(fixed->Find("count")->AsNumber(), 0.0);
  ASSERT_NE(fixed->Find("min"), nullptr);
  EXPECT_TRUE(fixed->Find("min")->is_null());
  EXPECT_TRUE(fixed->Find("max")->is_null());

  const JsonValue* latency =
      parsed.Find("latency_histograms")->Find("empty/latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->Find("count")->AsNumber(), 0.0);
  EXPECT_TRUE(latency->Find("min")->is_null());
  EXPECT_TRUE(latency->Find("max")->is_null());

  // Once observed, min/max become numbers again.
  registry.GetHistogram("empty/fixed_ms").Observe(2.0);
  const JsonValue snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.Find("histograms")
                       ->Find("empty/fixed_ms")
                       ->Find("min")
                       ->AsNumber(),
                   2.0);
  registry.Reset();
}

TEST(TraceTest, SaturationCountsDropsAndWarnsOnce) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Reset();
  collector.set_max_events(4);
  collector.set_recording(true);
  SinkCapture capture;
  for (int i = 0; i < 10; ++i) {
    Span span("test/drop");
  }
  collector.set_recording(false);

  EXPECT_EQ(collector.NumEvents(), 4u);
  EXPECT_EQ(collector.NumDropped(), 6u);
  // Aggregation still sees every span; only the event buffer is bounded.
  EXPECT_EQ(collector.Aggregate().at("test/drop").count, 10u);
  EXPECT_DOUBLE_EQ(
      collector.AggregateJson().Find("dropped_events")->AsNumber(), 6.0);

  // Exactly one WARNING at first saturation, not one per dropped span.
  int warnings = 0;
  for (const LogRecord& record : capture.records()) {
    if (record.level == LogLevel::kWarn &&
        record.message.find("saturated") != std::string::npos) {
      ++warnings;
    }
  }
  EXPECT_EQ(warnings, 1);

  collector.Reset();
  EXPECT_EQ(collector.NumDropped(), 0u);
  collector.set_max_events(TraceCollector::kMaxEvents);
}

TEST(TraceTest, TraceIdHexRoundTrip) {
  const uint64_t id = NextTraceId();
  EXPECT_NE(id, 0u);
  EXPECT_NE(NextTraceId(), id);  // ids are distinct
  const std::string hex = TraceIdToHex(id);
  EXPECT_EQ(hex.size(), 16u);
  uint64_t parsed = 0;
  ASSERT_TRUE(ParseTraceIdHex(hex, &parsed));
  EXPECT_EQ(parsed, id);

  uint64_t out = 0;
  EXPECT_TRUE(ParseTraceIdHex("deadBEEF", &out));
  EXPECT_EQ(out, 0xdeadbeefu);
  EXPECT_FALSE(ParseTraceIdHex("", &out));
  EXPECT_FALSE(ParseTraceIdHex("xyz", &out));
  EXPECT_FALSE(ParseTraceIdHex("0123456789abcdef0", &out));  // 17 digits
}

TEST(TraceTest, SlowTraceRingOverwritesOldest) {
  SlowTraceRing ring(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    RequestTrace trace;
    trace.trace_id = i;
    trace.op = "rca";
    trace.total_us = i * 1000;
    trace.queue_us = i * 100;
    ring.Record(std::move(trace));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_recorded(), 5u);
  const std::vector<RequestTrace> traces = ring.Snapshot();
  ASSERT_EQ(traces.size(), 3u);
  // Oldest two (ids 1, 2) were overwritten.
  for (const RequestTrace& trace : traces) {
    EXPECT_GE(trace.trace_id, 3u);
  }

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(ring.TraceEventsJson().Dump(), &parsed,
                               &error))
      << error;
  ASSERT_GT(parsed.size(), 0u);
  EXPECT_EQ(parsed.at(0).Find("ph")->AsString(), "X");
  EXPECT_EQ(parsed.at(0).Find("args")->Find("op")->AsString(), "rca");

  ring.Reset();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_recorded(), 0u);
}

TEST(TraceTest, AggregationWorksWithRecordingOff) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Reset();
  ASSERT_FALSE(collector.recording());
  {
    Span span("test/no_recording");
  }
  EXPECT_EQ(collector.NumEvents(), 0u);
  EXPECT_EQ(collector.Aggregate().at("test/no_recording").count, 1u);
}

// ---------------------------------------------------------------------------
// SpanStore: the bounded ring behind /spanz
// ---------------------------------------------------------------------------

TEST(SpanStoreTest, RecordAssignsIdsAndJsonRoundTrips) {
  SpanStore store(8);
  store.SetProcessLabel("test:1");
  SpanRecord span;
  span.trace_id = 0xabcu;
  span.parent_span = 0x77u;
  span.name = "route/attempt";
  span.replica = "127.0.0.1:7101";
  span.outcome = "won";
  span.attempt = 2;
  span.hedge = true;
  span.start_unix_us = 1.5e15;
  span.dur_us = 420;
  store.Record(span);  // span_id assigned, process filled from the label
  const std::vector<SpanRecord> held = store.Query(0xabcu);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_NE(held[0].span_id, 0u);
  EXPECT_EQ(held[0].process, "test:1");

  SpanRecord back;
  ASSERT_TRUE(SpanRecord::FromJson(held[0].ToJson(), &back));
  EXPECT_EQ(back.trace_id, 0xabcu);
  EXPECT_EQ(back.span_id, held[0].span_id);
  EXPECT_EQ(back.parent_span, 0x77u);
  EXPECT_EQ(back.name, "route/attempt");
  EXPECT_EQ(back.process, "test:1");
  EXPECT_EQ(back.replica, "127.0.0.1:7101");
  EXPECT_EQ(back.outcome, "won");
  EXPECT_EQ(back.attempt, 2);
  EXPECT_TRUE(back.hedge);
  EXPECT_TRUE(back.ok);
  EXPECT_DOUBLE_EQ(back.start_unix_us, 1.5e15);
  EXPECT_EQ(back.dur_us, 420u);

  // A root span's zero parent serializes as null and parses back as 0.
  SpanRecord root;
  root.trace_id = 1;
  root.name = "serve/request";
  store.Record(root);
  const std::vector<SpanRecord> roots = store.Query(1);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_TRUE(roots[0].ToJson().Find("parent_span")->is_null());
  SpanRecord root_back;
  ASSERT_TRUE(SpanRecord::FromJson(roots[0].ToJson(), &root_back));
  EXPECT_EQ(root_back.parent_span, 0u);
}

TEST(SpanStoreTest, BoundedRingEvictsOldestAndFiltersByTrace) {
  SpanStore store(4);
  for (uint64_t i = 1; i <= 6; ++i) {
    SpanRecord span;
    span.trace_id = 42;
    span.span_id = i;
    span.name = "s";
    span.start_unix_us = static_cast<double>(i);
    store.Record(span);
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.total_recorded(), 6u);
  const std::vector<SpanRecord> held = store.Query(42);
  ASSERT_EQ(held.size(), 4u);
  // Oldest first; span ids 1 and 2 were overwritten.
  EXPECT_EQ(held.front().span_id, 3u);
  EXPECT_EQ(held.back().span_id, 6u);
  EXPECT_TRUE(store.Query(43).empty());

  store.set_enabled(false);
  SpanRecord dropped;
  dropped.trace_id = 42;
  store.Record(dropped);
  EXPECT_EQ(store.total_recorded(), 6u);
  store.set_enabled(true);
  store.Reset();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.total_recorded(), 0u);
}

TEST(SpanStoreTest, HandleQueryServesSummaryTraceAndBadId) {
  SpanStore store(8);
  store.SetProcessLabel("test:2");
  SpanRecord span;
  span.trace_id = 0xfeedu;
  span.name = "route/request";
  store.Record(span);

  HttpRequest summary;
  summary.path = "/spanz";
  const HttpResponse summary_reply = store.HandleQuery(summary);
  EXPECT_EQ(summary_reply.status, 200);
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(summary_reply.body, &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("process")->AsString(), "test:2");
  EXPECT_EQ(parsed.Find("size")->AsNumber(), 1.0);

  HttpRequest query;
  query.path = "/spanz";
  query.query = "trace_id=000000000000feed";
  const HttpResponse reply = store.HandleQuery(query);
  EXPECT_EQ(reply.status, 200);
  ASSERT_TRUE(JsonValue::Parse(reply.body, &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("count")->AsNumber(), 1.0);
  ASSERT_EQ(parsed.Find("spans")->size(), 1u);
  EXPECT_EQ(parsed.Find("spans")->at(0).Find("name")->AsString(),
            "route/request");

  HttpRequest bad;
  bad.path = "/spanz";
  bad.query = "trace_id=zz";
  EXPECT_EQ(store.HandleQuery(bad).status, 400);
}

TEST(ReportTest, WriteReportRoundTrips) {
  MetricsRegistry::Global().Reset();
  TraceCollector::Global().Reset();
  TraceCollector::Global().set_recording(true);
  MetricsRegistry::Global().GetCounter("report/counter").Increment(3);
  {
    Span span("report/span");
    BusyWork(10000);
  }
  TraceCollector::Global().set_recording(false);

  const std::string path = ::testing::TempDir() + "/obs_report_test.json";
  ASSERT_TRUE(WriteReport(path));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(buffer.str(), &parsed, &error)) << error;
  EXPECT_DOUBLE_EQ(
      parsed.Find("metrics")->Find("counters")->Find("report/counter")
          ->AsNumber(),
      3.0);
  EXPECT_GE(parsed.Find("spans")->Find("report/span")->Find("total_ms")
                ->AsNumber(),
            0.0);
  ASSERT_TRUE(parsed.Find("traceEvents")->is_array());
  EXPECT_EQ(parsed.Find("traceEvents")->size(), 1u);
  std::remove(path.c_str());
}

// Acceptance criterion: logging must add < 5% wall-clock overhead at the
// default (info) level. Hot loops log at DEBUG, so the cost of a disabled
// statement — one relaxed atomic load and a branch — is what matters. We
// compare a floating-point workload against the same workload with a
// disabled log statement per iteration, taking the min of several runs to
// damp scheduler noise, and also accept any run where the absolute
// disabled-statement cost is below 30ns (three orders of magnitude under
// the ~0.1ms instrumented units: a training step is >10ms, an encode >1ms).
TEST(OverheadTest, DisabledLoggingUnderFivePercent) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "timing bound is meaningless under TSan instrumentation";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "timing bound is meaningless under TSan instrumentation";
#endif
#endif
  Logger::Global().set_level(LogLevel::kInfo);  // default level
  constexpr int kIterations = 200000;
  volatile double sink = 0.0;

  auto baseline_pass = [&sink]() {
    for (int i = 0; i < kIterations; ++i) {
      sink = sink + static_cast<double>(i) * 1.0000001;
    }
  };
  auto logged_pass = [&sink]() {
    for (int i = 0; i < kIterations; ++i) {
      TELEKIT_LOG(DEBUG) << "hot loop" << F("i", i);
      sink = sink + static_cast<double>(i) * 1.0000001;
    }
  };
  auto time_ns = [](auto&& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  int64_t baseline = INT64_MAX, logged = INT64_MAX;
  for (int run = 0; run < 5; ++run) {
    baseline = std::min(baseline, time_ns(baseline_pass));
    logged = std::min(logged, time_ns(logged_pass));
  }
  const double per_iteration_ns =
      static_cast<double>(logged - baseline) / kIterations;
  EXPECT_TRUE(logged <= baseline + baseline / 20 || per_iteration_ns < 30.0)
      << "baseline=" << baseline << "ns logged=" << logged
      << "ns per_iteration_overhead=" << per_iteration_ns << "ns";
}

}  // namespace
}  // namespace obs
}  // namespace telekit

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "index/ann.h"
#include "index/corpus_index.h"
#include "synth/tickets.h"
#include "synth/world.h"

namespace telekit {
namespace index {
namespace {

/// Clustered random vectors — the shape of a real embedding corpus (alarm
/// families, KPI groups), and the regime the select-neighbours heuristic
/// is tested against.
std::vector<std::vector<float>> ClusteredVectors(int n, int dim,
                                                 uint64_t seed) {
  Rng rng(seed);
  const int num_clusters = std::max(1, n / 32);
  std::vector<std::vector<float>> centers(num_clusters,
                                          std::vector<float>(dim));
  for (auto& c : centers) {
    for (float& x : c) x = static_cast<float>(rng.Normal());
  }
  std::vector<std::vector<float>> out(n, std::vector<float>(dim));
  for (int i = 0; i < n; ++i) {
    const std::vector<float>& c = centers[i % num_clusters];
    for (int d = 0; d < dim; ++d) {
      out[i][d] = c[d] + 0.3f * static_cast<float>(rng.Normal());
    }
  }
  return out;
}

std::vector<int> Ids(const std::vector<SearchResult>& results) {
  std::vector<int> ids;
  ids.reserve(results.size());
  for (const SearchResult& r : results) ids.push_back(r.id);
  return ids;
}

TEST(FlatIndexTest, ExactTopKByCosineWithIdTieBreak) {
  FlatIndex flat(2);
  flat.Add({1.0f, 0.0f});   // id 0
  flat.Add({0.0f, 1.0f});   // id 1
  flat.Add({1.0f, 1.0f});   // id 2
  flat.Add({2.0f, 0.0f});   // id 3: same direction as 0 after normalize

  const float query[2] = {1.0f, 0.0f};
  std::vector<SearchResult> hits = flat.Search(query, 3);
  ASSERT_EQ(hits.size(), 3u);
  // ids 0 and 3 tie at score 1; ascending id breaks the tie.
  EXPECT_EQ(hits[0].id, 0);
  EXPECT_EQ(hits[1].id, 3);
  EXPECT_EQ(hits[2].id, 2);
  EXPECT_NEAR(hits[0].score, 1.0f, 1e-6);
  EXPECT_NEAR(hits[2].score, 0.7071f, 1e-3);

  // k <= 0 and k > size clamp to size.
  EXPECT_EQ(flat.Search(query, 0).size(), 4u);
  EXPECT_EQ(flat.Search(query, 99).size(), 4u);
}

TEST(FlatIndexTest, ScoresDescendMonotonically) {
  std::vector<std::vector<float>> vectors = ClusteredVectors(200, 16, 11);
  FlatIndex flat(16);
  for (const auto& v : vectors) flat.Add(v);
  std::vector<SearchResult> hits = flat.Search(vectors[7].data(), 20);
  ASSERT_EQ(hits.size(), 20u);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].score, hits[i - 1].score);
  }
  EXPECT_EQ(hits[0].id, 7);  // self is its own nearest neighbour
}

TEST(HnswIndexTest, IdenticalSeedAndCorpusGiveBitIdenticalGraphs) {
  std::vector<std::vector<float>> vectors = ClusteredVectors(400, 24, 33);
  HnswOptions options;
  HnswIndex a(24, options);
  HnswIndex b(24, options);
  for (const auto& v : vectors) {
    a.Add(v);
    b.Add(v);
  }
  EXPECT_EQ(a.GraphDigest(), b.GraphDigest());
  EXPECT_EQ(a.max_level(), b.max_level());
  for (int q = 0; q < 20; ++q) {
    EXPECT_EQ(Ids(a.Search(vectors[q * 7].data(), 10)),
              Ids(b.Search(vectors[q * 7].data(), 10)));
  }
}

TEST(HnswIndexTest, DifferentSeedGivesDifferentGraph) {
  std::vector<std::vector<float>> vectors = ClusteredVectors(400, 24, 33);
  HnswOptions options;
  HnswIndex a(24, options);
  options.seed = options.seed + 1;
  HnswIndex b(24, options);
  for (const auto& v : vectors) {
    a.Add(v);
    b.Add(v);
  }
  EXPECT_NE(a.GraphDigest(), b.GraphDigest());
}

TEST(HnswIndexTest, RecallAgainstFlatGroundTruth) {
  const int n = 1000, dim = 32, k = 10;
  std::vector<std::vector<float>> vectors = ClusteredVectors(n, dim, 77);
  FlatIndex flat(dim);
  HnswOptions options;
  HnswIndex hnsw(dim, options);
  for (const auto& v : vectors) {
    flat.Add(v);
    hnsw.Add(v);
  }
  Rng rng(99);
  double recall = 0.0;
  const int num_queries = 50;
  for (int q = 0; q < num_queries; ++q) {
    std::vector<float> query = vectors[rng.UniformInt(n)];
    for (float& x : query) x += 0.2f * static_cast<float>(rng.Normal());
    const std::vector<int> truth = Ids(flat.Search(query.data(), k));
    const std::vector<int> got = Ids(hnsw.Search(query.data(), k, 64));
    for (int id : truth) {
      recall += std::count(got.begin(), got.end(), id) > 0 ? 1.0 : 0.0;
    }
  }
  recall /= num_queries * k;
  EXPECT_GE(recall, 0.9) << "HNSW recall@10 collapsed vs the exact scan";
}

TEST(HnswIndexTest, EfSearchTrumpsDefaultAndClampsToK) {
  std::vector<std::vector<float>> vectors = ClusteredVectors(300, 16, 5);
  HnswOptions options;
  options.ef_search = 8;
  HnswIndex hnsw(16, options);
  for (const auto& v : vectors) hnsw.Add(v);
  // k > ef: the effective beam must widen to k, so k results come back.
  EXPECT_EQ(hnsw.Search(vectors[0].data(), 20).size(), 20u);
  EXPECT_EQ(hnsw.Search(vectors[0].data(), 20, 4).size(), 20u);
  EXPECT_EQ(hnsw.Search(vectors[0].data(), 5, 64).size(), 5u);
}

TEST(HnswIndexTest, SaveLoadRoundTripIsBitIdentical) {
  std::vector<std::vector<float>> vectors = ClusteredVectors(300, 24, 13);
  HnswOptions options;
  HnswIndex built(24, options);
  for (const auto& v : vectors) built.Add(v);

  constexpr uint64_t kFingerprint = 0xfeedfacecafef00dULL;
  std::stringstream buffer;
  ASSERT_TRUE(built.Save(buffer, kFingerprint).ok());
  auto loaded = HnswIndex::Load(buffer, kFingerprint);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  EXPECT_EQ((*loaded)->GraphDigest(), built.GraphDigest());
  EXPECT_EQ((*loaded)->size(), built.size());
  EXPECT_EQ((*loaded)->max_level(), built.max_level());
  EXPECT_EQ((*loaded)->options().M, options.M);
  for (int q = 0; q < 10; ++q) {
    EXPECT_EQ(Ids((*loaded)->Search(vectors[q * 13].data(), 10)),
              Ids(built.Search(vectors[q * 13].data(), 10)));
  }
}

TEST(HnswIndexTest, LoadRejectsFingerprintMismatch) {
  HnswOptions options;
  HnswIndex built(8, options);
  built.Add({1, 2, 3, 4, 5, 6, 7, 8});
  std::stringstream buffer;
  ASSERT_TRUE(built.Save(buffer, 111).ok());
  auto loaded = HnswIndex::Load(buffer, 222);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(HnswIndexTest, LoadRejectsTruncatedAndCorruptedSnapshots) {
  std::vector<std::vector<float>> vectors = ClusteredVectors(100, 16, 3);
  HnswOptions options;
  HnswIndex built(16, options);
  for (const auto& v : vectors) built.Add(v);
  std::stringstream buffer;
  ASSERT_TRUE(built.Save(buffer, 7).ok());
  const std::string snapshot = buffer.str();

  {  // bad magic
    std::stringstream in(std::string("NOTANIDX") + snapshot.substr(8));
    auto loaded = HnswIndex::Load(in, 7);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
  }
  {  // truncated: drop the tail (checksum can no longer match)
    std::stringstream in(snapshot.substr(0, snapshot.size() / 2));
    auto loaded = HnswIndex::Load(in, 7);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  {  // corrupted: flip one payload byte
    std::string bad = snapshot;
    bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x5a);
    std::stringstream in(bad);
    auto loaded = HnswIndex::Load(in, 7);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
  }
}

TEST(HnswIndexTest, ConcurrentSearchMatchesSerial) {
  const int n = 600, dim = 24, k = 5;
  std::vector<std::vector<float>> vectors = ClusteredVectors(n, dim, 21);
  HnswOptions options;
  HnswIndex hnsw(dim, options);
  for (const auto& v : vectors) hnsw.Add(v);

  const int num_queries = 64;
  std::vector<std::vector<int>> serial(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    serial[q] = Ids(hnsw.Search(vectors[q * 3].data(), k));
  }
  std::vector<std::vector<int>> parallel(num_queries);
  std::vector<std::thread> threads;
  const int num_threads = 4;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = t; q < num_queries; q += num_threads) {
        parallel[q] = Ids(hnsw.Search(vectors[q * 3].data(), k));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(parallel, serial);
}

// --- synthetic corpus -------------------------------------------------------

synth::WorldConfig TinyWorldConfig() {
  synth::WorldConfig config;
  config.seed = 20230401;
  config.num_alarm_types = 24;
  config.num_kpi_types = 12;
  return config;
}

TEST(TicketsTest, CorpusIsDeterministicAndDense) {
  synth::WorldModel world(TinyWorldConfig());
  synth::TicketConfig config;
  config.num_tickets = 16;
  const std::vector<synth::RetrievalDoc> a =
      synth::BuildRetrievalCorpus(world, config);
  const std::vector<synth::RetrievalDoc> b =
      synth::BuildRetrievalCorpus(world, config);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 24u + 12u);  // alarms + kpis + signaling + tickets
  int tickets = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<int>(i));  // dense, insertion-ordered
    EXPECT_EQ(a[i].text, b[i].text);
    EXPECT_EQ(a[i].evidence_alarms, b[i].evidence_alarms);
    EXPECT_FALSE(a[i].text.empty());
    if (a[i].kind == "ticket") {
      ++tickets;
      // Every ticket narrates at least its root-cause alarm.
      EXPECT_FALSE(a[i].evidence_alarms.empty()) << a[i].text;
    }
  }
  EXPECT_EQ(tickets, 16);
}

TEST(TicketsTest, EvidenceNamesComeFromTheWorldCatalogue) {
  synth::WorldModel world(TinyWorldConfig());
  synth::TicketConfig config;
  config.num_tickets = 8;
  std::vector<std::string> catalogue;
  for (const auto& alarm : world.alarms()) catalogue.push_back(alarm.name);
  for (const synth::RetrievalDoc& doc :
       synth::BuildRetrievalCorpus(world, config)) {
    for (const std::string& name : doc.evidence_alarms) {
      EXPECT_NE(std::find(catalogue.begin(), catalogue.end(), name),
                catalogue.end())
          << doc.kind << " doc cites unknown alarm: " << name;
    }
  }
}

// --- CorpusIndex ------------------------------------------------------------

/// Deterministic synthetic embedder: hash each text into a direction.
/// Stands in for the ServiceEncoder so corpus-index behaviour is testable
/// without building a model zoo.
std::vector<std::vector<float>> HashEmbed(
    const std::vector<std::string>& texts, int dim) {
  std::vector<std::vector<float>> out;
  out.reserve(texts.size());
  for (const std::string& text : texts) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : text) {
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    Rng rng(h);
    std::vector<float> v(dim);
    for (float& x : v) x = static_cast<float>(rng.Normal());
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<synth::RetrievalDoc> TestDocs() {
  synth::WorldModel world(TinyWorldConfig());
  synth::TicketConfig config;
  config.num_tickets = 12;
  return synth::BuildRetrievalCorpus(world, config);
}

constexpr int kDim = 24;

CorpusIndex::EncodeFn TestEncoder() {
  return [](const std::vector<std::string>& texts) {
    return HashEmbed(texts, kDim);
  };
}

std::string TempSnapshotPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(CorpusIndexTest, BuildSearchAndResolveDocs) {
  auto built = CorpusIndex::BuildOrLoad(TestDocs(), kDim, "test-model",
                                        TestEncoder(), HnswOptions{}, "");
  ASSERT_TRUE(built.ok()) << built.status().message();
  const CorpusIndex& index = **built;
  EXPECT_GT(index.size(), 0u);
  EXPECT_FALSE(index.stats().loaded_from_snapshot);

  const std::vector<std::vector<float>> query =
      HashEmbed({index.doc(3).text}, kDim);
  const std::vector<ScoredDoc> hits = index.Search(query[0].data(), 5);
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_EQ(hits[0].doc_id, 3);  // self-retrieval: exact same direction
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].score, hits[i - 1].score);
  }
  const std::vector<ScoredDoc> exact = index.SearchExact(query[0].data(), 5);
  EXPECT_EQ(exact[0].doc_id, 3);
  EXPECT_EQ(index.doc(3).id, 3);
}

TEST(CorpusIndexTest, EncoderSizeMismatchIsAnError) {
  auto truncated = [](const std::vector<std::string>& texts) {
    std::vector<std::vector<float>> out = HashEmbed(texts, kDim);
    out.pop_back();
    return out;
  };
  auto built = CorpusIndex::BuildOrLoad(TestDocs(), kDim, "test-model",
                                        truncated, HnswOptions{}, "");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInternal);
}

TEST(CorpusIndexTest, SnapshotWarmLoadSkipsRebuildAndMatchesColdBuild) {
  const std::string path = TempSnapshotPath("corpus_warm.idx");
  std::remove(path.c_str());

  int encode_calls = 0;
  CorpusIndex::EncodeFn counting =
      [&encode_calls](const std::vector<std::string>& texts) {
        ++encode_calls;
        return HashEmbed(texts, kDim);
      };
  auto cold = CorpusIndex::BuildOrLoad(TestDocs(), kDim, "test-model",
                                       counting, HnswOptions{}, path);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  EXPECT_FALSE((*cold)->stats().loaded_from_snapshot);
  EXPECT_EQ(encode_calls, 1);

  auto warm = CorpusIndex::BuildOrLoad(TestDocs(), kDim, "test-model",
                                       counting, HnswOptions{}, path);
  ASSERT_TRUE(warm.ok()) << warm.status().message();
  EXPECT_TRUE((*warm)->stats().loaded_from_snapshot);
  EXPECT_EQ(encode_calls, 1);  // warm start never re-encoded
  EXPECT_EQ((*warm)->hnsw().GraphDigest(), (*cold)->hnsw().GraphDigest());

  const std::vector<std::vector<float>> query =
      HashEmbed({(*cold)->doc(1).text}, kDim);
  const std::vector<ScoredDoc> a = (*cold)->Search(query[0].data(), 8);
  const std::vector<ScoredDoc> b = (*warm)->Search(query[0].data(), 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].doc_id, b[i].doc_id);
  std::remove(path.c_str());
}

TEST(CorpusIndexTest, StaleFingerprintFallsBackToRebuild) {
  const std::string path = TempSnapshotPath("corpus_stale.idx");
  std::remove(path.c_str());
  auto first = CorpusIndex::BuildOrLoad(TestDocs(), kDim, "model-a",
                                        TestEncoder(), HnswOptions{}, path);
  ASSERT_TRUE(first.ok());
  // Same file, different model tag: fingerprint mismatch -> rebuild, not
  // a stale-index serve.
  auto second = CorpusIndex::BuildOrLoad(TestDocs(), kDim, "model-b",
                                         TestEncoder(), HnswOptions{}, path);
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_FALSE((*second)->stats().loaded_from_snapshot);
  // ...and the rebuild rewrote the snapshot for the new identity.
  auto third = CorpusIndex::BuildOrLoad(TestDocs(), kDim, "model-b",
                                        TestEncoder(), HnswOptions{}, path);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE((*third)->stats().loaded_from_snapshot);
  std::remove(path.c_str());
}

TEST(CorpusIndexTest, CorruptedSnapshotFallsBackToRebuild) {
  const std::string path = TempSnapshotPath("corpus_corrupt.idx");
  std::remove(path.c_str());
  auto first = CorpusIndex::BuildOrLoad(TestDocs(), kDim, "test-model",
                                        TestEncoder(), HnswOptions{}, path);
  ASSERT_TRUE(first.ok());

  // Truncate the snapshot to half its size.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto recovered = CorpusIndex::BuildOrLoad(TestDocs(), kDim, "test-model",
                                            TestEncoder(), HnswOptions{},
                                            path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_FALSE((*recovered)->stats().loaded_from_snapshot);
  EXPECT_EQ((*recovered)->hnsw().GraphDigest(),
            (*first)->hnsw().GraphDigest());
  std::remove(path.c_str());
}

TEST(CorpusIndexTest, FingerprintCoversDocsModelAndOptions) {
  const std::vector<synth::RetrievalDoc> docs = TestDocs();
  HnswOptions options;
  const uint64_t base =
      CorpusIndex::ComputeFingerprint(docs, kDim, "m", options);
  EXPECT_EQ(CorpusIndex::ComputeFingerprint(docs, kDim, "m", options), base);
  EXPECT_NE(CorpusIndex::ComputeFingerprint(docs, kDim, "m2", options), base);
  EXPECT_NE(CorpusIndex::ComputeFingerprint(docs, kDim + 1, "m", options),
            base);
  HnswOptions other = options;
  other.M = options.M * 2;
  EXPECT_NE(CorpusIndex::ComputeFingerprint(docs, kDim, "m", other), base);
  std::vector<synth::RetrievalDoc> edited = docs;
  edited[0].text += " tampered";
  EXPECT_NE(CorpusIndex::ComputeFingerprint(edited, kDim, "m", options),
            base);
}

}  // namespace
}  // namespace index
}  // namespace telekit

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "common/string_util.h"
#include "synth/corpus.h"
#include "synth/kg_gen.h"
#include "synth/log.h"
#include "synth/task_data.h"
#include "synth/world.h"

namespace telekit {
namespace synth {
namespace {

WorldModel& TestWorld() {
  static WorldModel* const kWorld = new WorldModel(WorldConfig{});
  return *kWorld;
}

// --- WorldModel ------------------------------------------------------------------

TEST(WorldTest, SizesMatchConfig) {
  const WorldModel& w = TestWorld();
  EXPECT_EQ(static_cast<int>(w.elements().size()),
            w.config().num_network_elements);
  EXPECT_EQ(static_cast<int>(w.alarms().size()), w.config().num_alarm_types);
  EXPECT_EQ(static_cast<int>(w.kpis().size()), w.config().num_kpi_types);
  EXPECT_FALSE(w.services().empty());
}

TEST(WorldTest, DeterministicForSeed) {
  WorldModel a(WorldConfig{.seed = 9});
  WorldModel b(WorldConfig{.seed = 9});
  ASSERT_EQ(a.alarms().size(), b.alarms().size());
  for (size_t i = 0; i < a.alarms().size(); ++i) {
    EXPECT_EQ(a.alarms()[i].name, b.alarms()[i].name);
  }
  EXPECT_EQ(a.topology(), b.topology());
}

TEST(WorldTest, TopologyIsConnected) {
  const WorldModel& w = TestWorld();
  const int n = static_cast<int>(w.elements().size());
  std::vector<bool> visited(static_cast<size_t>(n), false);
  std::vector<int> stack = {0};
  visited[0] = true;
  int count = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int v : w.TopologyNeighbors(u)) {
      if (!visited[static_cast<size_t>(v)]) {
        visited[static_cast<size_t>(v)] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(count, n);
}

TEST(WorldTest, CausalDagIsAcyclic) {
  const WorldModel& w = TestWorld();
  // Trigger edges only go from lower to higher alarm id by construction.
  for (const CausalEdge& e : w.causal_edges()) {
    if (e.kind == CausalEdge::Kind::kAlarmTriggersAlarm) {
      EXPECT_LT(e.src_alarm, e.dst);
    }
  }
  // Therefore no alarm can transitively trigger itself.
  for (int a = 0; a < static_cast<int>(w.alarms().size()); ++a) {
    EXPECT_FALSE(w.TriggersTransitively(a, a));
  }
}

TEST(WorldTest, RootAlarmsHaveNoParents) {
  const WorldModel& w = TestWorld();
  const auto roots = w.RootAlarms();
  ASSERT_FALSE(roots.empty());
  std::unordered_set<int> root_set(roots.begin(), roots.end());
  for (const CausalEdge& e : w.causal_edges()) {
    if (e.kind == CausalEdge::Kind::kAlarmTriggersAlarm) {
      EXPECT_EQ(root_set.count(e.dst), 0u);
    }
  }
}

TEST(WorldTest, EveryAlarmAffectsSomeKpi) {
  const WorldModel& w = TestWorld();
  for (const AlarmType& alarm : w.alarms()) {
    EXPECT_FALSE(w.AffectedKpis(alarm.id).empty());
  }
}

TEST(WorldTest, AlarmNamesUseDomainVocabulary) {
  const WorldModel& w = TestWorld();
  for (const AlarmType& alarm : w.alarms()) {
    bool mentions_service = false;
    for (const std::string& service : w.services()) {
      mentions_service |= Contains(alarm.name, service);
    }
    EXPECT_TRUE(mentions_service) << alarm.name;
  }
}

TEST(WorldTest, DomainPhrasesMultiword) {
  for (const std::string& phrase : TestWorld().DomainPhrases()) {
    EXPECT_NE(phrase.find(' '), std::string::npos) << phrase;
  }
}

TEST(WorldTest, ServiceLevelsPartitionServices) {
  const WorldModel& w = TestWorld();
  const int levels = w.config().num_service_levels;
  int seen_min = levels, seen_max = -1;
  for (size_t s = 0; s < w.services().size(); ++s) {
    const int level = w.ServiceLevel(static_cast<int>(s));
    EXPECT_GE(level, 0);
    EXPECT_LT(level, levels);
    seen_min = std::min(seen_min, level);
    seen_max = std::max(seen_max, level);
    // Monotone in service index by construction.
    if (s > 0) EXPECT_GE(level, w.ServiceLevel(static_cast<int>(s) - 1));
  }
  EXPECT_EQ(seen_min, 0);
  EXPECT_EQ(seen_max, levels - 1);
}

TEST(WorldTest, TriggersPropagateUpOrWithinTheHierarchy) {
  // The dominant share of trigger edges must stay within a service or go
  // exactly one level up — the causal-hierarchy property the text
  // embeddings exploit.
  const WorldModel& w = TestWorld();
  int structured = 0, total = 0;
  for (const CausalEdge& e : w.causal_edges()) {
    if (e.kind != CausalEdge::Kind::kAlarmTriggersAlarm) continue;
    ++total;
    const bool same_service =
        w.alarms()[static_cast<size_t>(e.src_alarm)].service ==
        w.alarms()[static_cast<size_t>(e.dst)].service;
    const bool upward = w.AlarmLevel(e.dst) == w.AlarmLevel(e.src_alarm) + 1;
    structured += same_service || upward;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(structured) / total, 0.7);
}

TEST(WorldTest, RootAlarmsConcentrateInLowLevels) {
  const WorldModel& w = TestWorld();
  double root_level_total = 0;
  const auto roots = w.RootAlarms();
  for (int r : roots) root_level_total += w.AlarmLevel(r);
  double all_level_total = 0;
  for (const AlarmType& a : w.alarms()) all_level_total += w.AlarmLevel(a.id);
  const double root_mean = root_level_total / static_cast<double>(roots.size());
  const double all_mean =
      all_level_total / static_cast<double>(w.alarms().size());
  EXPECT_LT(root_mean, all_mean);
}

// --- CorpusGenerator ------------------------------------------------------------

TEST(CorpusTest, GeneratesRequestedCounts) {
  CorpusGenerator gen(TestWorld(), CorpusConfig{.num_tele_sentences = 100,
                                                .num_general_sentences = 50});
  Rng rng(1);
  EXPECT_EQ(gen.GenerateTeleCorpus(rng).size(), 100u);
  EXPECT_EQ(gen.GenerateGeneralCorpus(rng).size(), 50u);
}

TEST(CorpusTest, TeleAndGeneralVocabulariesDisjoint) {
  CorpusGenerator gen(TestWorld(), CorpusConfig{.num_tele_sentences = 300,
                                                .num_general_sentences = 300});
  Rng rng(2);
  auto tele = gen.GenerateTeleCorpus(rng);
  auto general = gen.GenerateGeneralCorpus(rng);
  std::set<std::string> tele_words, general_words;
  for (const auto& s : tele) {
    for (const auto& w : SplitString(s, ' ')) tele_words.insert(w);
  }
  for (const auto& s : general) {
    for (const auto& w : SplitString(s, ' ')) general_words.insert(w);
  }
  // Allow a few shared function words ("the", "a", ...), but content must
  // be overwhelmingly disjoint.
  int shared = 0;
  for (const auto& w : general_words) shared += tele_words.count(w);
  EXPECT_LT(static_cast<double>(shared) /
                static_cast<double>(general_words.size()),
            0.15);
}

TEST(CorpusTest, StripIdsRemovesCodes) {
  const std::string s = "alarm ALM-100072 indicates KPI-192948013 moves";
  const std::string stripped = CorpusGenerator::StripIds(s);
  EXPECT_EQ(stripped.find("ALM-"), std::string::npos);
  EXPECT_EQ(stripped.find("KPI-"), std::string::npos);
  EXPECT_NE(stripped.find("alarm"), std::string::npos);
  EXPECT_NE(stripped.find("indicates"), std::string::npos);
}

TEST(CorpusTest, CausalExtractionKeepsOnlyCausalKeywordSentences) {
  CorpusGenerator gen(TestWorld(), CorpusConfig{.num_tele_sentences = 500});
  Rng rng(3);
  auto corpus = gen.GenerateTeleCorpus(rng);
  auto causal = CorpusGenerator::ExtractCausalSentences(corpus, 6);
  EXPECT_GT(causal.size(), 50u);
  EXPECT_LT(causal.size(), corpus.size());
  for (const std::string& s : causal) {
    bool has_keyword = false;
    for (const std::string& k : CorpusGenerator::CausalKeywords()) {
      has_keyword |= Contains(s, k);
    }
    EXPECT_TRUE(has_keyword) << s;
    EXPECT_EQ(s.find("ALM-"), std::string::npos) << s;
  }
}

TEST(CorpusTest, CausalExtractionEnforcesMinLength) {
  std::vector<std::string> corpus = {"x leads to y",
                                     "alarm a leads to severe kpi drops"};
  auto causal = CorpusGenerator::ExtractCausalSentences(corpus, 6);
  ASSERT_EQ(causal.size(), 1u);
  EXPECT_NE(causal[0].find("severe"), std::string::npos);
}

// --- LogGenerator ------------------------------------------------------------------

TEST(LogTest, EpisodeStartsAtRoot) {
  LogGenerator logs(TestWorld(), LogConfig{});
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    Episode e = logs.Simulate(rng);
    ASSERT_FALSE(e.events.empty());
    EXPECT_EQ(e.events[0].alarm_type, e.root_alarm);
    EXPECT_EQ(e.events[0].element, e.root_element);
    EXPECT_EQ(e.events[0].time, 0.0);
    const auto roots = TestWorld().RootAlarms();
    EXPECT_NE(std::find(roots.begin(), roots.end(), e.root_alarm),
              roots.end());
  }
}

TEST(LogTest, PropagatedEventsFollowTriggerEdges) {
  LogGenerator logs(TestWorld(), LogConfig{});
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    Episode e = logs.Simulate(rng);
    for (size_t k = 1; k < e.events.size(); ++k) {
      // Every non-root event must be transitively triggered by the root.
      EXPECT_TRUE(TestWorld().TriggersTransitively(e.root_alarm,
                                                   e.events[k].alarm_type));
      EXPECT_GT(e.events[k].time, 0.0);
    }
  }
}

TEST(LogTest, AnomalousReadingsDeviateFromBaseline) {
  LogGenerator logs(TestWorld(), LogConfig{});
  Rng rng(6);
  int anomalous_seen = 0;
  for (int i = 0; i < 30; ++i) {
    Episode e = logs.Simulate(rng);
    for (const KpiReading& r : e.readings) {
      const KpiType& kpi =
          TestWorld().kpis()[static_cast<size_t>(r.kpi_type)];
      const float deviation = std::abs(r.value - kpi.baseline);
      if (r.anomalous) {
        ++anomalous_seen;
        EXPECT_GT(deviation, 0.3f * kpi.scale);
      } else {
        EXPECT_LT(deviation, 0.3f * kpi.baseline);
      }
    }
  }
  EXPECT_GT(anomalous_seen, 0);
}

TEST(LogTest, SubnetEpisodeStaysInSubnet) {
  LogGenerator logs(TestWorld(), LogConfig{});
  Rng rng(7);
  const std::vector<int> subnet = {0, 1, 2, 3, 4};
  const auto roots = TestWorld().RootAlarms();
  for (int i = 0; i < 10; ++i) {
    Episode e = logs.SimulateOnSubnet(roots[0], subnet, rng);
    for (const AlarmEvent& event : e.events) {
      EXPECT_NE(std::find(subnet.begin(), subnet.end(), event.element),
                subnet.end());
    }
  }
}

TEST(LogTest, NormalReadingsNotAnomalous) {
  LogGenerator logs(TestWorld(), LogConfig{});
  Rng rng(8);
  for (const KpiReading& r : logs.NormalReadings(100, rng)) {
    EXPECT_FALSE(r.anomalous);
    EXPECT_GT(r.value, 0.0f);
  }
}

// --- KgGenerator ------------------------------------------------------------------

TEST(KgGenTest, SchemaHierarchyPresent) {
  LogGenerator logs(TestWorld(), LogConfig{});
  Rng rng(9);
  auto episodes = logs.SimulateMany(5, rng);
  kg::TripleStore store = KgGenerator().Generate(TestWorld(), episodes);

  auto alarm_class = store.FindEntity(TeleSchema::kAlarmClass);
  auto event_class = store.FindEntity(TeleSchema::kEvent);
  auto subclass_of = store.FindRelation(TeleSchema::kSubclassOf);
  ASSERT_TRUE(alarm_class.ok());
  ASSERT_TRUE(event_class.ok());
  ASSERT_TRUE(subclass_of.ok());
  EXPECT_TRUE(store.HasTriple(*alarm_class, *subclass_of, *event_class));
  // NE types sit two levels below Resource.
  auto resource = store.FindEntity(TeleSchema::kResource);
  auto smf = store.FindEntity("SMF");
  ASSERT_TRUE(smf.ok());
  EXPECT_TRUE(store.Reaches(*smf, *resource, *subclass_of));
}

TEST(KgGenTest, CausalEdgesBecomeQuadruples) {
  LogGenerator logs(TestWorld(), LogConfig{});
  Rng rng(10);
  kg::TripleStore store = KgGenerator().Generate(TestWorld(), {});
  int triggers = 0, affects = 0;
  for (const CausalEdge& e : TestWorld().causal_edges()) {
    triggers += e.kind == CausalEdge::Kind::kAlarmTriggersAlarm;
    affects += e.kind == CausalEdge::Kind::kAlarmAffectsKpi;
  }
  EXPECT_EQ(store.quadruples().size(),
            static_cast<size_t>(triggers + affects));
  for (const kg::Quadruple& q : store.quadruples()) {
    EXPECT_GT(q.confidence, 0.5f);
    EXPECT_LE(q.confidence, 1.0f);
  }
}

TEST(KgGenTest, AlarmEntitiesFindableBySurface) {
  kg::TripleStore store = KgGenerator().Generate(TestWorld(), {});
  for (const AlarmType& alarm : TestWorld().alarms()) {
    EXPECT_TRUE(
        store.FindEntity(KgGenerator::AlarmEntitySurface(alarm)).ok())
        << alarm.name;
  }
}

TEST(KgGenTest, EpisodeCountsBecomeNumericAttributes) {
  LogGenerator logs(TestWorld(), LogConfig{});
  Rng rng(11);
  auto episodes = logs.SimulateMany(10, rng);
  kg::TripleStore store = KgGenerator().Generate(TestWorld(), episodes);
  bool found_count = false;
  for (const kg::NumericAttribute& a : store.numeric_attributes()) {
    if (a.attribute == "occurrence count") {
      found_count = true;
      EXPECT_GE(a.value, 1.0f);
    }
  }
  EXPECT_TRUE(found_count);
}

// --- RcaDataGen -----------------------------------------------------------------

TEST(RcaDataTest, MatchesPaperScale) {
  LogGenerator logs(TestWorld(), LogConfig{});
  RcaDataGen gen(TestWorld(), logs);
  Rng rng(12);
  RcaDataset data = gen.Generate(RcaDataConfig{}, rng);
  EXPECT_EQ(data.graphs.size(), 127u);  // Table III
  EXPECT_GE(data.AverageNodes(), 8.0);
  EXPECT_LE(data.AverageNodes(), 14.0);
  EXPECT_GT(data.AverageEdges(), data.AverageNodes() - 1);
  EXPECT_EQ(data.num_features,
            static_cast<int>(TestWorld().alarms().size() +
                             TestWorld().kpis().size()));
  EXPECT_EQ(data.feature_surfaces.size(),
            static_cast<size_t>(data.num_features));
}

TEST(RcaDataTest, RootNodeValidAndFeatured) {
  LogGenerator logs(TestWorld(), LogConfig{});
  RcaDataGen gen(TestWorld(), logs);
  Rng rng(13);
  RcaDataset data = gen.Generate(RcaDataConfig{.num_graphs = 30}, rng);
  for (const RcaStateGraph& g : data.graphs) {
    ASSERT_GE(g.root_node, 0);
    ASSERT_LT(g.root_node, g.topology.num_nodes);
    // The root node carries at least the root alarm event.
    float total = 0;
    for (float v : g.features[static_cast<size_t>(g.root_node)]) total += v;
    EXPECT_GE(total, 1.0f);
    // Edges reference valid local ids.
    for (const auto& [u, v] : g.topology.edges) {
      EXPECT_GE(u, 0);
      EXPECT_LT(u, g.topology.num_nodes);
      EXPECT_GE(v, 0);
      EXPECT_LT(v, g.topology.num_nodes);
    }
  }
}

// --- EapDataGen -----------------------------------------------------------------

TEST(EapDataTest, BalancedPairsAndValidFields) {
  LogGenerator logs(TestWorld(), LogConfig{});
  EapDataGen gen(TestWorld(), logs);
  Rng rng(14);
  EapDataset data = gen.Generate(EapDataConfig{}, rng);
  EXPECT_GT(data.pairs.size(), 100u);
  EXPECT_EQ(data.NumPositive() * 2, static_cast<int>(data.pairs.size()));
  EXPECT_EQ(data.topology.num_nodes, 31);  // Table V
  EXPECT_EQ(data.num_packages, 104);
  EXPECT_GT(data.num_events_used, 10);
  const int num_alarms = static_cast<int>(TestWorld().alarms().size());
  for (const EapPairSample& p : data.pairs) {
    EXPECT_GE(p.event_a, 0);
    EXPECT_LT(p.event_a, num_alarms);
    EXPECT_GE(p.event_b, 0);
    EXPECT_LT(p.event_b, num_alarms);
    EXPECT_LT(p.element_a, data.topology.num_nodes);
    EXPECT_LT(p.element_b, data.topology.num_nodes);
  }
}

TEST(EapDataTest, PositivesAreTrueTriggers) {
  LogGenerator logs(TestWorld(), LogConfig{});
  EapDataGen gen(TestWorld(), logs);
  Rng rng(15);
  EapDataset data = gen.Generate(EapDataConfig{.num_packages = 40}, rng);
  std::set<std::pair<int, int>> observed_positives;
  for (const EapPairSample& p : data.pairs) {
    if (p.positive) observed_positives.insert({p.event_a, p.event_b});
  }
  for (const EapPairSample& p : data.pairs) {
    if (p.positive) {
      bool direct = false;
      for (const auto& [child, conf] :
           TestWorld().TriggeredAlarms(p.event_a)) {
        direct |= child == p.event_b;
      }
      EXPECT_TRUE(direct);
      EXPECT_LT(p.time_a, p.time_b);  // parent precedes child
    } else {
      // Negatives avoid the observed positive set (the paper's policy);
      // they may rarely coincide with an unobserved true trigger.
      EXPECT_EQ(observed_positives.count({p.event_a, p.event_b}), 0u);
      EXPECT_NE(p.event_a, p.event_b);
    }
  }
}

// --- FctDataGen -----------------------------------------------------------------

TEST(FctDataTest, SplitsAreFirstHopsAndDisjoint) {
  LogGenerator logs(TestWorld(), LogConfig{});
  FctDataGen gen(TestWorld(), logs);
  Rng rng(16);
  FctDataset data = gen.Generate(FctDataConfig{}, rng);
  EXPECT_FALSE(data.train.empty());
  EXPECT_FALSE(data.valid.empty());
  EXPECT_FALSE(data.test.empty());
  // Test facts are masked out of the training store.
  for (const kg::Quadruple& q : data.test) {
    EXPECT_GE(q.head, 0);
    EXPECT_LT(q.head, data.store.num_entities());
  }
  // Train facts are in the store.
  for (const kg::Quadruple& q : data.train) {
    EXPECT_TRUE(data.store.HasTriple(q.head, q.relation, q.tail));
  }
  EXPECT_EQ(data.node_surfaces.size(),
            static_cast<size_t>(data.store.num_entities()));
}

TEST(FctDataTest, NodeSurfacesDescriptive) {
  LogGenerator logs(TestWorld(), LogConfig{});
  FctDataGen gen(TestWorld(), logs);
  Rng rng(17);
  FctDataset data = gen.Generate(FctDataConfig{.num_chains = 20}, rng);
  for (const std::string& surface : data.node_surfaces) {
    EXPECT_NE(surface.find(" at "), std::string::npos) << surface;
  }
}

TEST(FctDataTest, ConfidencesInRange) {
  LogGenerator logs(TestWorld(), LogConfig{});
  FctDataGen gen(TestWorld(), logs);
  Rng rng(18);
  FctDataset data = gen.Generate(FctDataConfig{.num_chains = 20}, rng);
  auto check = [](const std::vector<kg::Quadruple>& quads) {
    for (const kg::Quadruple& q : quads) {
      EXPECT_GT(q.confidence, 0.5f);
      EXPECT_LE(q.confidence, 1.0f);
    }
  };
  check(data.train);
  check(data.valid);
  check(data.test);
}

}  // namespace
}  // namespace synth
}  // namespace telekit

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "core/ktelebert.h"
#include "core/service.h"
#include "core/telebert.h"
#include "text/prompt.h"
#include "text/tokenizer.h"

namespace telekit {
namespace core {
namespace {

// Tiny fixture: a toy corpus and tokenizer shared by the tests.
struct Fixture {
  text::Tokenizer tokenizer{
      text::TokenizerOptions{.max_len = 16, .min_word_count = 1}};
  std::vector<std::string> corpus;
  std::vector<text::EncodedInput> encoded;

  Fixture() {
    for (int i = 0; i < 8; ++i) {
      corpus.push_back("the alarm triggers service loss quickly");
      corpus.push_back("session setup fails after the link drops");
      corpus.push_back("registration count remains stable all day");
      corpus.push_back("the gateway rejects roaming requests");
    }
    tokenizer.BuildVocab(corpus);
    for (const std::string& s : corpus) {
      encoded.push_back(tokenizer.EncodeSentence(s));
    }
  }

  EncoderConfig Config() const {
    EncoderConfig config;
    config.vocab_size = tokenizer.vocab().size();
    config.d_model = 32;
    config.num_heads = 2;
    config.num_layers = 1;
    config.ffn_dim = 64;
    config.max_len = 16;
    config.dropout = 0.1f;
    return config;
  }
};

Fixture& F() {
  static Fixture* const kFixture = new Fixture();
  return *kFixture;
}

// --- TeleBert ---------------------------------------------------------------------

TEST(TeleBertTest, PretrainingReducesLoss) {
  Rng rng(1);
  TeleBert model(F().Config(), rng);
  PretrainOptions options;
  options.steps = 40;
  options.batch_size = 8;
  options.learning_rate = 2e-3f;
  Rng train_rng(2);
  auto history =
      model.Pretrain(F().encoded, F().tokenizer.vocab(), options, train_rng);
  ASSERT_EQ(history.size(), 40u);
  // Average of the first 5 vs last 5 total losses.
  auto avg = [&](size_t begin, size_t end) {
    double total = 0;
    for (size_t i = begin; i < end; ++i) total += history[i].total_loss;
    return total / static_cast<double>(end - begin);
  };
  EXPECT_LT(avg(35, 40), avg(0, 5));
}

TEST(TeleBertTest, PlainMlmObjectiveAlsoTrains) {
  Rng rng(30);
  TeleBert model(F().Config(), rng);
  PretrainOptions options;
  options.steps = 40;
  options.batch_size = 8;
  options.learning_rate = 2e-3f;
  options.objective = PretrainObjective::kMlmOnly;
  Rng train_rng(31);
  auto history =
      model.Pretrain(F().encoded, F().tokenizer.vocab(), options, train_rng);
  ASSERT_EQ(history.size(), 40u);
  // No RTD under plain MLM; the MLM loss itself must fall.
  for (const auto& s : history) EXPECT_FLOAT_EQ(s.rtd_loss, 0.0f);
  auto avg = [&](size_t begin, size_t end) {
    double total = 0;
    for (size_t i = begin; i < end; ++i) total += history[i].mlm_loss;
    return total / static_cast<double>(end - begin);
  };
  EXPECT_LT(avg(35, 40), avg(0, 5));
}

TEST(TeleBertTest, ServiceVectorDeterministic) {
  Rng rng(3);
  TeleBert model(F().Config(), rng);
  auto v1 = model.ServiceVector(F().encoded[0]);
  auto v2 = model.ServiceVector(F().encoded[0]);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(static_cast<int>(v1.size()), F().Config().d_model);
}

TEST(TeleBertTest, CheckpointRoundTrip) {
  Rng rng(4);
  TeleBert a(F().Config(), rng);
  Rng rng2(5);
  TeleBert b(F().Config(), rng2);
  // Different init -> different encodings.
  EXPECT_NE(a.ServiceVector(F().encoded[0]), b.ServiceVector(F().encoded[0]));
  ASSERT_TRUE(b.Restore(a.Checkpoint()).ok());
  EXPECT_EQ(a.ServiceVector(F().encoded[0]), b.ServiceVector(F().encoded[0]));
}

TEST(TeleBertTest, DomainPretrainingShapesSimilarity) {
  // After pre-training, two sentences sharing content words should be more
  // similar than unrelated ones (the property the tasks exploit).
  Rng rng(6);
  TeleBert model(F().Config(), rng);
  PretrainOptions options;
  options.steps = 120;
  options.batch_size = 8;
  options.learning_rate = 2e-3f;
  Rng train_rng(7);
  model.Pretrain(F().encoded, F().tokenizer.vocab(), options, train_rng);
  auto embed = [&](const std::string& s) {
    return model.ServiceVector(F().tokenizer.EncodeSentence(s));
  };
  auto cosine = [](const std::vector<float>& a, const std::vector<float>& b) {
    double dot = 0, na = 0, nb = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      dot += a[i] * b[i];
      na += a[i] * a[i];
      nb += b[i] * b[i];
    }
    return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-9);
  };
  const auto a1 = embed("the alarm triggers service loss");
  const auto a2 = embed("the alarm triggers service loss quickly");
  const auto b = embed("registration count remains stable");
  EXPECT_GT(cosine(a1, a2), cosine(a1, b));
}

// --- KTeleBert ----------------------------------------------------------------------

KTeleBertConfig KtbConfig(bool use_anenc = true) {
  KTeleBertConfig config;
  config.encoder = F().Config();
  config.anenc.d_model = config.encoder.d_model;
  config.anenc.num_meta = 4;
  config.anenc.num_layers = 1;
  config.anenc.ffn_dim = 32;
  config.use_anenc = use_anenc;
  config.num_tags = 3;
  config.ke_negatives = 2;
  return config;
}

text::EncodedInput NumericInput(float value) {
  return F().tokenizer.Encode(
      text::PromptBuilder().Kpi("registration count", value).Build());
}

ReTrainData SmallReTrainData() {
  ReTrainData data;
  for (int i = 0; i < 4; ++i) {
    data.causal_sentences.push_back(F().encoded[static_cast<size_t>(i)]);
    data.triple_sentences.push_back(
        F().tokenizer.Encode(text::PromptBuilder()
                                 .Entity("alarm a")
                                 .Relation("triggers")
                                 .Entity("service loss")
                                 .Build()));
  }
  for (int i = 0; i < 8; ++i) {
    data.machine_logs.push_back(
        NumericInput(static_cast<float>(i) / 8.0f));
    data.machine_log_tags.push_back(i % 3);
  }
  for (const char* name : {"alarm a", "service loss", "the gateway"}) {
    data.entity_inputs.push_back(F().tokenizer.Encode(
        text::PromptBuilder().Entity(name).Build()));
  }
  KeTriple triple;
  triple.head = data.entity_inputs[0];
  triple.relation = F().tokenizer.Encode(
      text::PromptBuilder().Relation("triggers").Build());
  triple.tail = data.entity_inputs[1];
  triple.head_id = 0;
  triple.tail_id = 1;
  data.ke_triples.push_back(triple);
  return data;
}

TEST(KTeleBertTest, HiddenHandlesNumericSlots) {
  Rng rng(8);
  KTeleBert model(KtbConfig(), rng);
  text::EncodedInput input = NumericInput(0.5f);
  ASSERT_FALSE(input.numeric_slots.empty());
  std::vector<tensor::Tensor> anenc_outputs;
  Rng eval(0);
  tensor::Tensor h = model.Hidden(input, eval, false, &anenc_outputs);
  EXPECT_EQ(h.dim(0), input.length);
  EXPECT_EQ(anenc_outputs.size(), input.numeric_slots.size());
}

TEST(KTeleBertTest, NumericValueChangesRepresentation) {
  Rng rng(9);
  KTeleBert model(KtbConfig(), rng);
  auto v1 = model.ServiceVector(NumericInput(0.1f));
  auto v2 = model.ServiceVector(NumericInput(0.9f));
  EXPECT_NE(v1, v2);
}

TEST(KTeleBertTest, WithoutAnEncIgnoresValue) {
  Rng rng(10);
  KTeleBert model(KtbConfig(/*use_anenc=*/false), rng);
  auto v1 = model.ServiceVector(NumericInput(0.1f));
  auto v2 = model.ServiceVector(NumericInput(0.9f));
  EXPECT_EQ(v1, v2);  // value only enters through ANEnc
}

TEST(KTeleBertTest, InitializeFromTeleBertCopiesEncoder) {
  Rng rng(11);
  TeleBert telebert(F().Config(), rng);
  Rng rng2(12);
  KTeleBert ktb(KtbConfig(), rng2);
  ASSERT_TRUE(ktb.InitializeFromTeleBert(telebert).ok());
  // Plain-text encodings (no numeric slots) now agree.
  const auto& input = F().encoded[0];
  EXPECT_EQ(telebert.ServiceVector(input), ktb.ServiceVector(input));
}

TEST(KTeleBertTest, KeDistanceNonNegativeAndTrainable) {
  Rng rng(13);
  KTeleBert model(KtbConfig(), rng);
  ReTrainData data = SmallReTrainData();
  Rng eval(0);
  tensor::Tensor d = model.KeDistance(
      data.ke_triples[0].head, data.ke_triples[0].relation,
      data.ke_triples[0].tail, eval, false);
  EXPECT_GE(d.item(), 0.0f);
}

TEST(ReTrainerTest, StlRunsAndReducesLoss) {
  Rng rng(14);
  KTeleBert model(KtbConfig(), rng);
  ReTrainOptions options;
  options.strategy = TrainingStrategy::kStl;
  options.total_steps = 30;
  options.batch_size = 6;
  options.learning_rate = 1e-3f;
  ReTrainer trainer(model, options);
  Rng train_rng(15);
  auto history = trainer.Train(SmallReTrainData(), train_rng);
  ASSERT_EQ(history.size(), 30u);
  for (const ReTrainStats& s : history) {
    EXPECT_TRUE(s.ran_mask_task);
    EXPECT_FALSE(s.ran_ke_task);
  }
  auto avg = [&](size_t begin, size_t end) {
    double total = 0;
    for (size_t i = begin; i < end; ++i) total += history[i].total_loss;
    return total / static_cast<double>(end - begin);
  };
  EXPECT_LT(avg(25, 30), avg(0, 5));
}

TEST(ReTrainerTest, PmtlRunsBothTasksEveryStep) {
  Rng rng(16);
  KTeleBert model(KtbConfig(), rng);
  ReTrainOptions options;
  options.strategy = TrainingStrategy::kPmtl;
  options.total_steps = 6;
  options.batch_size = 4;
  options.ke_batch_size = 2;
  ReTrainer trainer(model, options);
  Rng train_rng(17);
  auto history = trainer.Train(SmallReTrainData(), train_rng);
  for (const ReTrainStats& s : history) {
    EXPECT_TRUE(s.ran_mask_task);
    EXPECT_TRUE(s.ran_ke_task);
    EXPECT_GT(s.ke_loss, 0.0f);
  }
}

TEST(ReTrainerTest, ImtlFollowsStagedSchedule) {
  Rng rng(18);
  KTeleBert model(KtbConfig(), rng);
  ReTrainOptions options;
  options.strategy = TrainingStrategy::kImtl;
  options.total_steps = 30;
  options.batch_size = 4;
  options.ke_batch_size = 2;
  ReTrainer trainer(model, options);
  Rng train_rng(19);
  auto history = trainer.Train(SmallReTrainData(), train_rng);
  // Stage 1 (first 40%): mask only.
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(history[i].ran_mask_task);
    EXPECT_FALSE(history[i].ran_ke_task);
  }
  // Later stages: KE appears.
  int ke_steps = 0;
  for (size_t i = 12; i < history.size(); ++i) {
    ke_steps += history[i].ran_ke_task;
  }
  EXPECT_GT(ke_steps, 5);
}

TEST(ReTrainerTest, KeLossFallsWithTraining) {
  Rng rng(20);
  KTeleBert model(KtbConfig(), rng);
  ReTrainOptions options;
  options.strategy = TrainingStrategy::kPmtl;
  options.total_steps = 25;
  options.batch_size = 2;
  options.ke_batch_size = 4;
  options.learning_rate = 1e-3f;
  ReTrainer trainer(model, options);
  Rng train_rng(21);
  auto history = trainer.Train(SmallReTrainData(), train_rng);
  double early = 0, late = 0;
  for (size_t i = 0; i < 5; ++i) early += history[i].ke_loss;
  for (size_t i = history.size() - 5; i < history.size(); ++i) {
    late += history[i].ke_loss;
  }
  EXPECT_LT(late, early);
}

TEST(KTeleBertTest, CheckpointRoundTrip) {
  Rng rng(22);
  KTeleBert a(KtbConfig(), rng);
  Rng rng2(23);
  KTeleBert b(KtbConfig(), rng2);
  ASSERT_TRUE(b.Restore(a.Checkpoint()).ok());
  EXPECT_EQ(a.ServiceVector(NumericInput(0.4f)),
            b.ServiceVector(NumericInput(0.4f)));
}

// --- Service encoders -----------------------------------------------------------------

TEST(ServiceTest, RandomEncoderDeterministicPerName) {
  RandomEncoder enc(16, 7);
  auto input_a = F().tokenizer.EncodeSentence("alarm one");
  auto input_b = F().tokenizer.EncodeSentence("alarm two");
  EXPECT_EQ(enc.Encode(input_a), enc.Encode(input_a));
  EXPECT_NE(enc.Encode(input_a), enc.Encode(input_b));
  EXPECT_EQ(enc.dim(), 16);
}

TEST(ServiceTest, WordAveragingSharesWordSignal) {
  WordAveragingEncoder enc(32, 9);
  auto cosine = [](const std::vector<float>& a, const std::vector<float>& b) {
    double dot = 0, na = 0, nb = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      dot += a[i] * b[i];
      na += a[i] * a[i];
      nb += b[i] * b[i];
    }
    return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-9);
  };
  auto a = enc.Encode(F().tokenizer.EncodeSentence("the alarm triggers"));
  auto b = enc.Encode(F().tokenizer.EncodeSentence("the alarm drops"));
  auto c = enc.Encode(F().tokenizer.EncodeSentence("registration remains"));
  EXPECT_GT(cosine(a, b), cosine(a, c));
}

TEST(ServiceTest, OnlyNameModeWorksWithoutStore) {
  RandomEncoder enc(8, 1);
  ServiceEncoder service(&enc, &F().tokenizer, nullptr, nullptr);
  auto v = service.Encode("some alarm", ServiceMode::kOnlyName);
  EXPECT_EQ(v.size(), 8u);
  // Entity modes degrade gracefully without a store.
  auto v2 = service.Encode("some alarm", ServiceMode::kEntityWithAttr);
  EXPECT_EQ(v, v2);
}

}  // namespace
}  // namespace core
}  // namespace telekit

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/model_zoo.h"
#include "eval/metrics.h"

namespace telekit {
namespace core {
namespace {

// A deliberately tiny configuration so the full pipeline runs in seconds.
ZooConfig TinyConfig(const std::string& cache_dir) {
  ZooConfig config;
  config.seed = 99;
  config.world.num_alarm_types = 16;
  config.world.num_kpi_types = 8;
  config.world.num_network_elements = 12;
  config.corpus.num_tele_sentences = 400;
  config.corpus.num_general_sentences = 400;
  config.num_episodes = 10;
  config.max_machine_logs = 60;
  config.max_triple_sentences = 40;
  config.max_ke_triples = 30;
  config.encoder.d_model = 32;
  config.encoder.num_heads = 2;
  config.encoder.num_layers = 1;
  config.encoder.ffn_dim = 64;
  config.pretrain.steps = 12;
  config.pretrain.batch_size = 4;
  config.retrain.total_steps = 12;
  config.retrain.batch_size = 4;
  config.retrain.ke_batch_size = 2;
  config.anenc.num_layers = 1;
  config.anenc.num_meta = 4;
  config.anenc.ffn_dim = 32;
  config.cache_dir = cache_dir;
  return config;
}

TEST(ModelZooTest, FullBuildProducesAllEncoders) {
  ModelZoo zoo(TinyConfig(""));  // no cache
  zoo.Build();
  EXPECT_GT(zoo.tokenizer().vocab().size(), 50);
  EXPECT_GT(zoo.store().num_entities(), 20);
  EXPECT_FALSE(zoo.retrain_data().causal_sentences.empty());
  EXPECT_FALSE(zoo.retrain_data().machine_logs.empty());
  EXPECT_FALSE(zoo.retrain_data().ke_triples.empty());
  for (ModelKind kind : AllModelKinds()) {
    const TextEncoder& encoder = zoo.Encoder(kind);
    auto v = encoder.Encode(zoo.retrain_data().causal_sentences[0]);
    EXPECT_EQ(static_cast<int>(v.size()), encoder.dim()) << ModelKindName(kind);
  }
}

TEST(ModelZooTest, EncodersProduceDistinctSpaces) {
  ModelZoo zoo(TinyConfig(""));
  zoo.Build();
  const auto& input = zoo.retrain_data().causal_sentences[0];
  auto telebert = zoo.Encoder(ModelKind::kTeleBert).Encode(input);
  auto macbert = zoo.Encoder(ModelKind::kMacBert).Encode(input);
  auto ktb = zoo.Encoder(ModelKind::kKTeleBertStl).Encode(input);
  EXPECT_NE(telebert, macbert);
  EXPECT_NE(telebert, ktb);  // re-training moved the weights
}

TEST(ModelZooTest, RetrainHistoriesMatchStrategies) {
  ModelZoo zoo(TinyConfig(""));
  zoo.Build();
  const auto& stl = zoo.RetrainHistory(ModelKind::kKTeleBertStl);
  ASSERT_EQ(stl.size(), 12u);
  for (const auto& s : stl) EXPECT_FALSE(s.ran_ke_task);
  const auto& pmtl = zoo.RetrainHistory(ModelKind::kKTeleBertPmtl);
  for (const auto& s : pmtl) EXPECT_TRUE(s.ran_ke_task && s.ran_mask_task);
}

TEST(ModelZooTest, CacheRoundTripReproducesEncodings) {
  const std::string cache =
      ::testing::TempDir() + "/zoo_cache_" + std::to_string(::getpid());
  std::filesystem::remove_all(cache);
  std::vector<float> first;
  {
    ModelZoo zoo(TinyConfig(cache));
    zoo.Build();
    EXPECT_FALSE(zoo.WasCached(ModelKind::kKTeleBertStl));
    first = zoo.Encoder(ModelKind::kKTeleBertStl)
                .Encode(zoo.retrain_data().causal_sentences[0]);
  }
  {
    ModelZoo zoo(TinyConfig(cache));
    zoo.Build();
    EXPECT_TRUE(zoo.WasCached(ModelKind::kKTeleBertStl));
    auto second = zoo.Encoder(ModelKind::kKTeleBertStl)
                      .Encode(zoo.retrain_data().causal_sentences[0]);
    EXPECT_EQ(first, second);
  }
  std::filesystem::remove_all(cache);
}

TEST(ModelZooTest, ServiceEncoderModesDiffer) {
  ModelZoo zoo(TinyConfig(""));
  zoo.Build();
  ServiceEncoder service = zoo.MakeServiceEncoder(ModelKind::kTeleBert);
  const std::string name = zoo.world().alarms()[0].name;
  auto only = service.Encode(name, ServiceMode::kOnlyName);
  auto entity = service.Encode(name, ServiceMode::kEntityNoAttr);
  auto with_attr = service.Encode(name, ServiceMode::kEntityWithAttr);
  EXPECT_NE(only, entity);      // entity mode appends the class
  EXPECT_NE(entity, with_attr);  // attribute mode appends attributes
}

TEST(ModelZooTest, SignalingFlowExtensionAddsLogs) {
  ZooConfig config = TinyConfig("");
  config.include_signaling_flows = false;
  ModelZoo base(config);
  base.BuildData();
  config.include_signaling_flows = true;
  config.max_signaling_records = 40;
  ModelZoo extended(config);
  extended.BuildData();
  EXPECT_EQ(extended.retrain_data().machine_logs.size(),
            base.retrain_data().machine_logs.size() + 40);
  // Signaling entries carry no numeric tag.
  int untagged = 0;
  for (int tag : extended.retrain_data().machine_log_tags) {
    untagged += tag < 0;
  }
  EXPECT_GE(untagged, 40);
}

TEST(ModelZooTest, PartialBuildsAreCheaper) {
  ModelZoo zoo(TinyConfig(""));
  zoo.BuildData();
  EXPECT_FALSE(zoo.retrain_data().causal_sentences.empty());
  zoo.BuildPretrained();
  auto v = zoo.telebert().ServiceVector(zoo.retrain_data().causal_sentences[0]);
  EXPECT_EQ(v.size(), 32u);
}

}  // namespace
}  // namespace core
}  // namespace telekit

// Tests for the admin HTTP server and the Prometheus text exposition:
// liveness/readiness flows, route dispatch, exposition well-formedness
// (monotone cumulative buckets terminated by +Inf == _count), /tracez
// Chrome-trace output, and concurrent scrapes racing metric traffic (the
// case the TSan gate exists for).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace telekit {
namespace obs {
namespace {

struct HttpReply {
  int status = 0;
  std::string headers;
  std::string body;
};

/// Raw-socket HTTP/1.0 client, deliberately independent of the server's
/// own parsing code.
HttpReply HttpRaw(int port, const std::string& request) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return reply;
  }
  ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string raw;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return reply;
  reply.headers = raw.substr(0, header_end);
  reply.body = raw.substr(header_end + 4);
  // "HTTP/1.0 200 OK"
  const size_t space = reply.headers.find(' ');
  if (space != std::string::npos) {
    reply.status = std::atoi(reply.headers.c_str() + space + 1);
  }
  return reply;
}

HttpReply HttpGet(int port, const std::string& path,
                  const std::string& method = "GET") {
  return HttpRaw(port, method + " " + path + " HTTP/1.0\r\n\r\n");
}

TEST(AdminServerTest, HealthzBeforeAndAfterStop) {
  AdminServer server;
  ASSERT_TRUE(server.Start(0));  // ephemeral port
  const int port = server.port();
  ASSERT_GT(port, 0);
  EXPECT_TRUE(server.running());

  const HttpReply reply = HttpGet(port, "/healthz");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "ok\n");

  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  // A dead server answers nothing.
  EXPECT_EQ(HttpGet(port, "/healthz").status, 0);
}

TEST(AdminServerTest, IndexListsRoutesAndUnknownIs404) {
  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  const HttpReply index = HttpGet(server.port(), "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/healthz"), std::string::npos);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);

  const HttpReply missing = HttpGet(server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("/healthz"), std::string::npos);
}

TEST(AdminServerTest, RejectsNonGetAndMalformedRequests) {
  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  EXPECT_EQ(HttpGet(server.port(), "/healthz", "POST").status, 405);
  // HEAD is allowed and must carry no body.
  const HttpReply head = HttpGet(server.port(), "/healthz", "HEAD");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());
  EXPECT_NE(head.headers.find("Content-Length: 3"), std::string::npos);
  // Unknown methods are refused even with a well-formed request line.
  EXPECT_EQ(HttpGet(server.port(), "/healthz", "GARBAGE").status, 405);
  // A request line without method/target/version is malformed.
  EXPECT_EQ(HttpRaw(server.port(), "junk\r\n\r\n").status, 400);
}

TEST(AdminServerTest, StartFailsWhenPortTaken) {
  AdminServer first;
  ASSERT_TRUE(first.Start(0));
  AdminServer second;
  EXPECT_FALSE(second.Start(first.port()));
  // Double-start of a running server is refused too.
  EXPECT_FALSE(first.Start(0));
}

// The /readyz contract telekit_serve implements: 503 while loading, 200
// when ready, back to 503 when the queue saturates. The handler override
// mechanism (later registration wins) is what makes this possible.
TEST(AdminServerTest, ReadyzFlipsWithServerState) {
  std::atomic<bool> ready{false};
  std::atomic<bool> saturated{false};
  AdminServer server;
  server.Handle("/readyz", [&](const HttpRequest&) {
    if (!ready.load()) return HttpResponse::Text(503, "loading\n");
    if (saturated.load()) {
      return HttpResponse::Text(503, "queue saturated\n");
    }
    return HttpResponse::Text(200, "ready\n");
  });
  ASSERT_TRUE(server.Start(0));

  EXPECT_EQ(HttpGet(server.port(), "/readyz").status, 503);
  ready.store(true);
  EXPECT_EQ(HttpGet(server.port(), "/readyz").status, 200);
  saturated.store(true);
  const HttpReply reply = HttpGet(server.port(), "/readyz");
  EXPECT_EQ(reply.status, 503);
  EXPECT_EQ(reply.body, "queue saturated\n");
}

TEST(AdminServerTest, MetricsExpositionIsWellFormed) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  registry.GetCounter("admtest/requests").Increment(5);
  registry.GetGauge("admtest/depth").Set(2.5);
  Histogram& fixed = registry.GetHistogram("admtest/fixed_ms", {1.0, 10.0});
  fixed.Observe(0.5);
  fixed.Observe(5.0);
  fixed.Observe(100.0);  // overflow -> folded into +Inf
  LatencyHistogram& latency =
      registry.GetLatencyHistogram("admtest/latency_ms");
  for (int i = 1; i <= 50; ++i) latency.Observe(static_cast<double>(i));

  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  const HttpReply reply = HttpGet(server.port(), "/metrics");
  ASSERT_EQ(reply.status, 200);
  EXPECT_NE(reply.headers.find("version=0.0.4"), std::string::npos);

  const std::string& text = reply.body;
  EXPECT_NE(text.find("# TYPE telekit_admtest_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("telekit_admtest_requests 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE telekit_admtest_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("telekit_admtest_depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE telekit_admtest_fixed_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE telekit_admtest_latency_ms histogram"),
            std::string::npos);

  // Every _bucket series must be cumulative (monotone non-decreasing) and
  // terminate with le="+Inf" equal to _count.
  for (const std::string& metric :
       {std::string("telekit_admtest_fixed_ms"),
        std::string("telekit_admtest_latency_ms")}) {
    std::istringstream lines(text);
    std::string line;
    long long last = -1;
    long long inf_value = -1;
    long long count_value = -2;
    bool saw_bucket = false;
    while (std::getline(lines, line)) {
      if (line.rfind(metric + "_bucket{", 0) == 0) {
        saw_bucket = true;
        const long long value =
            std::atoll(line.substr(line.rfind(' ') + 1).c_str());
        EXPECT_GE(value, last) << metric << ": " << line;
        last = value;
        if (line.find("le=\"+Inf\"") != std::string::npos) {
          inf_value = value;
        }
      } else if (line.rfind(metric + "_count ", 0) == 0) {
        count_value = std::atoll(line.substr(line.rfind(' ') + 1).c_str());
      }
    }
    EXPECT_TRUE(saw_bucket) << metric;
    EXPECT_EQ(inf_value, count_value) << metric;
  }
  registry.Reset();
}

TEST(AdminServerTest, TracezReturnsChromeTraceJson) {
  SlowTraceRing::Global().Reset();
  RequestTrace trace;
  trace.trace_id = 0xabcdef12u;
  trace.op = "rca";
  trace.detail = "test surface";
  trace.queue_us = 500;
  trace.encode_us = 1200;
  trace.total_us = 1800;
  SlowTraceRing::Global().Record(std::move(trace));

  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  const HttpReply reply = HttpGet(server.port(), "/tracez");
  ASSERT_EQ(reply.status, 200);
  EXPECT_NE(reply.headers.find("application/json"), std::string::npos);

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(reply.body, &parsed, &error)) << error;
  const JsonValue* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);
  EXPECT_EQ(events->at(0).Find("ph")->AsString(), "X");
  EXPECT_EQ(events->at(0).Find("args")->Find("trace")->AsString(),
            "00000000abcdef12");
  EXPECT_DOUBLE_EQ(parsed.Find("slow_traces_recorded")->AsNumber(), 1.0);
  SlowTraceRing::Global().Reset();
}

// Every daemon's admin plane answers /spanz out of the box — the router's
// /tracezd assembler depends on that to fan out across the fleet.
TEST(AdminServerTest, SpanzIsBuiltInAndServesRecordedSpans) {
  SpanStore& store = SpanStore::Global();
  store.Reset();
  SpanRecord span;
  span.trace_id = 0xf00du;
  span.name = "serve/request";
  span.outcome = "ok";
  store.Record(span);

  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  const HttpReply reply =
      HttpGet(server.port(), "/spanz?trace_id=000000000000f00d");
  ASSERT_EQ(reply.status, 200);
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(reply.body, &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("trace_id")->AsString(), "000000000000f00d");
  ASSERT_EQ(parsed.Find("spans")->size(), 1u);
  EXPECT_EQ(parsed.Find("spans")->at(0).Find("name")->AsString(),
            "serve/request");
  EXPECT_EQ(HttpGet(server.port(), "/spanz?trace_id=nope").status, 400);
  EXPECT_EQ(HttpGet(server.port(), "/spanz").status, 200);  // summary
  server.Stop();
  store.Reset();
}

// Scrapes race metric writers and the slow-trace ring; run under TSan via
// scripts/check_tier1.sh. Every reply must still be well-formed.
TEST(AdminServerTest, ConcurrentScrapesUnderMetricTraffic) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Counter& counter = registry.GetCounter("admtest/race_requests");
    LatencyHistogram& latency =
        registry.GetLatencyHistogram("admtest/race_ms");
    uint64_t i = 0;
    while (!stop.load()) {
      counter.Increment();
      latency.Observe(static_cast<double>(i % 50) + 0.5);
      if (i % 64 == 0) {
        RequestTrace trace;
        trace.trace_id = i + 1;
        trace.op = "rca";
        trace.total_us = i;
        SlowTraceRing::Global().Record(std::move(trace));
      }
      ++i;
    }
  });

  std::vector<std::thread> scrapers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      const char* paths[] = {"/metrics", "/healthz", "/tracez"};
      for (int i = 0; i < 8; ++i) {
        const HttpReply reply = HttpGet(port, paths[(t + i) % 3]);
        if (reply.status != 200) failures.fetch_add(1);
      }
    });
  }
  for (auto& scraper : scrapers) scraper.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  SlowTraceRing::Global().Reset();
  registry.Reset();
}

TEST(AdminServerTest, LoglevelzReadsAndSetsLiveLevel) {
  const LogLevel saved = Logger::Global().level();
  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  const int port = server.port();

  HttpReply reply = HttpGet(port, "/loglevelz");
  ASSERT_EQ(reply.status, 200);
  EXPECT_NE(reply.body.find(LogLevelName(saved)), std::string::npos);

  reply = HttpGet(port, "/loglevelz?set=debug");
  ASSERT_EQ(reply.status, 200);
  EXPECT_EQ(Logger::Global().level(), LogLevel::kDebug);
  EXPECT_NE(reply.body.find("\"previous\""), std::string::npos);
  EXPECT_NE(reply.body.find("DEBUG"), std::string::npos);

  // Typos are rejected and leave the live level untouched.
  reply = HttpGet(port, "/loglevelz?set=loud");
  EXPECT_EQ(reply.status, 400);
  EXPECT_NE(reply.body.find("unknown level"), std::string::npos);
  EXPECT_EQ(Logger::Global().level(), LogLevel::kDebug);

  Logger::Global().set_level(saved);
}

// A live /loglevelz?set races TELEKIT_LOG emission on another thread; the
// level is one relaxed atomic, so every set must succeed and TSan must
// stay quiet. The sink swap keeps the spin loop off stderr.
TEST(AdminServerTest, ConcurrentLogLevelSetsRaceEmission) {
  const LogLevel saved = Logger::Global().level();
  std::atomic<uint64_t> sunk{0};
  Logger::Global().SetSink(
      [&sunk](const LogRecord&) { sunk.fetch_add(1); });
  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::thread emitter([&] {
    while (!stop.load()) {
      TELEKIT_LOG(INFO) << "level race probe";
    }
  });
  int failures = 0;
  const char* levels[] = {"debug", "warn", "info", "off", "error"};
  for (int i = 0; i < 25; ++i) {
    const std::string path = std::string("/loglevelz?set=") + levels[i % 5];
    if (HttpGet(port, path).status != 200) ++failures;
  }
  stop.store(true);
  emitter.join();
  EXPECT_EQ(failures, 0);
  Logger::Global().SetSink(nullptr);
  Logger::Global().set_level(saved);
}

// Every response -- success, handler-level 400s, 404, 405, and malformed
// 400s -- must advertise a Content-Type, a Content-Length, and close the
// connection (the server speaks one-shot HTTP/1.0).
TEST(AdminServerTest, AllResponsesCarryContentTypeAndConnectionClose) {
  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  const int port = server.port();
  struct Case {
    std::string request;
    int status;
  };
  const std::vector<Case> cases = {
      {"GET / HTTP/1.0\r\n\r\n", 200},
      {"GET /healthz HTTP/1.0\r\n\r\n", 200},
      {"GET /metrics HTTP/1.0\r\n\r\n", 200},
      {"GET /tracez HTTP/1.0\r\n\r\n", 200},
      {"GET /requestz HTTP/1.0\r\n\r\n", 200},
      {"GET /loglevelz HTTP/1.0\r\n\r\n", 200},
      {"GET /loglevelz?set=bogus HTTP/1.0\r\n\r\n", 400},
      {"GET /requestz?min_ms=abc HTTP/1.0\r\n\r\n", 400},
      {"GET /nope HTTP/1.0\r\n\r\n", 404},
      {"POST /healthz HTTP/1.0\r\n\r\n", 405},
      {"junk\r\n\r\n", 400},
  };
  for (const Case& test_case : cases) {
    const HttpReply reply = HttpRaw(port, test_case.request);
    EXPECT_EQ(reply.status, test_case.status) << test_case.request;
    EXPECT_NE(reply.headers.find("Content-Type: "), std::string::npos)
        << test_case.request;
    EXPECT_NE(reply.headers.find("Content-Length: "), std::string::npos)
        << test_case.request;
    EXPECT_NE(reply.headers.find("Connection: close"), std::string::npos)
        << test_case.request;
  }
}

TEST(AdminServerTest, MetricsBucketLinesCarryExemplars) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  ExemplarStore::Global().Reset();
  registry.GetLatencyHistogram("admtest/exm_ms").Observe(23.7);
  ExemplarStore::Global().Record("admtest/exm_ms", 23.7, 0x4d2);

  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  const HttpReply reply = HttpGet(server.port(), "/metrics");
  ASSERT_EQ(reply.status, 200);
  const std::string needle = "# {trace_id=\"00000000000004d2\"} 23.7";
  EXPECT_NE(reply.body.find(needle), std::string::npos);
  // The exemplar must ride a bucket line of the observed histogram, not a
  // free-floating comment.
  std::istringstream lines(reply.body);
  std::string line;
  bool on_bucket_line = false;
  while (std::getline(lines, line)) {
    if (line.find(needle) == std::string::npos) continue;
    on_bucket_line =
        line.rfind("telekit_admtest_exm_ms_bucket{le=\"", 0) == 0;
  }
  EXPECT_TRUE(on_bucket_line);
  ExemplarStore::Global().Reset();
  registry.Reset();
}

TEST(AdminServerTest, RequestzOverHttpFiltersByTraceId) {
  RequestLog::Global().Reset();
  WideEvent event;
  event.trace_id = 0xabcu;
  event.op = "rca";
  event.total_us = 1500;
  event.verdict = "surface";
  event.status = "ok";
  RequestLog::Global().Record(event);
  WideEvent other;
  other.trace_id = 0xdefu;
  other.op = "eap";
  other.total_us = 900;
  other.status = "ok";
  RequestLog::Global().Record(other);

  AdminServer server;
  ASSERT_TRUE(server.Start(0));
  const HttpReply reply = HttpGet(server.port(), "/requestz?trace_id=abc");
  ASSERT_EQ(reply.status, 200);
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(reply.body, &parsed, &error)) << error;
  const JsonValue* events = parsed.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ(events->at(0).Find("trace_id")->AsString(), "0000000000000abc");
  EXPECT_EQ(events->at(0).Find("op")->AsString(), "rca");
  // Non-hex trace ids are rejected at the HTTP layer.
  EXPECT_EQ(HttpGet(server.port(), "/requestz?trace_id=xyz").status, 400);
  RequestLog::Global().Reset();
}

}  // namespace
}  // namespace obs
}  // namespace telekit

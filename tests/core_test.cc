#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/anenc.h"
#include "core/qencode.h"
#include "core/transformer.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace telekit {
namespace core {
namespace {

using tensor::Tensor;

EncoderConfig SmallConfig() {
  EncoderConfig config;
  config.vocab_size = 50;
  config.d_model = 16;
  config.num_heads = 2;
  config.num_layers = 2;
  config.ffn_dim = 32;
  config.max_len = 12;
  config.dropout = 0.0f;
  return config;
}

// --- LinearLayer / LayerNormParams -----------------------------------------------

TEST(LinearLayerTest, ShapeAndBias) {
  Rng rng(1);
  LinearLayer layer(3, 5, rng);
  Tensor x = Tensor::Zeros({2, 3});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 5}));
  // Zero input -> bias (zero-initialized).
  for (float v : y.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(LinearLayerTest, ParametersNamed) {
  Rng rng(2);
  LinearLayer layer(2, 2, rng);
  auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].first, "weight");
  EXPECT_EQ(params[1].first, "bias");
}

TEST(NamedParamsTest, PrefixingAndMapConversion) {
  Rng rng(3);
  LinearLayer layer(2, 2, rng);
  NamedParams out;
  AppendWithPrefix("block", layer.Parameters(), &out);
  EXPECT_EQ(out[0].first, "block.weight");
  auto map = ToTensorMap(out);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.count("block.bias"));
  EXPECT_EQ(TensorsOf(out).size(), 2u);
}

// --- MultiHeadSelfAttention --------------------------------------------------------

TEST(AttentionTest, OutputShapePreserved) {
  Rng rng(4);
  MultiHeadSelfAttention attn(16, 4, rng);
  Tensor x = Tensor::Randn({5, 16}, rng);
  Tensor y = attn.Forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{5, 16}));
}

TEST(AttentionTest, GradientsReachAllProjections) {
  Rng rng(5);
  MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::Randn({4, 8}, rng, 1.0f, true);
  tensor::Sum(tensor::Square(attn.Forward(x))).Backward();
  for (const auto& [name, p] : attn.Parameters()) {
    ASSERT_FALSE(p.grad().empty()) << name;
    float total = 0;
    for (float g : p.grad()) total += std::fabs(g);
    EXPECT_GT(total, 0.0f) << name;
  }
}

TEST(AttentionTest, PositionMixing) {
  // Token 0's output must depend on token 2's content.
  Rng rng(6);
  MultiHeadSelfAttention attn(8, 2, rng);
  Tensor a = Tensor::Randn({3, 8}, rng);
  Tensor b = a.Detach();
  b.mutable_data()[2 * 8 + 3] += 2.0f;  // perturb token 2
  Tensor ya = attn.Forward(a);
  Tensor yb = attn.Forward(b);
  float diff = 0;
  for (int j = 0; j < 8; ++j) diff += std::fabs(ya.at(0, j) - yb.at(0, j));
  EXPECT_GT(diff, 1e-5f);
}

// --- TransformerEncoder ---------------------------------------------------------------

TEST(EncoderTest, ForwardShapeTrimsPadding) {
  Rng rng(7);
  TransformerEncoder encoder(SmallConfig(), rng);
  std::vector<int> ids = {2, 20, 21, 3, 0, 0, 0, 0};  // 4 real + pads
  Tensor h = encoder.Forward(ids, 4, rng, false);
  EXPECT_EQ(h.shape(), (tensor::Shape{4, 16}));
}

TEST(EncoderTest, DeterministicInEvalMode) {
  Rng rng(8);
  TransformerEncoder encoder(SmallConfig(), rng);
  std::vector<int> ids = {2, 15, 16, 17, 3};
  Rng r1(1), r2(2);
  Tensor a = encoder.Forward(ids, 5, r1, false);
  Tensor b = encoder.Forward(ids, 5, r2, false);
  EXPECT_EQ(a.data(), b.data());
}

TEST(EncoderTest, PositionSensitive) {
  Rng rng(9);
  TransformerEncoder encoder(SmallConfig(), rng);
  Rng eval(0);
  Tensor a = encoder.Forward({2, 20, 21, 3}, 4, eval, false);
  Tensor b = encoder.Forward({2, 21, 20, 3}, 4, eval, false);
  // Swapping tokens changes the [CLS] representation.
  float diff = 0;
  for (int j = 0; j < 16; ++j) diff += std::fabs(a.at(0, j) - b.at(0, j));
  EXPECT_GT(diff, 1e-5f);
}

TEST(EncoderTest, EmbedOverridesReplaceRows) {
  Rng rng(10);
  EncoderConfig config = SmallConfig();
  TransformerEncoder encoder(config, rng);
  std::vector<int> ids = {2, 20, 12, 3};
  Rng eval(0);
  Tensor replacement = Tensor::Full({1, 16}, 3.0f);
  Tensor with = encoder.Embed(ids, 4, {{2, replacement}}, eval, false);
  Tensor without = encoder.Embed(ids, 4, {}, eval, false);
  // Row 2 differs, row 1 does not.
  float diff2 = 0, diff1 = 0;
  for (int j = 0; j < 16; ++j) {
    diff2 += std::fabs(with.at(2, j) - without.at(2, j));
    diff1 += std::fabs(with.at(1, j) - without.at(1, j));
  }
  EXPECT_GT(diff2, 1e-4f);
  EXPECT_LT(diff1, 1e-6f);
}

TEST(EncoderTest, OverrideGradientFlowsToExternalTensor) {
  Rng rng(11);
  TransformerEncoder encoder(SmallConfig(), rng);
  Tensor external = Tensor::Randn({1, 16}, rng, 1.0f, true);
  Rng eval(0);
  Tensor embedded = encoder.Embed({2, 20, 12, 3}, 4, {{2, external}}, eval,
                                  false);
  Tensor h = encoder.Encode(embedded, eval, false);
  tensor::Sum(tensor::Square(h)).Backward();
  ASSERT_FALSE(external.grad().empty());
  float total = 0;
  for (float g : external.grad()) total += std::fabs(g);
  EXPECT_GT(total, 0.0f);
}

TEST(EncoderTest, MeanTokenEmbeddingShape) {
  Rng rng(12);
  TransformerEncoder encoder(SmallConfig(), rng);
  Tensor t = encoder.MeanTokenEmbedding({20, 21, 22});
  EXPECT_EQ(t.shape(), (tensor::Shape{1, 16}));
}

TEST(EncoderTest, ParameterCountConsistent) {
  Rng rng(13);
  TransformerEncoder encoder(SmallConfig(), rng);
  auto params = encoder.Parameters();
  std::set<std::string> names;
  for (const auto& [name, t] : params) names.insert(name);
  EXPECT_EQ(names.size(), params.size()) << "duplicate parameter names";
  // token, position, embed norm (2), per layer: attn 8 + norms 4 + ffn 4.
  EXPECT_EQ(params.size(), 2u + 2u + 2u * 16u);
}

// --- AnEnc ----------------------------------------------------------------------------

AnEncConfig SmallAnEnc() {
  AnEncConfig config;
  config.d_model = 16;
  config.num_meta = 4;
  config.num_layers = 2;
  config.lora_rank = 2;
  config.ffn_dim = 32;
  return config;
}

TEST(AnEncTest, OutputShape) {
  Rng rng(14);
  AnEnc anenc(SmallAnEnc(), rng);
  Tensor tag = Tensor::Randn({1, 16}, rng);
  Tensor h = anenc.Forward(tag, 0.7f);
  EXPECT_EQ(h.shape(), (tensor::Shape{1, 16}));
}

TEST(AnEncTest, ValueSensitivity) {
  Rng rng(15);
  AnEnc anenc(SmallAnEnc(), rng);
  Tensor tag = Tensor::Randn({1, 16}, rng);
  Tensor h1 = anenc.Forward(tag, 0.1f);
  Tensor h2 = anenc.Forward(tag, 0.9f);
  float diff = 0;
  for (int j = 0; j < 16; ++j) diff += std::fabs(h1.at(0, j) - h2.at(0, j));
  EXPECT_GT(diff, 1e-4f);
}

TEST(AnEncTest, TagSensitivity) {
  Rng rng(16);
  AnEnc anenc(SmallAnEnc(), rng);
  Tensor tag1 = Tensor::Randn({1, 16}, rng);
  Tensor tag2 = Tensor::Randn({1, 16}, rng);
  Tensor h1 = anenc.Forward(tag1, 0.5f);
  Tensor h2 = anenc.Forward(tag2, 0.5f);
  float diff = 0;
  for (int j = 0; j < 16; ++j) diff += std::fabs(h1.at(0, j) - h2.at(0, j));
  EXPECT_GT(diff, 1e-4f);
}

TEST(AnEncTest, MetaAttentionIsDistribution) {
  Rng rng(17);
  AnEnc anenc(SmallAnEnc(), rng);
  Tensor tag = Tensor::Randn({1, 16}, rng);
  auto attn = anenc.MetaAttention(tag);
  ASSERT_EQ(attn.size(), 4u);
  float total = 0;
  for (float a : attn) {
    EXPECT_GE(a, 0.0f);
    total += a;
  }
  EXPECT_NEAR(total, 1.0f, 1e-5f);
}

TEST(AnEncTest, OrthogonalPenaltySmallAtInit) {
  // Wv matrices start near identity, so the penalty starts near zero and
  // is strictly positive.
  Rng rng(18);
  AnEnc anenc(SmallAnEnc(), rng);
  const float penalty = anenc.OrthogonalPenalty().item();
  EXPECT_GT(penalty, 0.0f);
  EXPECT_LT(penalty, 1.0f);
}

TEST(AnEncTest, GradientsFlowToAllParameters) {
  Rng rng(19);
  AnEnc anenc(SmallAnEnc(), rng);
  Tensor tag = Tensor::Randn({1, 16}, rng);
  tensor::Sum(tensor::Square(anenc.Forward(tag, 0.4f))).Backward();
  int with_grad = 0;
  for (const auto& [name, p] : anenc.Parameters()) {
    if (!p.grad().empty()) {
      float total = 0;
      for (float g : p.grad()) total += std::fabs(g);
      // lora_up starts at zero, so lora_down's gradient is zero at init;
      // count parameters that did receive signal.
      with_grad += total > 0.0f;
    }
  }
  EXPECT_GT(with_grad, 10);
}

TEST(AnEncTest, TrainableToTargetEmbedding) {
  // Sanity: ANEnc can be optimized to map a value to a target vector.
  Rng rng(20);
  AnEnc anenc(SmallAnEnc(), rng);
  Tensor tag = Tensor::Randn({1, 16}, rng);
  Tensor target = Tensor::Randn({1, 16}, rng);
  tensor::Adam opt(0.01f);
  opt.AddParameters(TensorsOf(anenc.Parameters()));
  float first = 0, last = 0;
  for (int step = 0; step < 150; ++step) {
    opt.ZeroGrad();
    Tensor loss = tensor::MseLoss(anenc.Forward(tag, 0.3f), target);
    if (step == 0) first = loss.item();
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(AnEncTest, AdaptsToUnseenTagNames) {
  // The paper's motivating property (Sec. IV-B): because ANEnc routes
  // through attention over meta embeddings instead of per-field weights,
  // value structure learned on known tags transfers to tags never seen in
  // training. Train value-ordering on three tags, then check that a fresh
  // tag's embeddings still order by value.
  Rng rng(50);
  AnEnc anenc(SmallAnEnc(), rng);
  std::vector<Tensor> train_tags;
  for (int t = 0; t < 3; ++t) {
    train_tags.push_back(Tensor::Randn({1, 16}, rng));
  }
  tensor::Adam opt(0.01f);
  opt.AddParameters(TensorsOf(anenc.Parameters()));
  Rng train_rng(51);
  for (int step = 0; step < 120; ++step) {
    opt.ZeroGrad();
    std::vector<Tensor> embeddings;
    std::vector<float> values;
    for (int b = 0; b < 6; ++b) {
      const float v = static_cast<float>(train_rng.Uniform());
      const Tensor& tag =
          train_tags[static_cast<size_t>(train_rng.UniformInt(3))];
      embeddings.push_back(anenc.Forward(tag, v));
      values.push_back(v);
    }
    NumericContrastiveLoss(embeddings, values, 0.1f).Backward();
    opt.Step();
  }
  // Unseen tag: value-neighbors should be closer than value-extremes.
  Tensor unseen = Tensor::Randn({1, 16}, rng);
  auto distance = [&](float a, float b) {
    Tensor ha = anenc.Forward(unseen, a);
    Tensor hb = anenc.Forward(unseen, b);
    double sq = 0;
    for (int j = 0; j < 16; ++j) {
      const double d = ha.at(0, j) - hb.at(0, j);
      sq += d * d;
    }
    return std::sqrt(sq);
  };
  EXPECT_LT(distance(0.4f, 0.5f), distance(0.1f, 0.9f));
}

// --- NumericDecoder / TagClassifier -----------------------------------------------------

TEST(NumericDecoderTest, ScalarOutput) {
  Rng rng(21);
  NumericDecoder ndec(16, rng);
  Tensor h = Tensor::Randn({1, 16}, rng);
  Tensor v = ndec.Forward(h);
  EXPECT_EQ(v.shape(), (tensor::Shape{1}));
}

TEST(TagClassifierTest, LogitShape) {
  Rng rng(22);
  TagClassifier tgc(16, 7, rng);
  Tensor h = Tensor::Randn({1, 16}, rng);
  EXPECT_EQ(tgc.Forward(h).shape(), (tensor::Shape{1, 7}));
  EXPECT_EQ(tgc.num_tags(), 7);
}

// --- AutoWeightedLoss ---------------------------------------------------------------------

TEST(AutoWeightedLossTest, CombinesAndSkipsUndefined) {
  AutoWeightedLoss auto_loss(3);
  Tensor l1 = Tensor::Scalar(2.0f, true);
  Tensor l3 = Tensor::Scalar(1.0f, true);
  Tensor combined = auto_loss.Combine({l1, Tensor(), l3});
  // mu = 1: each term = 0.5 * L / (1 + eps) + log(2).
  const float expected = 0.5f * 2.0f / 1.0001f + std::log(2.0f) +
                         0.5f * 1.0f / 1.0001f + std::log(2.0f);
  EXPECT_NEAR(combined.item(), expected, 1e-3f);
}

TEST(AutoWeightedLossTest, LearnsToDownweightNoisyTask) {
  // Task 0 has large persistent loss, task 1 small: mu_0 should grow
  // beyond mu_1 so the noisy task is downweighted.
  AutoWeightedLoss auto_loss(2);
  tensor::Adam opt(0.05f);
  opt.AddParameters(TensorsOf(auto_loss.Parameters()));
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    Tensor noisy = Tensor::Scalar(5.0f);
    Tensor clean = Tensor::Scalar(0.1f);
    auto_loss.Combine({noisy, clean}).Backward();
    opt.Step();
  }
  auto weights = auto_loss.Weights();
  EXPECT_GT(std::fabs(weights[0]), std::fabs(weights[1]));
}

// --- NumericContrastiveLoss ------------------------------------------------------------------

TEST(NumericContrastiveTest, PrefersValueNeighbors) {
  // Embeddings already arranged so that value-neighbors are similar ->
  // loss should be lower than for shuffled embeddings.
  Rng rng(23);
  std::vector<float> values = {0.1f, 0.15f, 0.8f, 0.85f};
  std::vector<Tensor> aligned = {
      Tensor::FromData({1, 4}, {1, 0, 0, 0}),
      Tensor::FromData({1, 4}, {0.9f, 0.1f, 0, 0}),
      Tensor::FromData({1, 4}, {0, 0, 1, 0}),
      Tensor::FromData({1, 4}, {0, 0, 0.9f, 0.1f})};
  std::vector<Tensor> misaligned = {
      Tensor::FromData({1, 4}, {1, 0, 0, 0}),
      Tensor::FromData({1, 4}, {0, 0, 1, 0}),
      Tensor::FromData({1, 4}, {0.9f, 0.1f, 0, 0}),
      Tensor::FromData({1, 4}, {0, 0, 0.9f, 0.1f})};
  const float good = NumericContrastiveLoss(aligned, values, 0.1f).item();
  const float bad = NumericContrastiveLoss(misaligned, values, 0.1f).item();
  EXPECT_LT(good, bad);
}

TEST(NumericContrastiveTest, GradCheck) {
  std::vector<float> values = {0.2f, 0.5f, 0.9f};
  auto fn = [&](const std::vector<Tensor>& in) {
    std::vector<Tensor> rows;
    for (int i = 0; i < 3; ++i) rows.push_back(tensor::SliceRows(in[0], i, 1));
    return NumericContrastiveLoss(rows, values, 0.5f);
  };
  Rng rng(24);
  std::vector<Tensor> leaves = {Tensor::Randn({3, 5}, rng, 1.0f, true)};
  auto result = tensor::CheckGradients(fn, leaves);
  EXPECT_TRUE(result.passed) << result.detail;
}

// --- QuantizedEncoder --------------------------------------------------------

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  EXPECT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

text::EncodedInput MakeInput(std::vector<int> ids) {
  text::EncodedInput input;
  input.length = static_cast<int>(ids.size());
  input.ids = std::move(ids);
  return input;
}

TEST(QuantizedLinearTest, MatchesFp32LayerWithinTolerance) {
  Rng rng(31);
  LinearLayer layer(16, 8, rng);
  NamedParams params = layer.Parameters();
  QuantizedLinear qlayer(params[0].second, params[1].second);
  EXPECT_EQ(qlayer.in_dim(), 16);
  EXPECT_EQ(qlayer.out_dim(), 8);

  Tensor x = Tensor::Randn({3, 16}, rng, 1.0f);
  Tensor y = layer.Forward(x);
  std::vector<float> qy(3 * 8);
  qlayer.Forward(x.data().data(), 3, qy.data());
  // Per-column weight + per-row activation scales: worst-case relative
  // error on a 16-wide dot is far under 2% of the activation magnitude.
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_NEAR(qy[static_cast<size_t>(r) * 8 + c], y.at(r, c), 0.05f)
          << "r=" << r << " c=" << c;
    }
  }
}

TEST(QuantizedEncoderTest, ClsCosineCloseToFp32) {
  Rng rng(32);
  TransformerEncoder encoder(SmallConfig(), rng);
  QuantizedEncoder quantized(encoder);
  EXPECT_EQ(quantized.dim(), 16);

  const std::vector<std::vector<int>> sequences = {
      {2, 20, 21, 3}, {2, 15, 16, 17, 3}, {2, 40, 7, 12, 30, 3}, {2, 5, 3}};
  Rng eval(0);
  for (const std::vector<int>& ids : sequences) {
    Tensor fp32 = encoder.Forward(ids, static_cast<int>(ids.size()), eval,
                                  /*training=*/false);
    std::vector<float> cls(fp32.data().begin(), fp32.data().begin() + 16);
    const std::vector<float> int8 = quantized.Encode(MakeInput(ids));
    EXPECT_GE(Cosine(cls, int8), 0.98) << "ids[1]=" << ids[1];
  }
}

TEST(QuantizedEncoderTest, CalibrationKeepsCorpusParity) {
  Rng rng(33);
  TransformerEncoder encoder(SmallConfig(), rng);
  QuantizedEncoder quantized(encoder);

  std::vector<text::EncodedInput> corpus;
  for (int i = 0; i < 6; ++i) {
    corpus.push_back(MakeInput({2, 10 + i, 20 + i, 30 + i, 3}));
  }
  std::vector<const text::EncodedInput*> ptrs;
  std::vector<std::vector<float>> before;
  for (const auto& input : corpus) {
    ptrs.push_back(&input);
    before.push_back(quantized.Encode(input));
  }
  quantized.Calibrate(ptrs);
  // Calibration clips are maxima over this very corpus, so its own
  // quantization grids — and thus its embeddings — are unchanged.
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(quantized.Encode(corpus[i]), before[i]) << "input " << i;
  }
}

TEST(QuantizedEncoderTest, OverrideHookReplacesEmbeddingRows) {
  Rng rng(34);
  TransformerEncoder encoder(SmallConfig(), rng);
  QuantizedEncoder plain(encoder);
  int hook_calls = 0;
  QuantizedEncoder hooked(
      encoder, [&hook_calls](const text::EncodedInput& input) {
        ++hook_calls;
        std::vector<std::pair<int, std::vector<float>>> overrides;
        if (!input.numeric_slots.empty()) {
          overrides.emplace_back(input.numeric_slots[0].position,
                                 std::vector<float>(16, 0.5f));
        }
        return overrides;
      });

  text::EncodedInput with_slot = MakeInput({2, 20, 12, 3});
  with_slot.numeric_slots.push_back({2, "kpi", {20}, 0.7f});
  const std::vector<float> overridden = hooked.Encode(with_slot);
  EXPECT_EQ(hook_calls, 1);
  EXPECT_NE(overridden, plain.Encode(with_slot));

  // No numeric slots: the hook returns nothing and the outputs agree.
  text::EncodedInput no_slot = MakeInput({2, 20, 12, 3});
  EXPECT_EQ(hooked.Encode(no_slot), plain.Encode(no_slot));
}

}  // namespace
}  // namespace core
}  // namespace telekit

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/model_zoo.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "stream/pipeline.h"
#include "stream/sessionizer.h"
#include "synth/replay.h"
#include "synth/world.h"

namespace telekit {
namespace stream {
namespace {

// ---------------------------------------------------------------------------
// Sessionizer windowing edge cases (pure event-time logic, no model)
// ---------------------------------------------------------------------------

const synth::WorldModel& TestWorld() {
  static const synth::WorldModel* const kWorld =
      new synth::WorldModel(synth::WorldConfig{});
  return *kWorld;
}

synth::StreamEvent AlarmAt(double time, int alarm_type, int element,
                           int episode_id = -1) {
  synth::StreamEvent event;
  event.kind = synth::StreamEvent::Kind::kAlarm;
  event.time = time;
  event.arrival = time;
  event.episode_id = episode_id;
  event.alarm.alarm_type = alarm_type;
  event.alarm.element = element;
  event.alarm.time = time;
  return event;
}

synth::StreamEvent KpiAt(double time, int kpi_type, int element, float value) {
  synth::StreamEvent event;
  event.kind = synth::StreamEvent::Kind::kKpi;
  event.time = time;
  event.arrival = time;
  event.kpi.kpi_type = kpi_type;
  event.kpi.element = element;
  event.kpi.time = time;
  event.kpi.value = value;
  return event;
}

/// An element with no topology edge to `element` (alarms on the two must
/// not share a window).
int NonAdjacentElement(const synth::WorldModel& world, int element) {
  const std::vector<int> neighbors = world.TopologyNeighbors(element);
  const int n = static_cast<int>(world.elements().size());
  for (int candidate = 0; candidate < n; ++candidate) {
    if (candidate == element) continue;
    bool adjacent = false;
    for (int neighbor : neighbors) adjacent |= neighbor == candidate;
    if (!adjacent) return candidate;
  }
  ADD_FAILURE() << "world topology is complete; no non-adjacent element";
  return element;
}

TEST(SessionizerTest, EmptyFlushIsANoOp) {
  Sessionizer sessionizer(TestWorld(), WindowConfig{});
  std::vector<EpisodeCandidate> flushed;
  sessionizer.FlushAll(&flushed);
  EXPECT_TRUE(flushed.empty());
  EXPECT_EQ(sessionizer.stats().events, 0u);
  EXPECT_EQ(sessionizer.stats().episodes_flushed, 0u);
  EXPECT_EQ(sessionizer.stats().open_windows, 0u);
}

TEST(SessionizerTest, DuplicateAlarmOnOneElementJoinsOnce) {
  Sessionizer sessionizer(TestWorld(), WindowConfig{});
  std::vector<EpisodeCandidate> flushed;
  sessionizer.Offer(AlarmAt(0.0, /*alarm_type=*/3, /*element=*/5, 0),
                    &flushed);
  sessionizer.Offer(AlarmAt(1.0, 3, 5, 0), &flushed);  // same type+element
  EXPECT_EQ(sessionizer.stats().duplicate_alarms, 1u);
  sessionizer.FlushAll(&flushed);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].alarms.size(), 1u);  // deduplicated
  EXPECT_EQ(flushed[0].truth_episode, 0);
}

TEST(SessionizerTest, EventBehindWatermarkIsDroppedNotJoined) {
  Sessionizer sessionizer(TestWorld(), WindowConfig{});
  std::vector<EpisodeCandidate> flushed;
  sessionizer.Offer(AlarmAt(0.0, 1, 0), &flushed);
  // Jump the event time far ahead: watermark = 100 - watermark_delay.
  sessionizer.Offer(AlarmAt(100.0, 2, 1), &flushed);
  EXPECT_EQ(flushed.size(), 1u);  // first window flushed by the watermark
  const uint64_t flushed_before = sessionizer.stats().episodes_flushed;
  // An hour-old alarm must be counted late and dropped — joining it to the
  // (already flushed, or any) window would be a wrong correlation.
  sessionizer.Offer(AlarmAt(10.0, 1, 0), &flushed);
  EXPECT_EQ(sessionizer.stats().late_drops, 1u);
  EXPECT_EQ(sessionizer.stats().episodes_flushed, flushed_before);
  sessionizer.FlushAll(&flushed);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[1].alarms.size(), 1u);  // late alarm not joined
}

TEST(SessionizerTest, BoundedOutOfOrderEventStillJoins) {
  WindowConfig config;
  config.watermark_delay = 2.0;
  Sessionizer sessionizer(TestWorld(), config);
  std::vector<EpisodeCandidate> flushed;
  sessionizer.Offer(AlarmAt(5.0, 1, 0), &flushed);
  // 1.5 s behind the newest time but inside the watermark tolerance.
  synth::StreamEvent late = AlarmAt(3.5, 2, 0);
  late.arrival = 5.1;
  sessionizer.Offer(late, &flushed);
  EXPECT_EQ(sessionizer.stats().late_drops, 0u);
  sessionizer.FlushAll(&flushed);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].alarms.size(), 2u);
}

TEST(SessionizerTest, OverlappingEpisodesOnDisjointTopologySplitWindows) {
  const synth::WorldModel& world = TestWorld();
  const int far = NonAdjacentElement(world, 0);
  Sessionizer sessionizer(world, WindowConfig{});
  std::vector<EpisodeCandidate> flushed;
  // Two episodes interleaved in time on topologically-unrelated elements:
  // correlation must partition by propagation locality, not by time alone.
  sessionizer.Offer(AlarmAt(0.0, 1, 0, /*episode_id=*/0), &flushed);
  sessionizer.Offer(AlarmAt(0.5, 2, far, /*episode_id=*/1), &flushed);
  sessionizer.Offer(AlarmAt(1.0, 3, 0, /*episode_id=*/0), &flushed);
  sessionizer.Offer(AlarmAt(1.5, 4, far, /*episode_id=*/1), &flushed);
  sessionizer.FlushAll(&flushed);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0].truth_episode, 0);
  EXPECT_EQ(flushed[0].alarms.size(), 2u);
  EXPECT_EQ(flushed[1].truth_episode, 1);
  EXPECT_EQ(flushed[1].alarms.size(), 2u);
  for (const EpisodeCandidate& candidate : flushed) {
    EXPECT_EQ(candidate.truth_votes, candidate.total_votes);
  }
}

TEST(SessionizerTest, IdleWindowFlushesBeforeSpanExhausts) {
  WindowConfig config;
  config.window_span = 100.0;
  config.idle_gap = 2.0;
  config.watermark_delay = 1.0;
  Sessionizer sessionizer(TestWorld(), config);
  std::vector<EpisodeCandidate> flushed;
  sessionizer.Offer(AlarmAt(0.0, 1, 0), &flushed);
  // Background KPI far later advances the watermark past the idle bound.
  sessionizer.Offer(KpiAt(10.0, 0, 1, /*value=*/0.0f), &flushed);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].alarms.size(), 1u);
}

TEST(SessionizerTest, ExcursionJoinsExactElementOnly) {
  const synth::WorldModel& world = TestWorld();
  const synth::KpiType& kpi = world.kpis()[0];
  const float excursion =
      kpi.baseline + (kpi.increases_on_fault ? 1.0f : -1.0f) * kpi.scale;
  Sessionizer sessionizer(world, WindowConfig{});
  EXPECT_TRUE(sessionizer.IsExcursion(0, excursion));
  EXPECT_FALSE(sessionizer.IsExcursion(0, kpi.baseline));
  std::vector<EpisodeCandidate> flushed;
  sessionizer.Offer(AlarmAt(0.0, 1, 0), &flushed);
  sessionizer.Offer(KpiAt(0.5, 0, 0, excursion), &flushed);  // same element
  const int far = NonAdjacentElement(world, 0);
  sessionizer.Offer(KpiAt(0.6, 0, far, excursion), &flushed);  // orphan
  sessionizer.Offer(KpiAt(0.7, 0, 0, kpi.baseline), &flushed);  // background
  EXPECT_EQ(sessionizer.stats().orphan_symptoms, 1u);
  EXPECT_EQ(sessionizer.stats().background_events, 1u);
  sessionizer.FlushAll(&flushed);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].excursions.size(), 1u);
}

TEST(SessionizerTest, WindowOccupancyIsBounded) {
  WindowConfig config;
  config.max_window_events = 4;
  Sessionizer sessionizer(TestWorld(), config);
  std::vector<EpisodeCandidate> flushed;
  for (int i = 0; i < 10; ++i) {
    sessionizer.Offer(AlarmAt(0.1 * i, /*alarm_type=*/i, /*element=*/0),
                      &flushed);
  }
  EXPECT_EQ(sessionizer.stats().overflow_drops, 6u);
  EXPECT_LE(sessionizer.stats().window_occupancy, 4u);
  sessionizer.FlushAll(&flushed);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].alarms.size(), 4u);
}

// ---------------------------------------------------------------------------
// Replay stream generation
// ---------------------------------------------------------------------------

TEST(ReplayTest, DeterministicForSeedAndArrivalOrdered) {
  const synth::WorldModel& world = TestWorld();
  synth::LogGenerator log_gen(world, synth::LogConfig{});
  synth::SignalingFlowGenerator signaling_gen(world,
                                              synth::SignalingConfig{});
  synth::ReplayConfig config;
  config.num_episodes = 6;
  auto build = [&] {
    Rng rng(42);
    const auto episodes =
        synth::ScheduleEpisodes(log_gen, signaling_gen, config, rng);
    return synth::BuildReplayStream(log_gen, signaling_gen, episodes, config,
                                    rng);
  };
  const std::vector<synth::StreamEvent> a = build();
  const std::vector<synth::StreamEvent> b = build();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].time, b[i].time) << i;
    EXPECT_EQ(a[i].arrival, b[i].arrival) << i;
    EXPECT_EQ(a[i].episode_id, b[i].episode_id) << i;
  }
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].arrival, a[i].arrival) << i;
  }
  for (const synth::StreamEvent& event : a) {
    EXPECT_GE(event.arrival, event.time);
    EXPECT_LE(event.arrival - event.time, config.jitter + 1e-9);
  }
}

TEST(ReplayTest, SimClockPacesOnlyWhenFinite) {
  synth::SimClock unpaced(synth::SimClock::kInfiniteSpeedup);
  EXPECT_FALSE(unpaced.paced());
  const auto start = std::chrono::steady_clock::now();
  unpaced.SleepUntil(1e6);  // must not sleep
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            0.5);
  // 1 simulated second at 100x ~= 10 ms of wall clock.
  synth::SimClock paced(100.0);
  EXPECT_TRUE(paced.paced());
  const auto paced_start = std::chrono::steady_clock::now();
  paced.SleepUntil(1.0);
  EXPECT_GE(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          paced_start)
                .count(),
            0.005);
}

// ---------------------------------------------------------------------------
// MicroBatchQueue::PushBlocking (the backpressure primitive)
// ---------------------------------------------------------------------------

TEST(PushBlockingTest, TimesOutOnFullQueue) {
  serve::BatcherOptions options;
  options.capacity = 1;
  serve::MicroBatchQueue<int> queue(options);
  EXPECT_TRUE(queue.Push(1));
  int item = 2;
  EXPECT_FALSE(queue.PushBlocking(std::move(item), /*max_wait_us=*/2000));
  EXPECT_EQ(queue.size(), 1u);
}

TEST(PushBlockingTest, UnblocksWhenConsumerMakesRoom) {
  serve::BatcherOptions options;
  options.capacity = 1;
  options.max_batch = 1;
  serve::MicroBatchQueue<int> queue(options);
  EXPECT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    pushed.store(queue.PushBlocking(2, /*max_wait_us=*/2'000'000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still blocked on the full queue
  const std::vector<int> batch = queue.PopBatch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(PushBlockingTest, FailsFastWhenClosed) {
  serve::BatcherOptions options;
  options.capacity = 1;
  serve::MicroBatchQueue<int> queue(options);
  EXPECT_TRUE(queue.Push(1));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Close();
  });
  // Blocked producer must be released by Close (with failure), not ride
  // out the full wait.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.PushBlocking(2, /*max_wait_us=*/5'000'000));
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            2.0);
  closer.join();
}

// ---------------------------------------------------------------------------
// End-to-end pipeline over a tiny zoo (shared, built once)
// ---------------------------------------------------------------------------

core::ZooConfig TinyStreamConfig() {
  core::ZooConfig config;
  config.seed = 777;
  config.world.num_alarm_types = 16;
  config.world.num_kpi_types = 8;
  config.world.num_network_elements = 12;
  config.corpus.num_tele_sentences = 400;
  config.corpus.num_general_sentences = 400;
  config.num_episodes = 10;
  config.max_machine_logs = 60;
  config.max_triple_sentences = 40;
  config.max_ke_triples = 30;
  config.encoder.d_model = 32;
  config.encoder.num_heads = 2;
  config.encoder.num_layers = 2;
  config.encoder.ffn_dim = 64;
  config.pretrain.steps = 8;
  config.pretrain.batch_size = 4;
  config.retrain.total_steps = 8;
  config.retrain.batch_size = 4;
  config.retrain.ke_batch_size = 2;
  config.anenc.num_layers = 1;
  config.anenc.num_meta = 4;
  config.anenc.ffn_dim = 32;
  config.cache_dir = "";
  return config;
}

const core::ModelZoo& SharedZoo() {
  static core::ModelZoo* zoo = [] {
    auto* z = new core::ModelZoo(TinyStreamConfig());
    z->Build();
    return z;
  }();
  return *zoo;
}

std::vector<std::string> AlarmNames(const core::ModelZoo& zoo) {
  std::vector<std::string> names;
  for (const auto& alarm : zoo.world().alarms()) names.push_back(alarm.name);
  return names;
}

std::vector<synth::StreamEvent> TinyReplay(const core::ModelZoo& zoo,
                                           int num_episodes, uint64_t seed) {
  synth::LogGenerator log_gen(zoo.world(), synth::LogConfig{});
  synth::SignalingFlowGenerator signaling_gen(zoo.world(),
                                              synth::SignalingConfig{});
  synth::ReplayConfig config;
  config.num_episodes = num_episodes;
  config.background_readings = 32;
  config.background_procedures = 2;
  Rng rng(seed);
  const auto episodes =
      synth::ScheduleEpisodes(log_gen, signaling_gen, config, rng);
  return synth::BuildReplayStream(log_gen, signaling_gen, episodes, config,
                                  rng);
}

/// The replay contract: fixed seed + unpaced replay -> two runs produce
/// identical episode partitions and bit-identical RCA/EAP/FCT verdicts.
TEST(StreamPipelineTest, DeterministicReplayContract) {
  const core::ModelZoo& zoo = SharedZoo();
  const std::vector<synth::StreamEvent> events = TinyReplay(zoo, 5, 1234);
  auto run = [&] {
    core::ServiceEncoder service =
        zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
    serve::EngineOptions options;
    options.num_workers = 2;
    serve::ServeEngine engine(&service, options);
    const std::vector<std::string> names = AlarmNames(zoo);
    for (serve::TaskOp op : {serve::TaskOp::kRca, serve::TaskOp::kEap,
                             serve::TaskOp::kFct}) {
      EXPECT_TRUE(engine.LoadCatalog(op, names).ok());
    }
    PipelineConfig config;
    config.deterministic = true;
    std::vector<EpisodeVerdict> verdicts;
    StreamPipeline pipeline(zoo.world(), &engine, config);
    pipeline.Run(events, [&verdicts](EpisodeVerdict verdict) {
      verdicts.push_back(std::move(verdict));
    });
    engine.Stop();
    return verdicts;
  };
  const std::vector<EpisodeVerdict> a = run();
  const std::vector<EpisodeVerdict> b = run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    // Identical partitions...
    EXPECT_EQ(a[i].query, b[i].query) << i;
    EXPECT_EQ(a[i].candidate.alarms.size(), b[i].candidate.alarms.size());
    EXPECT_EQ(a[i].candidate.truth_episode, b[i].candidate.truth_episode);
    ASSERT_TRUE(a[i].ok);
    ASSERT_TRUE(b[i].ok);
    // ...and bit-identical verdicts (the sync Process path rides the
    // deterministic compute contract: no batching, fixed reduction order).
    auto expect_same = [&](const serve::Response& x,
                           const serve::Response& y) {
      ASSERT_EQ(x.results.size(), y.results.size());
      for (size_t k = 0; k < x.results.size(); ++k) {
        EXPECT_EQ(x.results[k].name, y.results[k].name);
        EXPECT_EQ(x.results[k].score, y.results[k].score);
      }
    };
    expect_same(a[i].rca, b[i].rca);
    expect_same(a[i].eap, b[i].eap);
    expect_same(a[i].fct, b[i].fct);
  }
}

/// Online verdicts must match the offline evaluator: scoring the same
/// query text through the synchronous engine path yields the same ranking.
TEST(StreamPipelineTest, OnlineVerdictsMatchOfflineProcess) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  serve::ServeEngine engine(&service, serve::EngineOptions{});
  const std::vector<std::string> names = AlarmNames(zoo);
  for (serve::TaskOp op :
       {serve::TaskOp::kRca, serve::TaskOp::kEap, serve::TaskOp::kFct}) {
    ASSERT_TRUE(engine.LoadCatalog(op, names).ok());
  }
  PipelineConfig config;
  config.deterministic = true;
  std::vector<EpisodeVerdict> verdicts;
  StreamPipeline pipeline(zoo.world(), &engine, config);
  pipeline.Run(TinyReplay(zoo, 4, 99),
               [&verdicts](EpisodeVerdict verdict) {
                 verdicts.push_back(std::move(verdict));
               });
  ASSERT_FALSE(verdicts.empty());
  for (const EpisodeVerdict& verdict : verdicts) {
    serve::Request request;
    request.op = serve::TaskOp::kRca;
    request.text = verdict.query;
    request.top_k = config.top_k;
    const serve::Response offline = engine.Process(request);
    ASSERT_TRUE(offline.status.ok());
    ASSERT_EQ(offline.results.size(), verdict.rca.results.size());
    for (size_t k = 0; k < offline.results.size(); ++k) {
      EXPECT_EQ(offline.results[k].name, verdict.rca.results[k].name);
      EXPECT_EQ(offline.results[k].score, verdict.rca.results[k].score);
    }
  }
  engine.Stop();
}

/// Saturation run: a deliberately tiny engine queue plus a small in-flight
/// bound must throttle (or shed) rather than grow state — and every
/// flushed episode is accounted exactly once.
TEST(StreamPipelineTest, AsyncBackpressureBoundsInFlightState) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  serve::EngineOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.max_batch = 2;
  serve::ServeEngine engine(&service, options);
  const std::vector<std::string> names = AlarmNames(zoo);
  for (serve::TaskOp op :
       {serve::TaskOp::kRca, serve::TaskOp::kEap, serve::TaskOp::kFct}) {
    ASSERT_TRUE(engine.LoadCatalog(op, names).ok());
  }
  PipelineConfig config;
  config.deterministic = false;
  config.max_in_flight = 2;
  config.submit_block_ms = 500.0;
  std::vector<EpisodeVerdict> verdicts;
  StreamPipeline pipeline(zoo.world(), &engine, config);
  const PipelineSummary summary = pipeline.Run(
      TinyReplay(zoo, 8, 2024), [&verdicts](EpisodeVerdict verdict) {
        verdicts.push_back(std::move(verdict));
      });
  engine.Stop();
  // Conservation: every flushed episode was either analysed or shed, and
  // the sink saw each exactly once.
  EXPECT_EQ(summary.episodes_analysed + summary.episodes_shed,
            summary.sessionizer.episodes_flushed);
  EXPECT_EQ(verdicts.size(), summary.sessionizer.episodes_flushed);
  EXPECT_GT(summary.sessionizer.episodes_flushed, 0u);
  uint64_t ok = 0;
  for (const EpisodeVerdict& verdict : verdicts) ok += verdict.ok ? 1 : 0;
  EXPECT_EQ(ok, summary.episodes_analysed);
}

TEST(StreamPipelineTest, QueryTextLeadsWithRootAlarm) {
  const core::ModelZoo& zoo = SharedZoo();
  Sessionizer sessionizer(zoo.world(), WindowConfig{});
  std::vector<EpisodeCandidate> flushed;
  sessionizer.Offer(AlarmAt(0.0, 2, 0, 0), &flushed);
  sessionizer.FlushAll(&flushed);
  ASSERT_EQ(flushed.size(), 1u);
  const std::string query = EpisodeQueryText(zoo.world(), flushed[0]);
  EXPECT_EQ(query.rfind(zoo.world().alarms()[2].name, 0), 0u)
      << "query does not lead with the root alarm surface: " << query;
}

}  // namespace
}  // namespace stream
}  // namespace telekit

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "kg/kge.h"
#include "kg/store.h"

namespace telekit {
namespace kg {
namespace {

// --- TripleStore -----------------------------------------------------------------

TEST(TripleStoreTest, EntityDedupBySurface) {
  TripleStore store;
  const EntityId a = store.AddEntity("ALM-1");
  const EntityId b = store.AddEntity("ALM-1");
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.num_entities(), 1);
  EXPECT_EQ(store.EntitySurface(a), "ALM-1");
}

TEST(TripleStoreTest, FindEntityStatus) {
  TripleStore store;
  store.AddEntity("x");
  EXPECT_TRUE(store.FindEntity("x").ok());
  auto missing = store.FindEntity("y");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(TripleStoreTest, TripleDedup) {
  TripleStore store;
  const EntityId a = store.AddEntity("a");
  const EntityId b = store.AddEntity("b");
  const RelationId r = store.AddRelation("trigger");
  store.AddTriple(a, r, b);
  store.AddTriple(a, r, b);
  EXPECT_EQ(store.triples().size(), 1u);
  EXPECT_TRUE(store.HasTriple(a, r, b));
  EXPECT_FALSE(store.HasTriple(b, r, a));
}

TEST(TripleStoreTest, ObjectsAndSubjects) {
  TripleStore store;
  const EntityId a = store.AddEntity("a");
  const EntityId b = store.AddEntity("b");
  const EntityId c = store.AddEntity("c");
  const RelationId r = store.AddRelation("r");
  store.AddTriple(a, r, b);
  store.AddTriple(a, r, c);
  store.AddTriple(b, r, c);
  auto objects = store.Objects(a, r);
  EXPECT_EQ(objects.size(), 2u);
  auto subjects = store.Subjects(r, c);
  EXPECT_EQ(subjects.size(), 2u);
}

TEST(TripleStoreTest, TransitiveClosureOverSubclassOf) {
  TripleStore store;
  // leaf -> mid -> top, plus an unrelated node.
  const EntityId leaf = store.AddEntity("leaf");
  const EntityId mid = store.AddEntity("mid");
  const EntityId top = store.AddEntity("top");
  const EntityId other = store.AddEntity("other");
  const RelationId sub = store.AddRelation("subclassOf");
  store.AddTriple(leaf, sub, mid);
  store.AddTriple(mid, sub, top);
  auto ancestors = store.TransitiveObjects(leaf, sub);
  EXPECT_EQ(ancestors.size(), 2u);
  EXPECT_TRUE(store.Reaches(leaf, top, sub));
  EXPECT_FALSE(store.Reaches(leaf, other, sub));
  EXPECT_FALSE(store.Reaches(top, leaf, sub));
}

TEST(TripleStoreTest, TransitiveClosureHandlesCycles) {
  TripleStore store;
  const EntityId a = store.AddEntity("a");
  const EntityId b = store.AddEntity("b");
  const RelationId r = store.AddRelation("r");
  store.AddTriple(a, r, b);
  store.AddTriple(b, r, a);  // cycle must not loop forever
  auto closure = store.TransitiveObjects(a, r);
  // `start` itself is excluded even when re-reachable through the cycle.
  ASSERT_EQ(closure.size(), 1u);
  EXPECT_EQ(closure[0], b);
}

TEST(TripleStoreTest, PatternMatchAllCombinations) {
  TripleStore store;
  const EntityId a = store.AddEntity("a");
  const EntityId b = store.AddEntity("b");
  const RelationId r1 = store.AddRelation("r1");
  const RelationId r2 = store.AddRelation("r2");
  store.AddTriple(a, r1, b);
  store.AddTriple(b, r2, a);
  store.AddTriple(a, r2, b);
  EXPECT_EQ(store.Match(std::nullopt, std::nullopt, std::nullopt).size(), 3u);
  EXPECT_EQ(store.Match(a, std::nullopt, std::nullopt).size(), 2u);
  EXPECT_EQ(store.Match(std::nullopt, r2, std::nullopt).size(), 2u);
  EXPECT_EQ(store.Match(std::nullopt, std::nullopt, b).size(), 2u);
  EXPECT_EQ(store.Match(a, r2, b).size(), 1u);
  EXPECT_TRUE(store.Match(b, r1, a).empty());
}

TEST(TripleStoreTest, AttributesPerEntity) {
  TripleStore store;
  const EntityId a = store.AddEntity("ALM-1");
  const EntityId b = store.AddEntity("ALM-2");
  store.AddNumericAttribute(a, "count", 3.0f);
  store.AddNumericAttribute(a, "duration", 12.5f);
  store.AddNumericAttribute(b, "count", 1.0f);
  store.AddStringAttribute(a, "severity", "major");
  EXPECT_EQ(store.NumericAttributesOf(a).size(), 2u);
  EXPECT_EQ(store.NumericAttributesOf(b).size(), 1u);
  ASSERT_EQ(store.StringAttributesOf(a).size(), 1u);
  EXPECT_EQ(store.StringAttributesOf(a)[0].value, "major");
}

TEST(TripleStoreTest, QuadrupleStoresConfidenceAndTriple) {
  TripleStore store;
  const EntityId a = store.AddEntity("a");
  const EntityId b = store.AddEntity("b");
  const RelationId r = store.AddRelation("r");
  store.AddQuadruple(a, r, b, 0.8f);
  ASSERT_EQ(store.quadruples().size(), 1u);
  EXPECT_FLOAT_EQ(store.quadruples()[0].confidence, 0.8f);
  EXPECT_TRUE(store.HasTriple(a, r, b));
}

// --- NegativeSampler -------------------------------------------------------------

TEST(NegativeSamplerTest, AvoidsTrueTriplesAndIdentity) {
  TripleStore store;
  std::vector<EntityId> entities;
  for (int i = 0; i < 10; ++i) {
    entities.push_back(store.AddEntity("e" + std::to_string(i)));
  }
  const RelationId r = store.AddRelation("r");
  store.AddTriple(entities[0], r, entities[1]);
  store.AddTriple(entities[0], r, entities[2]);
  NegativeSampler sampler(store);
  Rng rng(1);
  const Triple pos{entities[0], r, entities[1]};
  for (int i = 0; i < 200; ++i) {
    const Triple neg = sampler.Corrupt(pos, /*corrupt_tail=*/true, rng);
    EXPECT_EQ(neg.head, pos.head);
    EXPECT_NE(neg.tail, pos.tail);
    EXPECT_FALSE(store.HasTriple(neg.head, neg.relation, neg.tail));
  }
  for (int i = 0; i < 200; ++i) {
    const Triple neg = sampler.Corrupt(pos, /*corrupt_tail=*/false, rng);
    EXPECT_EQ(neg.tail, pos.tail);
    EXPECT_NE(neg.head, pos.head);
  }
}

// --- TranslationalKge --------------------------------------------------------------

// A small chain KG: e0 -r-> e1 -r-> e2 ... plus distractor entities.
TripleStore ChainStore(int chain_len, int extra) {
  TripleStore store;
  for (int i = 0; i < chain_len + extra; ++i) {
    store.AddEntity("e" + std::to_string(i));
  }
  const RelationId r = store.AddRelation("next");
  for (int i = 0; i + 1 < chain_len; ++i) store.AddTriple(i, r, i + 1);
  return store;
}

std::vector<Quadruple> AllQuadruples(const TripleStore& store,
                                     float confidence = 1.0f) {
  std::vector<Quadruple> out;
  for (const Triple& t : store.triples()) {
    out.push_back({t.head, t.relation, t.tail, confidence});
  }
  return out;
}

TEST(KgeTest, TrainingReducesLoss) {
  TripleStore store = ChainStore(8, 4);
  Rng rng(2);
  KgeOptions options;
  options.dim = 16;
  options.epochs = 1;
  TranslationalKge kge(store.num_entities(), store.num_relations(), options,
                       rng);
  NegativeSampler sampler(store);
  auto facts = AllQuadruples(store);
  const float first = kge.TrainEpoch(facts, sampler, rng);
  float last = first;
  for (int e = 0; e < 60; ++e) last = kge.TrainEpoch(facts, sampler, rng);
  EXPECT_LT(last, first);
}

TEST(KgeTest, TruePositivesOutscoreCorruptions) {
  TripleStore store = ChainStore(8, 4);
  Rng rng(3);
  KgeOptions options;
  options.dim = 16;
  options.epochs = 120;
  TranslationalKge kge(store.num_entities(), store.num_relations(), options,
                       rng);
  NegativeSampler sampler(store);
  kge.Fit(AllQuadruples(store), sampler, rng);
  // Every true triple should beat most corruptions.
  int wins = 0, total = 0;
  for (const Triple& t : store.triples()) {
    for (int cand = 0; cand < store.num_entities(); ++cand) {
      if (cand == t.tail || store.HasTriple(t.head, t.relation, cand)) {
        continue;
      }
      ++total;
      wins += kge.Score(t.head, t.relation, t.tail) >
              kge.Score(t.head, t.relation, cand);
    }
  }
  EXPECT_GT(static_cast<double>(wins) / total, 0.8);
}

TEST(KgeTest, RankOfTailFindsTrueTail) {
  TripleStore store = ChainStore(8, 4);
  Rng rng(4);
  KgeOptions options;
  options.dim = 16;
  options.epochs = 150;
  TranslationalKge kge(store.num_entities(), store.num_relations(), options,
                       rng);
  NegativeSampler sampler(store);
  kge.Fit(AllQuadruples(store), sampler, rng);
  std::vector<EntityId> all;
  for (int i = 0; i < store.num_entities(); ++i) all.push_back(i);
  double mean_rank = 0;
  for (const Triple& t : store.triples()) {
    mean_rank += kge.RankOfTail(t.head, t.relation, t.tail, all);
  }
  mean_rank /= static_cast<double>(store.triples().size());
  EXPECT_LT(mean_rank, 4.0);  // 12 candidates; learned ranks should be low
}

TEST(KgeTest, ConfidenceScalesMarginPressure) {
  // With alpha=1, low-confidence facts exert a smaller margin; their
  // violation loss must be no larger than the same fact at confidence 1.
  TripleStore store = ChainStore(4, 2);
  Rng rng_a(5), rng_b(5);
  KgeOptions options;
  options.dim = 8;
  options.epochs = 1;
  options.confidence_alpha = 1.0f;
  TranslationalKge high(store.num_entities(), store.num_relations(), options,
                        rng_a);
  TranslationalKge low(store.num_entities(), store.num_relations(), options,
                       rng_b);
  NegativeSampler sampler(store);
  Rng train_a(6), train_b(6);
  const float loss_high =
      high.TrainEpoch(AllQuadruples(store, 1.0f), sampler, train_a);
  const float loss_low =
      low.TrainEpoch(AllQuadruples(store, 0.1f), sampler, train_b);
  EXPECT_LT(loss_low, loss_high);
}

TEST(KgeTest, AlphaZeroIgnoresConfidence) {
  TripleStore store = ChainStore(4, 2);
  KgeOptions options;
  options.dim = 8;
  options.confidence_alpha = 0.0f;
  Rng rng_a(7), rng_b(7);
  TranslationalKge a(store.num_entities(), store.num_relations(), options,
                     rng_a);
  TranslationalKge b(store.num_entities(), store.num_relations(), options,
                     rng_b);
  NegativeSampler sampler(store);
  Rng train_a(8), train_b(8);
  const float loss_a =
      a.TrainEpoch(AllQuadruples(store, 1.0f), sampler, train_a);
  const float loss_b =
      b.TrainEpoch(AllQuadruples(store, 0.2f), sampler, train_b);
  EXPECT_FLOAT_EQ(loss_a, loss_b);
}

TEST(KgeTest, InitializeEntitiesCopiesAndNormalizes) {
  TripleStore store = ChainStore(3, 0);
  Rng rng(9);
  KgeOptions options;
  options.dim = 4;
  TranslationalKge kge(store.num_entities(), store.num_relations(), options,
                       rng);
  std::vector<std::vector<float>> init = {
      {2, 0, 0, 0}, {0, 3, 0, 0}, {0, 0, 4, 0}};
  kge.InitializeEntities(init);
  // normalize_entities is on by default -> unit rows in given direction.
  EXPECT_NEAR(kge.entity_embedding(0)[0], 1.0f, 1e-5f);
  EXPECT_NEAR(kge.entity_embedding(1)[1], 1.0f, 1e-5f);
  EXPECT_NEAR(kge.entity_embedding(2)[2], 1.0f, 1e-5f);
}

TEST(KgeTest, DeterministicWithSeed) {
  TripleStore store = ChainStore(6, 2);
  KgeOptions options;
  options.dim = 8;
  options.epochs = 10;
  auto run = [&]() {
    Rng rng(10);
    TranslationalKge kge(store.num_entities(), store.num_relations(), options,
                         rng);
    NegativeSampler sampler(store);
    Rng train(11);
    kge.Fit(AllQuadruples(store), sampler, train);
    return kge.entity_embedding(0);
  };
  EXPECT_EQ(run(), run());
}

TEST(KgeTest, ScoreTailsMatchesScore) {
  TripleStore store = ChainStore(4, 0);
  Rng rng(12);
  KgeOptions options;
  options.dim = 8;
  TranslationalKge kge(store.num_entities(), store.num_relations(), options,
                       rng);
  std::vector<EntityId> candidates = {0, 1, 2, 3};
  auto scores = kge.ScoreTails(0, 0, candidates);
  ASSERT_EQ(scores.size(), 4u);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_FLOAT_EQ(scores[i], kge.Score(0, 0, candidates[i]));
  }
}

}  // namespace
}  // namespace kg
}  // namespace telekit

// End-to-end integration: synthetic world -> corpora -> tokenizer ->
// TeleBERT pre-training -> KTeleBERT re-training -> service vectors ->
// downstream task models. Uses a deliberately tiny configuration; asserts
// the pipeline's *mechanics* (shapes, flow, trainability), not benchmark
// quality.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model_zoo.h"
#include "eval/metrics.h"
#include "synth/task_data.h"
#include "tasks/eap.h"
#include "tasks/embed.h"
#include "tasks/fct.h"
#include "tasks/rca.h"

namespace telekit {
namespace {

core::ZooConfig IntegrationConfig() {
  core::ZooConfig config;
  config.seed = 4242;
  config.world.num_alarm_types = 20;
  config.world.num_kpi_types = 10;
  config.world.num_network_elements = 14;
  config.corpus.num_tele_sentences = 600;
  config.corpus.num_general_sentences = 600;
  config.num_episodes = 15;
  config.max_machine_logs = 100;
  config.max_triple_sentences = 60;
  config.max_ke_triples = 50;
  config.encoder.d_model = 32;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 64;
  config.pretrain.steps = 25;
  config.pretrain.batch_size = 6;
  config.retrain.total_steps = 25;
  config.retrain.batch_size = 4;
  config.anenc.num_layers = 1;
  config.anenc.ffn_dim = 32;
  config.cache_dir = "";
  return config;
}

core::ModelZoo& Zoo() {
  static core::ModelZoo* const kZoo = [] {
    auto* zoo = new core::ModelZoo(IntegrationConfig());
    zoo->Build();
    return zoo;
  }();
  return *kZoo;
}

TEST(IntegrationTest, RcaPipelineRuns) {
  core::ModelZoo& zoo = Zoo();
  synth::RcaDataGen gen(zoo.world(), zoo.log_generator());
  Rng rng(1);
  synth::RcaDataset dataset =
      gen.Generate(synth::RcaDataConfig{.num_graphs = 25}, rng);
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kKTeleBertStl);
  auto embeddings = tasks::EmbedSurfaces(service, dataset.feature_surfaces);
  ASSERT_EQ(embeddings.size(), dataset.feature_surfaces.size());
  tasks::RcaOptions options;
  options.epochs = 10;
  Rng cv_rng(2);
  tasks::RcaResult result =
      tasks::RunRcaCrossValidation(dataset, embeddings, options, cv_rng);
  EXPECT_GE(result.mean_rank, 1.0);
  EXPECT_GE(result.hits5, result.hits1);
  EXPECT_LE(result.hits5, 100.0);
}

TEST(IntegrationTest, EapPipelineRuns) {
  core::ModelZoo& zoo = Zoo();
  synth::EapDataGen gen(zoo.world(), zoo.log_generator());
  Rng rng(3);
  synth::EapDataset dataset =
      gen.Generate(synth::EapDataConfig{.num_packages = 25}, rng);
  ASSERT_GT(dataset.pairs.size(), 10u);
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  auto embeddings = tasks::EmbedSurfaces(service, dataset.event_surfaces);
  tasks::EapOptions options;
  options.epochs = 5;
  Rng cv_rng(4);
  tasks::EapResult result =
      tasks::RunEapCrossValidation(dataset, embeddings, options, cv_rng);
  EXPECT_GT(result.accuracy, 0.0);
  EXPECT_LE(result.accuracy, 100.0);
}

TEST(IntegrationTest, FctPipelineRunsWithServiceInit) {
  core::ModelZoo& zoo = Zoo();
  synth::FctDataGen gen(zoo.world(), zoo.log_generator());
  Rng rng(5);
  synth::FctDataset dataset =
      gen.Generate(synth::FctDataConfig{.num_chains = 60}, rng);
  ASSERT_FALSE(dataset.test.empty());
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kKTeleBertPmtl);
  auto embeddings = tasks::EmbedSurfaces(
      service, dataset.node_surfaces, core::ServiceMode::kOnlyName,
      /*whiten=*/false);
  ASSERT_EQ(static_cast<int>(embeddings[0].size()), 32);
  tasks::FctOptions options;
  options.kge.dim = 32;
  options.kge.epochs = 20;
  Rng fct_rng(6);
  tasks::FctResult result =
      tasks::RunFct(dataset, &embeddings, options, fct_rng);
  EXPECT_GE(result.mrr, 0.0);
  EXPECT_LE(result.hits10, 100.0);
}

TEST(IntegrationTest, NumericSlotsSurviveEndToEnd) {
  // A machine-log prompt flows: generator value -> normalizer -> [NUM]
  // slot -> ANEnc -> transformer -> service vector.
  core::ModelZoo& zoo = Zoo();
  const auto& kpi = zoo.world().kpis()[0];
  const float raw = kpi.baseline * 1.5f;
  const float normalized = zoo.normalizer().Normalize(kpi.name, raw);
  text::EncodedInput input = zoo.tokenizer().Encode(
      text::PromptBuilder().Kpi(kpi.name, normalized).Build());
  ASSERT_EQ(input.numeric_slots.size(), 1u);
  const auto& model = zoo.ktelebert(core::ModelKind::kKTeleBertStl);
  auto v1 = model.ServiceVector(input);
  // A different raw value must change the representation.
  text::EncodedInput input2 = zoo.tokenizer().Encode(
      text::PromptBuilder()
          .Kpi(kpi.name, zoo.normalizer().Normalize(kpi.name, kpi.baseline))
          .Build());
  auto v2 = model.ServiceVector(input2);
  EXPECT_NE(v1, v2);
}

TEST(IntegrationTest, KgAndCorpusShareSurfaces) {
  // The KG entity surfaces must tokenize through the same vocabulary the
  // corpus built — no entity should collapse entirely to [UNK].
  core::ModelZoo& zoo = Zoo();
  int unk_only = 0;
  for (int e = 0; e < zoo.store().num_entities(); ++e) {
    const auto ids =
        zoo.tokenizer().EncodeSentence(zoo.store().EntitySurface(e)).ids;
    bool all_unk = true;
    for (int id : ids) {
      if (id >= text::SpecialTokens::kFirstRegular) all_unk = false;
    }
    unk_only += all_unk;
  }
  EXPECT_EQ(unk_only, 0);
}

}  // namespace
}  // namespace telekit

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace telekit {
namespace tensor {
namespace {

// Convenience: random leaf with grad.
Tensor Leaf(const Shape& shape, uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(shape, rng, stddev, /*requires_grad=*/true);
}

// --- Hand-verified simple cases ----------------------------------------------

TEST(AutogradTest, SumBackwardIsOnes) {
  Tensor x = Tensor::FromData({3}, {1, 2, 3}, /*requires_grad=*/true);
  Sum(x).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(AutogradTest, MeanBackwardIsUniform) {
  Tensor x = Tensor::FromData({4}, {1, 2, 3, 4}, true);
  Mean(x).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 0.25f);
}

TEST(AutogradTest, ChainRuleThroughScale) {
  Tensor x = Tensor::FromData({2}, {3, 4}, true);
  // loss = sum(2x) -> d/dx = 2
  Sum(MulScalar(x, 2.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 2.0f);
}

TEST(AutogradTest, SquareGradient) {
  Tensor x = Tensor::FromData({2}, {3, -5}, true);
  Sum(Square(x)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -10.0f);
}

TEST(AutogradTest, SharedInputAccumulates) {
  Tensor x = Tensor::FromData({1}, {3}, true);
  // loss = x*x -> grad = 2x = 6
  Sum(Mul(x, x)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  Tensor x = Tensor::FromData({1}, {2}, true);
  Tensor a = MulScalar(x, 3.0f);
  Tensor b = Square(x);
  // loss = 3x + x^2 -> grad = 3 + 2x = 7
  Sum(Add(a, b)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 7.0f);
}

TEST(AutogradTest, NoGradLeafUntouched) {
  Tensor x = Tensor::FromData({2}, {1, 2}, true);
  Tensor c = Tensor::FromData({2}, {5, 5}, false);
  Sum(Mul(x, c)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
  EXPECT_TRUE(c.grad().empty());
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor x = Tensor::FromData({1}, {1}, true);
  Sum(MulScalar(x, 2.0f)).Backward();
  Sum(MulScalar(x, 3.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(AutogradTest, MatMulKnownGradient) {
  Tensor a = Tensor::FromData({1, 2}, {1, 2}, true);
  Tensor b = Tensor::FromData({2, 1}, {3, 4}, true);
  Sum(MatMul(a, b)).Backward();  // loss = 1*3 + 2*4
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 4.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.grad()[1], 2.0f);
}

TEST(AutogradTest, EmbeddingScatterAdd) {
  Tensor table = Tensor::Zeros({4, 2}, true);
  Tensor e = EmbeddingLookup(table, {1, 1, 3});
  Sum(e).Backward();
  // Row 1 referenced twice, row 3 once, rows 0/2 never.
  EXPECT_FLOAT_EQ(table.grad()[1 * 2 + 0], 2.0f);
  EXPECT_FLOAT_EQ(table.grad()[3 * 2 + 1], 1.0f);
  EXPECT_FLOAT_EQ(table.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(table.grad()[2 * 2], 0.0f);
}

// --- Finite-difference checks over every differentiable op ----------------------

TEST(GradCheckTest, MatMul) {
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(MatMul(in[0], in[1])));
  };
  auto result = CheckGradients(fn, {Leaf({3, 4}, 10), Leaf({4, 2}, 11)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, TransposeReshape) {
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Reshape(Transpose(in[0]), {6})));
  };
  auto result = CheckGradients(fn, {Leaf({2, 3}, 12)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, AddSubMulDivSameShape) {
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor d = Div(in[0], AddScalar(Square(in[1]), 1.0f));
    return Sum(Square(Add(Sub(in[0], in[1]), Mul(d, in[1]))));
  };
  auto result = CheckGradients(fn, {Leaf({2, 3}, 13), Leaf({2, 3}, 14)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, RowBroadcast) {
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Mul(Add(in[0], in[1]), in[1])));
  };
  auto result = CheckGradients(fn, {Leaf({3, 4}, 15), Leaf({4}, 16)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, ScalarBroadcast) {
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(Mul(in[0], in[1])));
  };
  auto result = CheckGradients(fn, {Leaf({2, 2}, 17), Leaf({1}, 18)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, Activations) {
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor h = Gelu(in[0]);
    h = Add(h, Relu(in[0]));
    h = Add(h, Tanh(in[0]));
    h = Add(h, Sigmoid(in[0]));
    return Sum(Square(h));
  };
  auto result = CheckGradients(fn, {Leaf({3, 3}, 19)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, ExpLogSqrtChain) {
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor positive = AddScalar(Square(in[0]), 0.5f);
    return Sum(Add(Log(positive), Sqrt(positive)));
  };
  auto result = CheckGradients(fn, {Leaf({4}, 20)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, LogSigmoid) {
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(LogSigmoid(in[0]));
  };
  auto result = CheckGradients(fn, {Leaf({5}, 21, 2.0f)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, SoftmaxComposite) {
  auto fn = [](const std::vector<Tensor>& in) {
    // Weighted sum distinguishes coordinates.
    Tensor w = Tensor::FromData({2, 4}, {1, 2, 3, 4, -1, 0, 1, 2});
    return Sum(Mul(Softmax(in[0]), w));
  };
  auto result = CheckGradients(fn, {Leaf({2, 4}, 22)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, LayerNormAllParams) {
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor w = Tensor::FromData({2, 4}, {1, -2, 3, 0.5, 2, 1, -1, 0});
    return Sum(Mul(LayerNorm(in[0], in[1], in[2]), w));
  };
  auto result = CheckGradients(
      fn, {Leaf({2, 4}, 23, 2.0f), Leaf({4}, 24), Leaf({4}, 25)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, ConcatAndSlice) {
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor cat = ConcatRows({in[0], in[1]});
    Tensor cols = ConcatCols({SliceRows(cat, 0, 2), SliceRows(cat, 2, 2)});
    return Sum(Square(SliceCols(cols, 1, 3)));
  };
  auto result = CheckGradients(fn, {Leaf({2, 3}, 26), Leaf({2, 3}, 27)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, ConcatVecAndRow) {
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor v = ConcatVec({Row(in[0], 0), Row(in[0], 1)});
    return Sum(Square(v));
  };
  auto result = CheckGradients(fn, {Leaf({2, 3}, 28)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, GatherRows) {
  auto fn = [](const std::vector<Tensor>& in) {
    return Sum(Square(GatherRows(in[0], {0, 2, 2, 1})));
  };
  auto result = CheckGradients(fn, {Leaf({3, 3}, 29)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, L2NormalizeRows) {
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor w = Tensor::FromData({2, 3}, {1, 2, 3, -1, 0, 2});
    return Sum(Mul(L2NormalizeRows(in[0]), w));
  };
  auto result = CheckGradients(fn, {Leaf({2, 3}, 30)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, MeanRowsSumCols) {
  auto fn = [](const std::vector<Tensor>& in) {
    return Add(Sum(Square(MeanRows(in[0]))),
               Sum(Square(SumCols(in[0]))));
  };
  auto result = CheckGradients(fn, {Leaf({3, 4}, 31)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, CrossEntropy) {
  auto fn = [](const std::vector<Tensor>& in) {
    return CrossEntropyWithLogits(in[0], {1, -1, 0});
  };
  auto result = CheckGradients(fn, {Leaf({3, 4}, 32)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, BceWithLogits) {
  auto fn = [](const std::vector<Tensor>& in) {
    return BceWithLogits(in[0], {1.0f, 0.0f, 1.0f, 0.0f});
  };
  auto result = CheckGradients(fn, {Leaf({4}, 33)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, LogisticLoss) {
  auto fn = [](const std::vector<Tensor>& in) {
    return LogisticLoss(in[0], {1.0f, -1.0f, -1.0f});
  };
  auto result = CheckGradients(fn, {Leaf({3}, 34)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, MseLoss) {
  auto fn = [](const std::vector<Tensor>& in) {
    return MseLoss(in[0], in[1]);
  };
  auto result = CheckGradients(fn, {Leaf({2, 3}, 35), Leaf({2, 3}, 36)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, DeepComposite) {
  // A miniature MLP end-to-end: checks interaction of many ops at once.
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor h = Gelu(MatMul(in[0], in[1]));
    Tensor g = Tensor::Ones({2});
    Tensor b = Tensor::Zeros({2});
    h = LayerNorm(h, g, b);
    Tensor logits = MatMul(h, in[2]);
    return CrossEntropyWithLogits(logits, {2, 0, 1});
  };
  auto result = CheckGradients(
      fn, {Leaf({3, 4}, 37), Leaf({4, 2}, 38), Leaf({2, 3}, 39)});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GradCheckTest, DropoutWithFixedSeedMask) {
  // Dropout gradients are checked with a deterministic mask by re-seeding
  // inside the closure so every evaluation sees the same mask.
  auto fn = [](const std::vector<Tensor>& in) {
    Rng rng(40);
    return Sum(Square(Dropout(in[0], 0.5f, rng, /*training=*/true)));
  };
  auto result = CheckGradients(fn, {Leaf({4, 4}, 41)});
  EXPECT_TRUE(result.passed) << result.detail;
}

}  // namespace
}  // namespace tensor
}  // namespace telekit

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "graph/gcn.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace telekit {
namespace graph {
namespace {

using tensor::Tensor;

TEST(AdjacencyTest, SelfLoopOnlyIsIdentity) {
  Graph g{.num_nodes = 3, .edges = {}};
  Tensor a = NormalizedAdjacency(g);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(a.at(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(AdjacencyTest, SymmetricAndNormalized) {
  Graph g{.num_nodes = 3, .edges = {{0, 1}, {1, 2}}};
  Tensor a = NormalizedAdjacency(g);
  // Symmetry.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(a.at(i, j), a.at(j, i));
  }
  // Node 1 has degree 3 (two edges + self-loop); nodes 0,2 degree 2.
  EXPECT_NEAR(a.at(0, 0), 1.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(a.at(1, 1), 1.0f / 3.0f, 1e-6f);
  EXPECT_NEAR(a.at(0, 1), 1.0f / std::sqrt(6.0f), 1e-6f);
  EXPECT_FLOAT_EQ(a.at(0, 2), 0.0f);  // not adjacent
}

TEST(AdjacencyTest, ParallelEdgesCollapse) {
  Graph g{.num_nodes = 2, .edges = {{0, 1}, {0, 1}, {1, 0}}};
  Tensor a = NormalizedAdjacency(g);
  // Same as a single edge: degree 2 each.
  EXPECT_NEAR(a.at(0, 1), 0.5f, 1e-6f);
}

TEST(AdjacencyTest, RowSumOneForRegularGraph) {
  // In a k-regular graph all degrees equal, rows sum to 1.
  Graph g{.num_nodes = 4, .edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
  Tensor a = NormalizedAdjacency(g);
  for (int i = 0; i < 4; ++i) {
    float row = 0;
    for (int j = 0; j < 4; ++j) row += a.at(i, j);
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(GcnLayerTest, OutputShapeAndRelu) {
  Rng rng(1);
  Graph g{.num_nodes = 3, .edges = {{0, 1}, {1, 2}}};
  Tensor a = NormalizedAdjacency(g);
  Tensor h = Tensor::Randn({3, 4}, rng);
  GcnLayer layer(4, 5, rng);
  Tensor out = layer.Forward(a, h, /*apply_relu=*/true);
  EXPECT_EQ(out.shape(), (tensor::Shape{3, 5}));
  for (float v : out.data()) EXPECT_GE(v, 0.0f);
}

TEST(GcnLayerTest, MessagePassingMixesNeighbors) {
  // With identity weights, a node's output depends on its neighbors.
  Rng rng(2);
  Graph connected{.num_nodes = 2, .edges = {{0, 1}}};
  Graph disconnected{.num_nodes = 2, .edges = {}};
  Tensor h = Tensor::FromData({2, 2}, {1, 0, 0, 1});
  GcnLayer layer(2, 2, rng);
  Tensor out_connected =
      layer.Forward(NormalizedAdjacency(connected), h, false);
  Tensor out_disconnected =
      layer.Forward(NormalizedAdjacency(disconnected), h, false);
  // Connectivity must change node 0's representation.
  bool differs = false;
  for (int j = 0; j < 2; ++j) {
    differs |= std::fabs(out_connected.at(0, j) -
                         out_disconnected.at(0, j)) > 1e-6f;
  }
  EXPECT_TRUE(differs);
}

TEST(GcnStackTest, DimsChainAndParams) {
  Rng rng(3);
  GcnStack stack({8, 16, 4}, rng);
  EXPECT_EQ(stack.num_layers(), 2);
  EXPECT_EQ(stack.Parameters().size(), 2u);
  Graph g{.num_nodes = 5, .edges = {{0, 1}, {2, 3}, {3, 4}}};
  Tensor a = NormalizedAdjacency(g);
  Tensor h = Tensor::Randn({5, 8}, rng);
  Tensor out = stack.Forward(a, h);
  EXPECT_EQ(out.shape(), (tensor::Shape{5, 4}));
}

TEST(GcnStackTest, GradientsFlowToAllLayers) {
  Rng rng(4);
  GcnStack stack({3, 6, 2}, rng);
  Graph g{.num_nodes = 4, .edges = {{0, 1}, {1, 2}, {2, 3}}};
  Tensor a = NormalizedAdjacency(g);
  Tensor h = Tensor::Randn({4, 3}, rng);
  Tensor loss = tensor::Sum(tensor::Square(stack.Forward(a, h)));
  loss.Backward();
  for (const Tensor& p : stack.Parameters()) {
    ASSERT_FALSE(p.grad().empty());
    float total = 0;
    for (float gv : p.grad()) total += std::fabs(gv);
    EXPECT_GT(total, 0.0f);
  }
}

TEST(GcnStackTest, GradCheckThroughStack) {
  Rng rng(5);
  Graph g{.num_nodes = 3, .edges = {{0, 1}, {1, 2}}};
  Tensor a = NormalizedAdjacency(g);
  auto fn = [&](const std::vector<Tensor>& in) {
    Tensor h1 = tensor::Relu(tensor::MatMul(tensor::MatMul(a, in[0]), in[1]));
    Tensor h2 = tensor::MatMul(tensor::MatMul(a, h1), in[2]);
    return tensor::Sum(tensor::Square(h2));
  };
  Rng leaf_rng(6);
  std::vector<Tensor> leaves = {
      Tensor::Randn({3, 4}, leaf_rng, 1.0f, true),
      Tensor::Randn({4, 5}, leaf_rng, 1.0f, true),
      Tensor::Randn({5, 2}, leaf_rng, 1.0f, true)};
  auto result = tensor::CheckGradients(fn, leaves);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(GcnStackTest, LearnsToSeparateTwoClusters) {
  // Two disconnected triangles; train a 2-layer GCN + logistic scores to
  // give cluster A positive and cluster B negative scores.
  Rng rng(7);
  Graph g{.num_nodes = 6,
          .edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}};
  Tensor a = NormalizedAdjacency(g);
  Tensor features = Tensor::FromData(
      {6, 2}, {1, 0, 0.9f, 0.1f, 1, 0.2f, 0, 1, 0.1f, 0.9f, 0.2f, 1});
  GcnStack stack({2, 8, 1}, rng);
  tensor::Adam opt(0.05f);
  opt.AddParameters(stack.Parameters());
  std::vector<float> labels = {1, 1, 1, -1, -1, -1};
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    Tensor scores = tensor::Reshape(stack.Forward(a, features), {6});
    tensor::LogisticLoss(scores, labels).Backward();
    opt.Step();
  }
  Tensor scores = tensor::Reshape(stack.Forward(a, features), {6});
  for (int i = 0; i < 3; ++i) EXPECT_GT(scores.at(static_cast<int64_t>(i)), 0.0f);
  for (int i = 3; i < 6; ++i) EXPECT_LT(scores.at(static_cast<int64_t>(i)), 0.0f);
}

}  // namespace
}  // namespace graph
}  // namespace telekit

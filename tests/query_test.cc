#include <gtest/gtest.h>

#include "kg/query.h"
#include "kg/store.h"

namespace telekit {
namespace kg {
namespace {

// A small KG: alarms trigger KPIs and each other; instanceOf classes.
struct Fixture {
  TripleStore store;
  EntityId alarm_a, alarm_b, kpi_x, kpi_y, alarm_class, kpi_class;
  RelationId trigger, affects, instance_of;

  Fixture() {
    alarm_a = store.AddEntity("alarm a");
    alarm_b = store.AddEntity("alarm b");
    kpi_x = store.AddEntity("kpi x");
    kpi_y = store.AddEntity("kpi y");
    alarm_class = store.AddEntity("Alarm");
    kpi_class = store.AddEntity("KPI");
    trigger = store.AddRelation("trigger");
    affects = store.AddRelation("affects");
    instance_of = store.AddRelation("instanceOf");
    store.AddTriple(alarm_a, trigger, alarm_b);
    store.AddTriple(alarm_a, affects, kpi_x);
    store.AddTriple(alarm_b, affects, kpi_y);
    store.AddTriple(alarm_a, instance_of, alarm_class);
    store.AddTriple(alarm_b, instance_of, alarm_class);
    store.AddTriple(kpi_x, instance_of, kpi_class);
    store.AddTriple(kpi_y, instance_of, kpi_class);
  }
};

Fixture& F() {
  static Fixture* const kFixture = new Fixture();
  return *kFixture;
}

// --- Parsing ---------------------------------------------------------------------

TEST(ParseQueryTest, BasicQuery) {
  auto q = ParseQuery("SELECT ?x WHERE { ?x trigger ?y }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select, std::vector<std::string>{"?x"});
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].subject, "?x");
  EXPECT_EQ(q->where[0].predicate, "trigger");
  EXPECT_EQ(q->where[0].object, "?y");
}

TEST(ParseQueryTest, MultiplePatternsAndVars) {
  auto q = ParseQuery(
      "SELECT ?a ?k WHERE { ?a trigger ?b . ?b affects ?k }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->where.size(), 2u);
}

TEST(ParseQueryTest, QuotedSurfaces) {
  auto q = ParseQuery("SELECT ?k WHERE { 'alarm a' affects ?k }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where[0].subject, "alarm a");
}

TEST(ParseQueryTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseQuery("select ?x where { ?x trigger ?y }").ok());
  EXPECT_TRUE(ParseQuery("Select ?x Where { ?x trigger ?y }").ok());
}

TEST(ParseQueryTest, Rejections) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("WHERE { ?x trigger ?y }").ok());
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?x trigger ?y }").ok());
  EXPECT_FALSE(ParseQuery("SELECT x WHERE { ?x trigger ?y }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x trigger }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x trigger ?y").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?z WHERE { ?x trigger ?y }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { 'unclosed affects ?x }").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?x WHERE { ?x trigger ?y ?x affects ?y }").ok());
}

// --- Execution --------------------------------------------------------------------

TEST(QueryEngineTest, SinglePatternBothVars) {
  QueryEngine engine(F().store);
  auto rows = engine.Execute("SELECT ?x ?y WHERE { ?x affects ?y }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(QueryEngineTest, ConcreteSubject) {
  QueryEngine engine(F().store);
  auto rows = engine.Execute("SELECT ?k WHERE { 'alarm a' affects ?k }");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].at("?k"), F().kpi_x);
}

TEST(QueryEngineTest, JoinAcrossPatterns) {
  // Which KPI is affected by something alarm a triggers? -> kpi y.
  QueryEngine engine(F().store);
  auto rows = engine.Execute(
      "SELECT ?k WHERE { 'alarm a' trigger ?b . ?b affects ?k }");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].at("?k"), F().kpi_y);
}

TEST(QueryEngineTest, TypedJoin) {
  // All alarms that affect something of class KPI.
  QueryEngine engine(F().store);
  auto rows = engine.Execute(
      "SELECT ?a WHERE { ?a affects ?k . ?k instanceOf KPI . "
      "?a instanceOf Alarm }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(QueryEngineTest, NoResults) {
  QueryEngine engine(F().store);
  auto rows = engine.Execute("SELECT ?x WHERE { 'kpi x' trigger ?x }");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(QueryEngineTest, UnknownSurfaceFails) {
  QueryEngine engine(F().store);
  auto rows = engine.Execute("SELECT ?x WHERE { 'nonexistent' trigger ?x }");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
}

TEST(QueryEngineTest, UnknownRelationFails) {
  QueryEngine engine(F().store);
  auto rows = engine.Execute("SELECT ?x WHERE { ?x frobnicates ?y }");
  EXPECT_FALSE(rows.ok());
}

TEST(QueryEngineTest, VariablePredicateRejected) {
  QueryEngine engine(F().store);
  auto rows = engine.Execute("SELECT ?x WHERE { ?x ?p ?y }");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, RepeatedVariableMustSelfAgree) {
  // Add a self-loop and check ?x trigger ?x matches only it.
  TripleStore store;
  const EntityId a = store.AddEntity("a");
  const EntityId b = store.AddEntity("b");
  const RelationId r = store.AddRelation("r");
  store.AddTriple(a, r, b);
  store.AddTriple(a, r, a);
  QueryEngine engine(store);
  auto rows = engine.Execute("SELECT ?x WHERE { ?x r ?x }");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].at("?x"), a);
}

TEST(QueryEngineTest, DistinctRows) {
  // alarm a affects kpi x; alarm a triggers alarm b — selecting only ?a
  // across a two-pattern product must deduplicate.
  QueryEngine engine(F().store);
  auto rows = engine.Execute(
      "SELECT ?a WHERE { ?a instanceOf Alarm . ?a affects ?k }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // alarm a, alarm b — each exactly once
}

}  // namespace
}  // namespace kg
}  // namespace telekit

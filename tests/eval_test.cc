#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "eval/metrics.h"

namespace telekit {
namespace eval {
namespace {

TEST(RankingTest, MeanRankAndMrr) {
  RankingAccumulator acc;
  acc.AddRank(1);
  acc.AddRank(2);
  acc.AddRank(4);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_NEAR(acc.MeanRank(), 7.0 / 3.0, 1e-9);
  EXPECT_NEAR(acc.MeanReciprocalRank(), (1.0 + 0.5 + 0.25) / 3.0, 1e-9);
}

TEST(RankingTest, HitsAtThresholds) {
  RankingAccumulator acc;
  for (double r : {1.0, 1.0, 3.0, 5.0, 10.0}) acc.AddRank(r);
  EXPECT_NEAR(acc.HitsAt(1), 40.0, 1e-9);
  EXPECT_NEAR(acc.HitsAt(3), 60.0, 1e-9);
  EXPECT_NEAR(acc.HitsAt(5), 80.0, 1e-9);
  EXPECT_NEAR(acc.HitsAt(10), 100.0, 1e-9);
  EXPECT_NEAR(acc.HitsAt(3, /*percent=*/false), 0.6, 1e-9);
}

TEST(RankingTest, FractionalTieRanksCount) {
  RankingAccumulator acc;
  acc.AddRank(1.5);  // tie between rank 1 and 2
  EXPECT_NEAR(acc.HitsAt(1), 0.0, 1e-9);
  EXPECT_NEAR(acc.HitsAt(2), 100.0, 1e-9);
}

TEST(ConfusionTest, PerfectClassifier) {
  BinaryConfusion c;
  c.Add(true, true);
  c.Add(false, false);
  EXPECT_NEAR(c.Accuracy(), 100.0, 1e-9);
  EXPECT_NEAR(c.Precision(), 100.0, 1e-9);
  EXPECT_NEAR(c.Recall(), 100.0, 1e-9);
  EXPECT_NEAR(c.F1(), 100.0, 1e-9);
}

TEST(ConfusionTest, KnownMix) {
  BinaryConfusion c;
  // 3 TP, 1 FP, 2 TN, 2 FN.
  for (int i = 0; i < 3; ++i) c.Add(true, true);
  c.Add(true, false);
  for (int i = 0; i < 2; ++i) c.Add(false, false);
  for (int i = 0; i < 2; ++i) c.Add(false, true);
  EXPECT_NEAR(c.Accuracy(), 100.0 * 5 / 8, 1e-9);
  EXPECT_NEAR(c.Precision(), 75.0, 1e-9);
  EXPECT_NEAR(c.Recall(), 60.0, 1e-9);
  EXPECT_NEAR(c.F1(), 2 * 75.0 * 60.0 / 135.0, 1e-9);
}

TEST(ConfusionTest, DegenerateNoPositivePredictions) {
  BinaryConfusion c;
  c.Add(false, true);
  c.Add(false, false);
  EXPECT_EQ(c.Precision(), 0.0);
  EXPECT_EQ(c.F1(), 0.0);
}

TEST(KFoldTest, PartitionCoversAllDisjointly) {
  Rng rng(1);
  auto folds = KFoldIndices(23, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<size_t> all;
  for (const auto& fold : folds) {
    for (size_t i : fold) EXPECT_TRUE(all.insert(i).second);
    // Balanced within one element.
    EXPECT_GE(fold.size(), 4u);
    EXPECT_LE(fold.size(), 5u);
  }
  EXPECT_EQ(all.size(), 23u);
}

TEST(KFoldTest, SplitSchemeMatchesPaper) {
  Rng rng(2);
  auto folds = KFoldIndices(25, 5, rng);
  KFoldSplit split = MakeSplit(folds, 2);
  EXPECT_EQ(split.test, folds[2]);
  EXPECT_EQ(split.valid, folds[3]);
  EXPECT_EQ(split.train.size(), 15u);
  // Wrap-around when test is the last fold.
  KFoldSplit wrap = MakeSplit(folds, 4);
  EXPECT_EQ(wrap.valid, folds[0]);
}

TEST(PcaTest, RecoversDominantAxis) {
  // Points along the x-axis in 4-D with small noise: the first component
  // must capture the x spread.
  Rng rng(3);
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 50; ++i) {
    const float x = static_cast<float>(i) / 10.0f;
    points.push_back({x, static_cast<float>(rng.Normal(0, 0.01)),
                      static_cast<float>(rng.Normal(0, 0.01)), 0.0f});
  }
  auto projected = PcaProject2d(points);
  ASSERT_EQ(projected.size(), 50u);
  // First coordinates should be monotone (up to sign) in i.
  std::vector<double> first;
  for (const auto& [x, y] : projected) first.push_back(x);
  std::vector<double> index(50);
  for (int i = 0; i < 50; ++i) index[static_cast<size_t>(i)] = i;
  EXPECT_GT(std::fabs(SpearmanCorrelation(first, index)), 0.99);
}

TEST(SpearmanTest, PerfectMonotone) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {10, 20, 30, 40, 50};
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-9);
  std::vector<double> c = {50, 40, 30, 20, 10};
  EXPECT_NEAR(SpearmanCorrelation(a, c), -1.0, 1e-9);
}

TEST(SpearmanTest, TiesHandled) {
  std::vector<double> a = {1, 2, 2, 3};
  std::vector<double> b = {1, 2, 2, 3};
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-9);
}

TEST(SpearmanTest, IndependentNearZero) {
  Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.Uniform());
    b.push_back(rng.Uniform());
  }
  EXPECT_LT(std::fabs(SpearmanCorrelation(a, b)), 0.12);
}

TEST(CosineTest, KnownValues) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity({1, 1}, {2, 2}), 1.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-9);
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace telekit

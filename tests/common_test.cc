#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "common/flag_parse.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace telekit {
namespace {

// --- Status ------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("must be positive");
  return x;
}

TEST(StatusOrTest, FunctionBoundaryConversions) {
  EXPECT_TRUE(ParsePositive(3).ok());
  EXPECT_FALSE(ParsePositive(-1).ok());
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanRoughlyHalf) {
  Rng rng(11);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.Uniform();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalShifted) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(19);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformIntTwoArg) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.UniformInt(10, 13);
    EXPECT_GE(v, 10);
    EXPECT_LT(v, 13);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 7);
    EXPECT_EQ(sample.size(), 7u);
    std::set<size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(43);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(55);
  Rng fork = a.Fork();
  // The fork differs from the parent's continued stream.
  EXPECT_NE(fork.NextU64(), a.NextU64());
}

// --- String utils ---------------------------------------------------------------

TEST(StringUtilTest, SplitDropsEmpty) {
  auto parts = SplitString("a,,b,c,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepEmpty) {
  auto parts = SplitStringKeepEmpty("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(pieces, "-"), "x-y-z");
  EXPECT_EQ(JoinStrings({}, "-"), "");
}

TEST(StringUtilTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("[ALM] foo", "[ALM]"));
  EXPECT_FALSE(StartsWith("x", "xy"));
  EXPECT_TRUE(EndsWith("alarm.log", ".log"));
  EXPECT_TRUE(Contains("lead to failure", "lead to"));
  EXPECT_FALSE(Contains("abc", "zzz"));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringUtilTest, ToLower) { EXPECT_EQ(ToLower("QoS-5G"), "qos-5g"); }

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
}

// --- TablePrinter -----------------------------------------------------------------

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table("Demo");
  table.SetHeader({"Method", "MR", "Hits@1"});
  table.AddRow({"Random", "2.47", "54.88"});
  table.AddRow("KTeleBERT", {2.02, 64.78});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Random"), std::string::npos);
  EXPECT_NE(out.find("64.78"), std::string::npos);
  EXPECT_NE(out.find("| Method"), std::string::npos);
}

// --- Strict flag/env parsing -------------------------------------------------

TEST(FlagParseTest, ParseInt64AcceptsPlainIntegers) {
  int64_t v = -1;
  EXPECT_TRUE(ParseInt64("8080", 0, 65535, &v));
  EXPECT_EQ(v, 8080);
  EXPECT_TRUE(ParseInt64("0", 0, 65535, &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("-3", -10, 10, &v));
  EXPECT_EQ(v, -3);
  EXPECT_TRUE(ParseInt64("+7", 0, 10, &v));
  EXPECT_EQ(v, 7);
}

TEST(FlagParseTest, ParseInt64RejectsMalformedInput) {
  int64_t v = 42;
  // Each rejected form that atoi silently mapped to 0 (or truncated).
  EXPECT_FALSE(ParseInt64("", 0, 100, &v));
  EXPECT_FALSE(ParseInt64("abc", 0, 100, &v));
  EXPECT_FALSE(ParseInt64("12x", 0, 100, &v));      // trailing garbage
  EXPECT_FALSE(ParseInt64("x12", 0, 100, &v));
  EXPECT_FALSE(ParseInt64(" 12", 0, 100, &v));      // leading whitespace
  EXPECT_FALSE(ParseInt64("12 ", 0, 100, &v));      // trailing whitespace
  EXPECT_FALSE(ParseInt64("1.5", 0, 100, &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999", 0, 100, &v));  // overflow
  EXPECT_FALSE(ParseInt64("101", 0, 100, &v));      // above range
  EXPECT_FALSE(ParseInt64("-1", 0, 100, &v));       // below range
  EXPECT_EQ(v, 42);  // untouched on every failure
}

TEST(FlagParseTest, ParseDoubleAcceptsNumbers) {
  double v = -1.0;
  EXPECT_TRUE(ParseDouble("2.5", 0.0, 10.0, &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(ParseDouble("1e3", 0.0, 1e6, &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_TRUE(ParseDouble("0", 0.0, 1.0, &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FlagParseTest, ParseDoubleRejectsMalformedInput) {
  double v = 42.0;
  EXPECT_FALSE(ParseDouble("", 0.0, 100.0, &v));
  EXPECT_FALSE(ParseDouble("abc", 0.0, 100.0, &v));
  EXPECT_FALSE(ParseDouble("1.5ms", 0.0, 100.0, &v));  // trailing garbage
  EXPECT_FALSE(ParseDouble(" 1.5", 0.0, 100.0, &v));
  EXPECT_FALSE(ParseDouble("nan", 0.0, 100.0, &v));
  EXPECT_FALSE(ParseDouble("inf", 0.0, 100.0, &v));
  EXPECT_FALSE(ParseDouble("1e999", 0.0, 100.0, &v));  // overflow
  EXPECT_FALSE(ParseDouble("101", 0.0, 100.0, &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(FlagParseDeathTest, IntFlagExits64NamingTheFlag) {
  EXPECT_EXIT(ParseIntFlagOrDie("vnodes", "abc", 1, 1 << 20),
              ::testing::ExitedWithCode(64), "bad value for --vnodes");
  EXPECT_EXIT(ParseIntFlagOrDie("port", "8080x", 0, 65535),
              ::testing::ExitedWithCode(64), "bad value for --port");
  EXPECT_EQ(ParseIntFlagOrDie("port", "8080", 0, 65535), 8080);
}

TEST(FlagParseDeathTest, DoubleFlagExits64NamingTheFlag) {
  EXPECT_EXIT(ParseDoubleFlagOrDie("deadline-ms", "fast", 0.0, 1e9),
              ::testing::ExitedWithCode(64), "bad value for --deadline-ms");
  EXPECT_DOUBLE_EQ(ParseDoubleFlagOrDie("deadline-ms", "250", 0.0, 1e9),
                   250.0);
}

TEST(FlagParseDeathTest, EnvVarExits64NamingTheVariable) {
  EXPECT_EXIT(ParseIntEnvOrDie("TELEKIT_COMPUTE_THREADS", "abc", 1, 4096),
              ::testing::ExitedWithCode(64),
              "bad value for TELEKIT_COMPUTE_THREADS");
  EXPECT_EXIT(ParseIntEnvOrDie("TELEKIT_COMPUTE_THREADS", nullptr, 1, 4096),
              ::testing::ExitedWithCode(64), "TELEKIT_COMPUTE_THREADS");
  EXPECT_EQ(ParseIntEnvOrDie("TELEKIT_COMPUTE_THREADS", "4", 1, 4096), 4);
}

}  // namespace
}  // namespace telekit

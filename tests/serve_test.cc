#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_zoo.h"
#include "core/qencode.h"
#include "obs/metrics.h"
#include "obs/spanstore.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/embedding_cache.h"
#include "serve/engine.h"
#include "serve/model_host.h"
#include "serve/ndjson_server.h"
#include "serve/protocol.h"
#include "tasks/scoring.h"
#include "tensor/compute_pool.h"

namespace telekit {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// EmbeddingCache
// ---------------------------------------------------------------------------

TEST(EmbeddingCacheTest, PutGetEvict) {
  EmbeddingCache cache(/*capacity=*/4, /*num_shards=*/1);
  for (uint64_t k = 0; k < 4; ++k) {
    cache.Put(k, {static_cast<float>(k)});
  }
  std::vector<float> out;
  ASSERT_TRUE(cache.Get(0, &out));
  EXPECT_EQ(out, std::vector<float>({0.0f}));
  // Key 0 is now MRU; inserting a 5th entry evicts the LRU tail (key 1).
  cache.Put(99, {99.0f});
  EXPECT_FALSE(cache.Get(1, &out));
  EXPECT_TRUE(cache.Get(0, &out));
  EXPECT_TRUE(cache.Get(99, &out));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(EmbeddingCacheTest, RefreshReplacesValue) {
  EmbeddingCache cache(4, 1);
  cache.Put(7, {1.0f});
  cache.Put(7, {2.0f});
  std::vector<float> out;
  ASSERT_TRUE(cache.Get(7, &out));
  EXPECT_EQ(out, std::vector<float>({2.0f}));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EmbeddingCacheTest, HashDependsOnIdsAndLength) {
  std::vector<int> a{5, 6, 7, 0, 0};
  std::vector<int> b{5, 6, 8, 0, 0};
  EXPECT_NE(EmbeddingCache::HashIds(a, 3), EmbeddingCache::HashIds(b, 3));
  // Padding beyond `length` is ignored...
  std::vector<int> c{5, 6, 7, 9, 9};
  EXPECT_EQ(EmbeddingCache::HashIds(a, 3), EmbeddingCache::HashIds(c, 3));
  // ...but the length itself is part of the key.
  EXPECT_NE(EmbeddingCache::HashIds(a, 3), EmbeddingCache::HashIds(a, 4));
}

TEST(EmbeddingCacheTest, SameLowHashDifferentHighDoesNotAlias) {
  // A 64-bit collision (same lo, different hi) must read as a miss, not
  // silently return the other input's vector.
  EmbeddingCache cache(8, 1);
  const CacheKey a{42, 1};
  const CacheKey b{42, 2};
  cache.Put(a, {1.0f});
  std::vector<float> out;
  EXPECT_FALSE(cache.Get(b, &out));
  ASSERT_TRUE(cache.Get(a, &out));
  EXPECT_EQ(out, std::vector<float>({1.0f}));
}

TEST(EmbeddingCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EmbeddingCache cache(64, 5);
  EXPECT_EQ(cache.num_shards(), 8);
}

// Hammer one cache from many threads; under TSan this is the memory-safety
// test, without it it still checks the accounting invariants.
TEST(EmbeddingCacheTest, ConcurrentMixedLoadKeepsInvariants) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr uint64_t kKeySpace = 96;
  EmbeddingCache cache(/*capacity=*/64, /*num_shards=*/8);
  std::atomic<uint64_t> gets{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &gets, t] {
      std::vector<float> out;
      uint64_t state = 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t key = (state >> 33) % kKeySpace;
        if ((state & 3) == 0) {
          cache.Put(key, {static_cast<float>(key)});
        } else {
          gets.fetch_add(1);
          if (cache.Get(key, &out)) {
            // A hit must return the value Put stored for this key.
            ASSERT_EQ(out.size(), 1u);
            ASSERT_EQ(out[0], static_cast<float>(key));
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_EQ(cache.hits() + cache.misses(), gets.load());
  EXPECT_GT(cache.hits(), 0u);
}

// ---------------------------------------------------------------------------
// MicroBatchQueue
// ---------------------------------------------------------------------------

TEST(MicroBatchQueueTest, CoalescesWaitingItems) {
  MicroBatchQueue<int> queue(
      {.capacity = 16, .max_batch = 4, .max_wait_us = 200000});
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.Push(std::move(i)));
  const std::vector<int> batch = queue.PopBatch();
  EXPECT_EQ(batch, std::vector<int>({0, 1, 2, 3}));
}

TEST(MicroBatchQueueTest, MaxWaitBoundsBatchLatency) {
  MicroBatchQueue<int> queue(
      {.capacity = 16, .max_batch = 8, .max_wait_us = 1000});
  int one = 1;
  EXPECT_TRUE(queue.Push(std::move(one)));
  const auto start = std::chrono::steady_clock::now();
  const std::vector<int> batch = queue.PopBatch();  // never fills to 8
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(MicroBatchQueueTest, BackpressureAndClose) {
  MicroBatchQueue<int> queue(
      {.capacity = 2, .max_batch = 2, .max_wait_us = 0});
  int v = 0;
  EXPECT_TRUE(queue.Push(std::move(v)));
  EXPECT_TRUE(queue.Push(std::move(v)));
  EXPECT_FALSE(queue.Push(std::move(v)));  // full
  queue.Close();
  EXPECT_FALSE(queue.Push(std::move(v)));  // closed
  EXPECT_EQ(queue.PopBatch().size(), 2u);  // drains after close
  EXPECT_TRUE(queue.PopBatch().empty());   // closed + drained
}

// Regression: with several consumers on trickle traffic, two consumers
// could pass the first wait on the same single item; the loser of the pop
// race then timed out over a drained-but-open queue and returned an empty
// batch, which callers treat as "closed" (ServeEngine workers exit on it).
TEST(MicroBatchQueueTest, EmptyPopMeansClosedUnderManyConsumers) {
  MicroBatchQueue<int> queue(
      {.capacity = 1024, .max_batch = 4, .max_wait_us = 300});
  std::atomic<bool> closing{false};
  std::atomic<int> popped{0};
  std::atomic<int> premature_empty{0};
  std::vector<std::thread> consumers;
  for (int t = 0; t < 4; ++t) {
    consumers.emplace_back([&] {
      while (true) {
        const std::vector<int> batch = queue.PopBatch();
        if (batch.empty()) {
          if (!closing.load()) premature_empty.fetch_add(1);
          return;
        }
        popped.fetch_add(static_cast<int>(batch.size()));
      }
    });
  }
  constexpr int kItems = 300;
  for (int i = 0; i < kItems; ++i) {
    int item = i;
    ASSERT_TRUE(queue.Push(std::move(item)));
    if (i % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  closing.store(true);
  queue.Close();
  for (auto& thread : consumers) thread.join();
  EXPECT_EQ(premature_empty.load(), 0);
  EXPECT_EQ(popped.load(), kItems);
}

TEST(MicroBatchQueueTest, DisabledBatchingPopsSingles) {
  MicroBatchQueue<int> queue({.capacity = 8,
                              .max_batch = 8,
                              .max_wait_us = 200000,
                              .enable_batching = false});
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.Push(std::move(i)));
  EXPECT_EQ(queue.PopBatch().size(), 1u);
  EXPECT_EQ(queue.PopBatch().size(), 1u);
}

// ---------------------------------------------------------------------------
// Scoring
// ---------------------------------------------------------------------------

TEST(ScoringTest, TopKByCosineRanksAndClamps) {
  std::vector<std::string> names{"a", "b", "c"};
  std::vector<std::vector<float>> embeddings{
      {1.0f, 0.0f}, {0.7f, 0.7f}, {-1.0f, 0.0f}};
  const std::vector<float> query{1.0f, 0.0f};
  auto top = tasks::TopKByCosine(query, names, embeddings, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "a");
  EXPECT_NEAR(top[0].score, 1.0f, 1e-6);
  EXPECT_EQ(top[1].name, "b");
  // k <= 0 returns the full ranking.
  EXPECT_EQ(tasks::TopKByCosine(query, names, embeddings, 0).size(), 3u);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(ProtocolTest, ParsesFullRequest) {
  Request request;
  const Status status = ParseRequestLine(
      R"({"op":"rca","text":"link down","mode":"entity_attr",)"
      R"("top_k":3,"deadline_ms":50})",
      &request);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(request.op, TaskOp::kRca);
  EXPECT_EQ(request.text, "link down");
  EXPECT_EQ(request.mode, core::ServiceMode::kEntityWithAttr);
  EXPECT_EQ(request.top_k, 3);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 50.0);
}

TEST(ProtocolTest, RejectsBadRequests) {
  Request request;
  EXPECT_FALSE(ParseRequestLine("not json", &request).ok());
  EXPECT_FALSE(ParseRequestLine("[1,2]", &request).ok());
  EXPECT_FALSE(ParseRequestLine(R"({"op":"rca"})", &request).ok());
  EXPECT_FALSE(ParseRequestLine(R"({"text":""})", &request).ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"nope","text":"x"})", &request).ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"text":"x","deadline_ms":-1})", &request).ok());
}

TEST(ProtocolTest, ResponseRoundTripsThroughJson) {
  Request request;
  request.op = TaskOp::kEap;
  Response response;
  response.results.push_back({"alarm A", 0.75f});
  response.batch_size = 4;
  response.cache_hit = true;
  obs::JsonValue id(std::string("req-1"));
  const obs::JsonValue json = ResponseToJson(request, response, &id);
  EXPECT_TRUE(json.Find("ok")->AsBool());
  EXPECT_EQ(json.Find("id")->AsString(), "req-1");
  EXPECT_EQ(json.Find("op")->AsString(), "eap");
  EXPECT_EQ(json.Find("results")->size(), 1u);
  EXPECT_TRUE(json.Find("cache_hit")->AsBool());

  Response failed;
  failed.status = Status::DeadlineExceeded("late");
  const obs::JsonValue error = ResponseToJson(request, failed, nullptr);
  EXPECT_FALSE(error.Find("ok")->AsBool());
  EXPECT_EQ(error.Find("error")->Find("message")->AsString(), "late");
}

TEST(ProtocolTest, ParsesTraceField) {
  Request request;
  // Hex string: supplies the id and opts into timing echo.
  ASSERT_TRUE(
      ParseRequestLine(R"({"text":"x","trace":"deadbeef"})", &request).ok());
  EXPECT_EQ(request.trace_id, 0xdeadbeefu);
  EXPECT_TRUE(request.echo_timing);
  // Boolean true: server assigns the id, timing still echoed.
  ASSERT_TRUE(ParseRequestLine(R"({"text":"x","trace":true})", &request).ok());
  EXPECT_EQ(request.trace_id, 0u);
  EXPECT_TRUE(request.echo_timing);
  ASSERT_TRUE(
      ParseRequestLine(R"({"text":"x","trace":false})", &request).ok());
  EXPECT_FALSE(request.echo_timing);
  // Anything else is a protocol error.
  EXPECT_FALSE(
      ParseRequestLine(R"({"text":"x","trace":"zz"})", &request).ok());
  EXPECT_FALSE(ParseRequestLine(R"({"text":"x","trace":12})", &request).ok());
}

TEST(ProtocolTest, ParsesParentSpanField) {
  Request request;
  // The router's per-attempt hop span, parenting this replica's spans.
  ASSERT_TRUE(
      ParseRequestLine(R"({"text":"x","parent_span":"beef"})", &request)
          .ok());
  EXPECT_EQ(request.parent_span, 0xbeefu);
  // Absent or null: this process is the trace root.
  ASSERT_TRUE(ParseRequestLine(R"({"text":"x"})", &request).ok());
  EXPECT_EQ(request.parent_span, 0u);
  ASSERT_TRUE(
      ParseRequestLine(R"({"text":"x","parent_span":null})", &request).ok());
  EXPECT_EQ(request.parent_span, 0u);
  EXPECT_FALSE(
      ParseRequestLine(R"({"text":"x","parent_span":"zz"})", &request).ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"text":"x","parent_span":7})", &request).ok());
}

TEST(ProtocolTest, ResponsesEchoTraceOnEveryPath) {
  Request request;
  request.op = TaskOp::kEncode;
  Response response;
  response.trace_id = 0xabcu;
  response.vector = {1.0f};

  // Success path: trace rides as a 16-hex-digit string.
  const obs::JsonValue ok = ResponseToJson(request, response, nullptr);
  EXPECT_EQ(ok.Find("trace")->AsString(), "0000000000000abc");
  EXPECT_EQ(ok.Find("timing"), nullptr);  // not requested

  // Timing echo, opt-in via the request.
  request.echo_timing = true;
  response.queue_ms = 1.5;
  response.batch_ms = 2.0;
  response.encode_ms = 1.0;
  response.score_ms = 0.25;
  response.total_ms = 4.0;
  const obs::JsonValue timed = ResponseToJson(request, response, nullptr);
  const obs::JsonValue* timing = timed.Find("timing");
  ASSERT_NE(timing, nullptr);
  EXPECT_DOUBLE_EQ(timing->Find("queue_us")->AsNumber(), 1500.0);
  EXPECT_DOUBLE_EQ(timing->Find("batch_us")->AsNumber(), 2000.0);
  EXPECT_DOUBLE_EQ(timing->Find("encode_us")->AsNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(timing->Find("score_us")->AsNumber(), 250.0);
  EXPECT_DOUBLE_EQ(timing->Find("total_us")->AsNumber(), 4000.0);

  // Engine error path: trace (and requested timing) still come back.
  Response failed;
  failed.trace_id = 0xdeadbeefu;
  failed.status = Status::DeadlineExceeded("late");
  failed.queue_ms = 3.0;
  failed.total_ms = 3.0;
  const obs::JsonValue error = ResponseToJson(request, failed, nullptr);
  EXPECT_FALSE(error.Find("ok")->AsBool());
  EXPECT_EQ(error.Find("trace")->AsString(), "00000000deadbeef");
  ASSERT_NE(error.Find("timing"), nullptr);
  EXPECT_DOUBLE_EQ(error.Find("timing")->Find("queue_us")->AsNumber(),
                   3000.0);

  // Parse-failure path: a salvaged trace id is echoed, absence is null.
  const obs::JsonValue with_trace =
      ErrorToJson(Status::InvalidArgument("bad"), nullptr, 0x12u);
  EXPECT_EQ(with_trace.Find("trace")->AsString(), "0000000000000012");
  const obs::JsonValue without_trace =
      ErrorToJson(Status::InvalidArgument("bad"), nullptr);
  EXPECT_TRUE(without_trace.Find("trace")->is_null());
  EXPECT_TRUE(without_trace.Find("id")->is_null());
}

// ---------------------------------------------------------------------------
// Batched-forward determinism + engine end-to-end (shared tiny zoo)
// ---------------------------------------------------------------------------

core::ZooConfig TinyServeConfig() {
  core::ZooConfig config;
  config.seed = 777;
  config.world.num_alarm_types = 16;
  config.world.num_kpi_types = 8;
  config.world.num_network_elements = 12;
  config.corpus.num_tele_sentences = 400;
  config.corpus.num_general_sentences = 400;
  config.num_episodes = 10;
  config.max_machine_logs = 60;
  config.max_triple_sentences = 40;
  config.max_ke_triples = 30;
  config.encoder.d_model = 32;
  config.encoder.num_heads = 2;
  config.encoder.num_layers = 2;
  config.encoder.ffn_dim = 64;
  config.pretrain.steps = 8;
  config.pretrain.batch_size = 4;
  config.retrain.total_steps = 8;
  config.retrain.batch_size = 4;
  config.retrain.ke_batch_size = 2;
  config.anenc.num_layers = 1;
  config.anenc.num_meta = 4;
  config.anenc.ffn_dim = 32;
  config.cache_dir = "";
  return config;
}

// One fully-built zoo shared by every test below (magic static: built on
// first use, concurrently-safe). shared_ptr-backed so the model-host tests
// can hand it to BuildModelBundle without a second build.
std::shared_ptr<core::ModelZoo> SharedZooPtr() {
  static std::shared_ptr<core::ModelZoo>* zoo = [] {
    auto z = std::make_shared<core::ModelZoo>(TinyServeConfig());
    z->Build();
    return new std::shared_ptr<core::ModelZoo>(std::move(z));
  }();
  return *zoo;
}

const core::ModelZoo& SharedZoo() { return *SharedZooPtr(); }

double MaxAbsDiff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) -
                                     static_cast<double>(b[i])));
  }
  return worst;
}

TEST(BatchedForwardTest, TeleBertBatchMatchesSingle) {
  const core::ModelZoo& zoo = SharedZoo();
  const core::TeleBert& model = zoo.telebert();
  const auto& inputs = zoo.retrain_data().causal_sentences;
  ASSERT_GE(inputs.size(), 5u);
  std::vector<const text::EncodedInput*> batch;
  for (size_t i = 0; i < 5; ++i) batch.push_back(&inputs[i]);
  const auto batched = model.ServiceVectorBatch(batch);
  ASSERT_EQ(batched.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_LE(MaxAbsDiff(batched[i], model.ServiceVector(inputs[i])), 1e-5)
        << "sequence " << i;
  }
}

TEST(BatchedForwardTest, KTeleBertBatchMatchesSingleWithNumericSlots) {
  const core::ModelZoo& zoo = SharedZoo();
  const core::KTeleBert& model = zoo.ktelebert(core::ModelKind::kKTeleBertStl);
  const auto& logs = zoo.retrain_data().machine_logs;
  ASSERT_GE(logs.size(), 4u);
  bool covered_numeric = false;
  std::vector<const text::EncodedInput*> batch;
  for (size_t i = 0; i < 4; ++i) {
    batch.push_back(&logs[i]);
    covered_numeric |= !logs[i].numeric_slots.empty();
  }
  EXPECT_TRUE(covered_numeric) << "machine logs should carry numeric slots";
  const auto batched = model.ServiceVectorBatch(batch);
  ASSERT_EQ(batched.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_LE(MaxAbsDiff(batched[i], model.ServiceVector(logs[i])), 1e-5)
        << "sequence " << i;
  }
}

TEST(BatchedForwardTest, ServiceEncoderBatchMatchesSingle) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  std::vector<std::string> names;
  for (size_t i = 0; i < 6; ++i) names.push_back(zoo.world().alarms()[i].name);
  for (core::ServiceMode mode :
       {core::ServiceMode::kOnlyName, core::ServiceMode::kEntityNoAttr,
        core::ServiceMode::kEntityWithAttr}) {
    const auto batched = service.EncodeBatch(names, mode);
    ASSERT_EQ(batched.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i) {
      EXPECT_LE(MaxAbsDiff(batched[i], service.Encode(names[i], mode)), 1e-5);
    }
  }
}

// The batched encoder path must produce bit-identical embeddings whether the
// ComputePool runs serial or with 4 workers, and still agree with the
// single-sequence path under threads > 1.
TEST(BatchedForwardTest, EncodeInputsBitIdenticalAcrossComputeThreads) {
  const core::ModelZoo& zoo = SharedZoo();
  const core::TeleBert& model = zoo.telebert();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  const auto& inputs = zoo.retrain_data().causal_sentences;
  ASSERT_GE(inputs.size(), 5u);
  std::vector<const text::EncodedInput*> batch;
  for (size_t i = 0; i < 5; ++i) batch.push_back(&inputs[i]);

  const int previous = tensor::ComputeThreads();
  tensor::SetComputeThreads(1);
  const auto serial = service.EncodeInputs(batch);
  ASSERT_EQ(serial.size(), 5u);

  tensor::SetComputeThreads(4);
  const auto parallel = service.EncodeInputs(batch);
  ASSERT_EQ(parallel.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    // Determinism contract: the fixed chunk grid makes the parallel batched
    // forward bit-identical to the serial one, not merely close.
    EXPECT_EQ(parallel[i], serial[i]) << "sequence " << i;
    // And the batched path still agrees with the single-sequence path.
    EXPECT_LE(MaxAbsDiff(parallel[i], model.ServiceVector(inputs[i])), 1e-5)
        << "sequence " << i;
  }
  tensor::SetComputeThreads(previous);
}

TEST(ServeEngineTest, EndToEndMixedOps) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 4;
  options.max_batch = 4;
  options.max_wait_us = 1000;
  ServeEngine engine(&service, options);
  std::vector<std::string> names;
  for (const auto& alarm : zoo.world().alarms()) names.push_back(alarm.name);
  ASSERT_TRUE(engine.LoadCatalog(TaskOp::kRca, names).ok());
  ASSERT_TRUE(engine.LoadCatalog(TaskOp::kEap, names).ok());
  EXPECT_EQ(engine.CatalogSize(TaskOp::kRca), names.size());
  EXPECT_EQ(engine.CatalogSize(TaskOp::kFct), 0u);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 24; ++i) {
    Request request;
    request.op = (i % 3 == 0) ? TaskOp::kEncode
                              : (i % 3 == 1 ? TaskOp::kRca : TaskOp::kEap);
    request.text = names[static_cast<size_t>(i) % 6];
    request.top_k = 3;
    futures.push_back(engine.Submit(request));
  }
  int cache_hits = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    if (i % 3 == 0) {
      EXPECT_EQ(static_cast<int>(response.vector.size()), service.dim());
    } else {
      ASSERT_EQ(response.results.size(), 3u);
      // The query text is itself a catalogue entry: it must rank first.
      EXPECT_EQ(response.results[0].name, names[i % 6]);
      EXPECT_GT(response.results[0].score, 0.99f);
    }
    EXPECT_GE(response.batch_size, 1);
    cache_hits += response.cache_hit ? 1 : 0;
  }
  // LoadCatalog warmed the cache, and the 24 requests reuse 6 texts.
  EXPECT_GT(cache_hits, 0);
  EXPECT_GT(engine.cache().hits(), 0u);

  // Tasks without a catalogue fail cleanly.
  Request fct;
  fct.op = TaskOp::kFct;
  fct.text = names[0];
  EXPECT_EQ(engine.Submit(fct).get().status.code(),
            StatusCode::kFailedPrecondition);
}

// Reloading one op's catalogue while requests for another op are in
// flight is allowed by the engine contract; under TSan this test is the
// data-race check for the catalogue map, without it it checks results
// stay coherent.
TEST(ServeEngineTest, CatalogReloadDuringTraffic) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  options.max_wait_us = 500;
  ServeEngine engine(&service, options);
  std::vector<std::string> names;
  for (const auto& alarm : zoo.world().alarms()) names.push_back(alarm.name);
  ASSERT_TRUE(engine.LoadCatalog(TaskOp::kRca, names).ok());

  std::thread reloader([&] {
    for (int round = 0; round < 4; ++round) {
      ASSERT_TRUE(engine.LoadCatalog(TaskOp::kEap, names).ok());
    }
  });
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 16; ++i) {
    Request request;
    request.op = TaskOp::kRca;
    request.text = names[static_cast<size_t>(i) % names.size()];
    request.top_k = 2;
    futures.push_back(engine.Submit(request));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_EQ(response.results.size(), 2u);
    EXPECT_EQ(response.results[0].name, names[i % names.size()]);
  }
  reloader.join();
  EXPECT_EQ(engine.CatalogSize(TaskOp::kEap), names.size());
}

TEST(ServeEngineTest, ProcessMatchesSubmit) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 2;
  options.enable_cache = false;  // force real forwards on both paths
  ServeEngine engine(&service, options);
  Request request;
  request.op = TaskOp::kEncode;
  request.text = zoo.world().alarms()[2].name;
  const Response sync = engine.Process(request);
  const Response queued = engine.Submit(request).get();
  ASSERT_TRUE(sync.status.ok());
  ASSERT_TRUE(queued.status.ok());
  EXPECT_LE(MaxAbsDiff(sync.vector, queued.vector), 1e-5);
}

// Every completed request leaves a "serve/request" span (plus stage
// children) in the process-global SpanStore, parented to the caller's hop
// span — that is what the router's /tracezd assembler stitches into the
// cross-process tree.
TEST(ServeEngineTest, RecordsSpansParentedToCallerHop) {
  obs::SpanStore::Global().Reset();
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 1;
  options.enable_cache = false;
  ServeEngine engine(&service, options);
  Request request;
  request.op = TaskOp::kEncode;
  request.text = zoo.world().alarms()[0].name;
  request.trace_id = 0x1234u;
  request.parent_span = 0x99u;
  const Response response = engine.Process(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();

  const std::vector<obs::SpanRecord> spans =
      obs::SpanStore::Global().Query(0x1234u);
  ASSERT_FALSE(spans.empty());
  const obs::SpanRecord* root = nullptr;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "serve/request") root = &span;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_span, 0x99u);
  EXPECT_TRUE(root->ok);
  EXPECT_EQ(root->outcome, "ok");
  EXPECT_GT(root->dur_us, 0u);
  // Stage children hang off the serve root and start inside its window.
  int children = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "serve/request") continue;
    EXPECT_EQ(span.parent_span, root->span_id) << span.name;
    EXPECT_GE(span.start_unix_us, root->start_unix_us - 1.0) << span.name;
    EXPECT_LE(span.start_unix_us + static_cast<double>(span.dur_us),
              root->start_unix_us + static_cast<double>(root->dur_us) + 1.0)
        << span.name;
    ++children;
  }
  EXPECT_GE(children, 1);  // a real forward always spends encode time
  obs::SpanStore::Global().Reset();
}

TEST(ServeEngineTest, BackpressureRejectsWhenQueueFull) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 0;  // nothing drains the queue
  options.queue_capacity = 2;
  ServeEngine engine(&service, options);
  Request request;
  request.text = zoo.world().alarms()[0].name;
  auto f1 = engine.Submit(request);
  auto f2 = engine.Submit(request);
  auto f3 = engine.Submit(request);  // over capacity: rejected immediately
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f3.get().status.code(), StatusCode::kUnavailable);
  engine.Stop();  // fails the two queued requests
  EXPECT_EQ(f1.get().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(f2.get().status.code(), StatusCode::kUnavailable);
  // Submitting after Stop is rejected, not lost.
  EXPECT_EQ(engine.Submit(request).get().status.code(),
            StatusCode::kUnavailable);
}

TEST(ServeEngineTest, LapsedDeadlineFailsBeforeEncoding) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 0;
  ServeEngine engine(&service, options);
  Request request;
  request.text = zoo.world().alarms()[0].name;
  request.deadline_ms = 1e-6;  // lapses immediately
  auto future = engine.Submit(request);
  // Give the deadline time to pass, then start a worker-equivalent drain by
  // stopping: Stop() fails queued requests as Unavailable, but a live
  // worker fails them as DeadlineExceeded — simulate that path directly.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  engine.Stop();
  const Response response = future.get();
  EXPECT_FALSE(response.status.ok());
}

TEST(ServeEngineTest, DeadlineExceededThroughWorker) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 1;
  options.enable_batching = true;
  options.max_batch = 4;
  options.max_wait_us = 20000;  // let requests sit long enough to lapse
  ServeEngine engine(&service, options);
  Request request;
  request.text = zoo.world().alarms()[1].name;
  request.deadline_ms = 1e-6;
  const Response response = engine.Submit(request).get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.vector.empty());
}

TEST(ServeEngineTest, TraceIdsCorrelateRequestAndResponse) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 2;
  ServeEngine engine(&service, options);

  // Caller-supplied id comes back verbatim on the happy path.
  Request request;
  request.op = TaskOp::kEncode;
  request.text = zoo.world().alarms()[0].name;
  request.trace_id = 0x1234u;
  EXPECT_EQ(engine.Submit(request).get().trace_id, 0x1234u);
  // Absent id: the engine assigns one (Submit and Process both).
  request.trace_id = 0;
  EXPECT_NE(engine.Submit(request).get().trace_id, 0u);
  EXPECT_NE(engine.Process(request).trace_id, 0u);

  // Engine-failure paths still carry the id.
  Request fct;
  fct.op = TaskOp::kFct;  // no catalogue loaded
  fct.text = request.text;
  fct.trace_id = 0x77u;
  const Response failed = engine.Submit(fct).get();
  EXPECT_FALSE(failed.status.ok());
  EXPECT_EQ(failed.trace_id, 0x77u);
}

TEST(ServeEngineTest, RejectionPathsEchoTraceId) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 0;  // nothing drains the queue
  options.queue_capacity = 1;
  ServeEngine engine(&service, options);
  Request request;
  request.text = zoo.world().alarms()[0].name;
  request.trace_id = 0xa1u;
  auto queued = engine.Submit(request);
  request.trace_id = 0xa2u;
  auto rejected = engine.Submit(request);  // over capacity
  const Response rejected_response = rejected.get();
  EXPECT_EQ(rejected_response.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rejected_response.trace_id, 0xa2u);
  engine.Stop();  // fails the queued request as Unavailable
  const Response stopped_response = queued.get();
  EXPECT_EQ(stopped_response.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(stopped_response.trace_id, 0xa1u);
}

TEST(ServeEngineTest, StageTimingsAndSlowRequestCapture) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  obs::SlowTraceRing::Global().Reset();
  EngineOptions options;
  options.num_workers = 2;
  options.enable_cache = false;        // force real encode time
  options.slow_request_ms = 1e-6;      // everything counts as slow
  ServeEngine engine(&service, options);

  Request request;
  request.op = TaskOp::kEncode;
  request.text = zoo.world().alarms()[3].name;
  request.trace_id = 0xfeedu;
  const Response response = engine.Submit(request).get();
  ASSERT_TRUE(response.status.ok());
  // Stage timings are filled and consistent: the batch covers encode and
  // scoring, and the total covers the queue plus the batch.
  EXPECT_GT(response.batch_ms, 0.0);
  EXPECT_GT(response.encode_ms, 0.0);
  EXPECT_GE(response.batch_ms, response.score_ms);
  EXPECT_GE(response.total_ms, response.queue_ms);
  EXPECT_GE(response.total_ms, response.batch_ms);

  // The slow-request threshold routed it into the global ring.
  EXPECT_GE(obs::SlowTraceRing::Global().total_recorded(), 1u);
  bool found = false;
  for (const obs::RequestTrace& trace :
       obs::SlowTraceRing::Global().Snapshot()) {
    if (trace.trace_id == 0xfeedu) {
      found = true;
      EXPECT_EQ(trace.op, "encode");
      EXPECT_TRUE(trace.ok);
      EXPECT_GT(trace.total_us, 0u);
    }
  }
  EXPECT_TRUE(found);
  obs::SlowTraceRing::Global().Reset();
}

TEST(ServeEngineTest, GetStatsReflectsQueueAndCache) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 0;  // queue state is fully deterministic
  options.queue_capacity = 2;
  ServeEngine engine(&service, options);
  EngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.queue_capacity, 2u);
  EXPECT_EQ(stats.num_workers, 0);
  EXPECT_EQ(stats.busy_workers, 0);
  EXPECT_FALSE(stats.saturated);

  Request request;
  request.text = zoo.world().alarms()[0].name;
  auto f1 = engine.Submit(request);
  auto f2 = engine.Submit(request);
  stats = engine.GetStats();
  EXPECT_EQ(stats.queue_depth, 2u);
  EXPECT_TRUE(stats.saturated);  // the next Submit would be rejected
  engine.Stop();
  f1.get();
  f2.get();
}

// ---------------------------------------------------------------------------
// Concurrency satellites: tokenizer + ModelZoo single-flight
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, TokenizerEncodesConcurrently) {
  const core::ModelZoo& zoo = SharedZoo();
  const text::Tokenizer& tokenizer = zoo.tokenizer();
  std::vector<std::string> sentences;
  for (size_t i = 0; i < 8; ++i) {
    sentences.push_back(zoo.world().alarms()[i].name);
  }
  std::vector<text::EncodedInput> reference;
  for (const auto& s : sentences) {
    reference.push_back(tokenizer.EncodeSentence(s));
  }
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 200; ++round) {
        const size_t i = static_cast<size_t>(t + round) % sentences.size();
        const text::EncodedInput got = tokenizer.EncodeSentence(sentences[i]);
        if (got.ids != reference[i].ids ||
            got.length != reference[i].length) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ModelZooBuildSingleFlights) {
  core::ZooConfig config = TinyServeConfig();
  config.pretrain.steps = 2;
  core::ModelZoo zoo(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&zoo] { zoo.BuildPretrained(); });
  }
  for (auto& thread : threads) thread.join();
  // All callers observe one materialized stack.
  const auto* world = &zoo.world();
  const auto* model = &zoo.telebert();
  zoo.BuildPretrained();  // idempotent re-entry
  EXPECT_EQ(world, &zoo.world());
  EXPECT_EQ(model, &zoo.telebert());
  EXPECT_GT(zoo.tokenizer().vocab().size(), 0u);
}

// ---------------------------------------------------------------------------
// Model host: variant table, generation bumps, zero-drop hot swap
// ---------------------------------------------------------------------------

TEST(ModelHostTest, ServeModelNameRoundTrips) {
  const std::vector<std::string> names = {"telebert", "ktelebert_stl",
                                          "ktelebert_pmtl", "ktelebert_imtl"};
  for (const std::string& name : names) {
    core::ModelKind kind;
    ASSERT_TRUE(ParseServeModel(name, &kind)) << name;
    EXPECT_EQ(ServeModelName(kind), name);
  }
  core::ModelKind kind;
  EXPECT_FALSE(ParseServeModel("bert_large", &kind));
  // "" is the wire default and resolves to TeleBERT.
  ASSERT_TRUE(ParseServeModel("", &kind));
  EXPECT_EQ(kind, core::ModelKind::kTeleBert);
}

TEST(ProtocolTest, ModelFieldParsesAndRejectsNonStrings) {
  obs::JsonValue json;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse(
      R"({"op":"encode","text":"x","model":"ktelebert_stl"})", &json,
      &error));
  Request request;
  ASSERT_TRUE(ParseRequest(json, &request).ok());
  EXPECT_EQ(request.model, "ktelebert_stl");

  ASSERT_TRUE(obs::JsonValue::Parse(R"({"text":"x","model":7})", &json,
                                    &error));
  const Status status = ParseRequest(json, &request);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

EngineOptions TinyEngineOptions() {
  EngineOptions options;
  options.num_workers = 2;
  options.cache_capacity = 64;
  return options;
}

TEST(ModelHostTest, InstallAssignsGenerationsAndResolvesDefault) {
  ModelHost host("telebert");
  EXPECT_EQ(host.Resolve(""), nullptr);

  auto first = BuildModelBundle("telebert", SharedZooPtr(),
                                TinyEngineOptions());
  ASSERT_TRUE(first.ok()) << first.status().message();
  host.Install(std::move(first).value());
  ModelHost::BundlePtr resolved = host.Resolve("");
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->model, "telebert");
  EXPECT_EQ(resolved->generation, 1u);
  EXPECT_EQ(host.Resolve("telebert"), resolved);
  EXPECT_EQ(host.Resolve("no_such_model"), nullptr);

  auto second = BuildModelBundle("telebert", SharedZooPtr(),
                                 TinyEngineOptions());
  ASSERT_TRUE(second.ok());
  host.Install(std::move(second).value());
  EXPECT_EQ(host.Resolve("")->generation, 2u);
  EXPECT_EQ(host.installs(), 2u);
  // The swapped-out generation is still alive through our pointer.
  EXPECT_EQ(resolved->generation, 1u);

  const obs::JsonValue status = host.StatusJson();
  EXPECT_EQ(status.Find("default")->AsString(), "telebert");
  ASSERT_EQ(status.Find("models")->size(), 1u);
  EXPECT_EQ(status.Find("models")->at(0).Find("generation")->AsNumber(), 2);
}

TEST(ModelHostTest, LineHandlerStampsModelAndSurvivesHotSwap) {
  ModelHost host("telebert");
  auto bundle = BuildModelBundle("telebert", SharedZooPtr(),
                                 TinyEngineOptions());
  ASSERT_TRUE(bundle.ok());
  host.Install(std::move(bundle).value());
  std::atomic<bool> draining{false};
  const LineHandler handler = MakeServeLineHandler(&host, &draining);

  // A request admitted on generation 1...
  std::future<std::string> in_flight =
      handler(R"({"op":"encode","text":"hot swap survivor","id":"r1"})");
  // ...is not dropped by a swap to generation 2 (the handler holds the
  // bundle; the old engine drains before it dies).
  auto next = BuildModelBundle("telebert", SharedZooPtr(),
                               TinyEngineOptions());
  ASSERT_TRUE(next.ok());
  host.Install(std::move(next).value());

  obs::JsonValue response;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse(in_flight.get(), &response, &error));
  ASSERT_TRUE(response.Find("ok")->AsBool()) << response.Dump();
  EXPECT_EQ(response.Find("model")->AsString(), "telebert");
  EXPECT_EQ(response.Find("generation")->AsNumber(), 1);

  // New requests land on the new generation.
  ASSERT_TRUE(obs::JsonValue::Parse(
      handler(R"({"op":"encode","text":"after swap"})").get(), &response,
      &error));
  EXPECT_EQ(response.Find("generation")->AsNumber(), 2);

  // Unknown model: NOT_FOUND, not a retryable UNAVAILABLE.
  ASSERT_TRUE(obs::JsonValue::Parse(
      handler(R"({"op":"encode","text":"x","model":"nope"})").get(),
      &response, &error));
  ASSERT_FALSE(response.Find("ok")->AsBool());
  EXPECT_EQ(static_cast<int>(response.Find("error")->Find("code")->AsNumber()),
            static_cast<int>(StatusCode::kNotFound));

  // Draining: UNAVAILABLE so the router retries elsewhere.
  draining.store(true);
  ASSERT_TRUE(obs::JsonValue::Parse(
      handler(R"({"op":"encode","text":"x"})").get(), &response, &error));
  EXPECT_EQ(static_cast<int>(response.Find("error")->Find("code")->AsNumber()),
            static_cast<int>(StatusCode::kUnavailable));
}

// ---------------------------------------------------------------------------
// Precision (--precision=int8 quantized encode path)
// ---------------------------------------------------------------------------

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

TEST(ProtocolTest, ParsesPrecisionField) {
  Request request;
  ASSERT_TRUE(
      ParseRequestLine(R"({"text":"x","precision":"int8"})", &request).ok());
  EXPECT_EQ(request.precision, Precision::kInt8);
  ASSERT_TRUE(
      ParseRequestLine(R"({"text":"x","precision":"fp32"})", &request).ok());
  EXPECT_EQ(request.precision, Precision::kFp32);
  // Omitted: kDefault, so the server's --precision flag decides.
  ASSERT_TRUE(ParseRequestLine(R"({"text":"x"})", &request).ok());
  EXPECT_EQ(request.precision, Precision::kDefault);
  EXPECT_FALSE(
      ParseRequestLine(R"({"text":"x","precision":"fp16"})", &request).ok());
}

TEST(EmbeddingCacheTest, HashSaltPartitionsKeySpace) {
  const std::vector<int> ids{5, 6, 7};
  const CacheKey fp32_key = EmbeddingCache::HashIds(ids, 3, /*salt=*/0);
  const CacheKey int8_key = EmbeddingCache::HashIds(ids, 3, /*salt=*/1);
  // Same ids + length under different salts must not collide — otherwise an
  // int8 request could be answered from the fp32 cache partition.
  EXPECT_NE(fp32_key, int8_key);
  // Default salt is 0 (the fp32 partition).
  EXPECT_EQ(EmbeddingCache::HashIds(ids, 3), fp32_key);
}

TEST(ServeEngineTest, Int8WithoutQuantizedEncoderFailsPrecondition) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  EngineOptions options;
  options.num_workers = 1;
  ServeEngine engine(&service, options);  // no int8 twin
  Request request;
  request.op = TaskOp::kEncode;
  request.text = zoo.world().alarms()[0].name;
  request.precision = Precision::kInt8;
  EXPECT_EQ(engine.Submit(request).get().status.code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Process(request).status.code(),
            StatusCode::kFailedPrecondition);
  // fp32 requests on the same engine still work.
  request.precision = Precision::kFp32;
  EXPECT_TRUE(engine.Process(request).status.ok());
}

TEST(ServeEngineTest, Int8RequestsServeFromQuantizedEncoder) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  core::QuantizedEncoder quantized(zoo.telebert().encoder());
  EngineOptions options;
  options.num_workers = 2;
  ServeEngine engine(&service, options, &quantized);
  obs::Counter& int8_requests = obs::MetricsRegistry::Global().GetCounter(
      "serve/precision_int8_requests");
  const uint64_t before = int8_requests.value();

  Request request;
  request.op = TaskOp::kEncode;
  request.text = zoo.world().alarms()[1].name;
  const Response fp32 = engine.Submit(request).get();
  ASSERT_TRUE(fp32.status.ok()) << fp32.status.ToString();

  request.precision = Precision::kInt8;
  const Response int8 = engine.Submit(request).get();
  ASSERT_TRUE(int8.status.ok()) << int8.status.ToString();
  ASSERT_EQ(static_cast<int>(int8.vector.size()), service.dim());
  EXPECT_EQ(int8_requests.value(), before + 1);

  // Same text, different precision: the salted cache keys keep the
  // partitions apart, so the int8 answer is the quantized forward — close
  // to fp32 in angle but not the cached fp32 bits.
  EXPECT_NE(int8.vector, fp32.vector);
  EXPECT_GE(Cosine(int8.vector, fp32.vector), 0.98);

  // A repeat hits the int8 cache partition and returns the same bits.
  const Response again = engine.Process(request);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.vector, int8.vector);
}

TEST(ServeEngineTest, DefaultPrecisionOptionAppliesToUnspecifiedRequests) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kTeleBert);
  core::QuantizedEncoder quantized(zoo.telebert().encoder());
  EngineOptions options;
  options.num_workers = 1;
  options.default_precision = Precision::kInt8;  // --precision=int8
  ServeEngine engine(&service, options, &quantized);
  obs::Counter& int8_requests = obs::MetricsRegistry::Global().GetCounter(
      "serve/precision_int8_requests");
  const uint64_t before = int8_requests.value();

  Request request;
  request.op = TaskOp::kEncode;
  request.text = zoo.world().alarms()[3].name;  // kDefault precision
  ASSERT_TRUE(engine.Process(request).status.ok());
  EXPECT_EQ(int8_requests.value(), before + 1);

  // An explicit fp32 request overrides the server default.
  request.precision = Precision::kFp32;
  ASSERT_TRUE(engine.Process(request).status.ok());
  EXPECT_EQ(int8_requests.value(), before + 1);
}

TEST(ModelHostTest, BundleServesInt8Requests) {
  auto built = BuildModelBundle("telebert", SharedZooPtr(),
                                TinyEngineOptions());
  ASSERT_TRUE(built.ok()) << built.status().message();
  std::shared_ptr<ModelBundle> bundle = std::move(built).value();
  ASSERT_NE(bundle->quantized, nullptr);

  Request request;
  request.op = TaskOp::kRca;
  request.text = SharedZoo().world().alarms()[0].name;
  request.precision = Precision::kInt8;
  request.top_k = 3;
  const Response response = bundle->engine->Process(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.results.size(), 3u);

  // KTeleBERT bundles carry a quantized twin too (ANEnc hook included).
  auto kbuilt = BuildModelBundle("ktelebert_stl", SharedZooPtr(),
                                 TinyEngineOptions());
  ASSERT_TRUE(kbuilt.ok()) << kbuilt.status().message();
  std::shared_ptr<ModelBundle> kbundle = std::move(kbuilt).value();
  ASSERT_NE(kbundle->quantized, nullptr);
  Request krequest;
  krequest.op = TaskOp::kEncode;
  krequest.text = SharedZoo().world().alarms()[2].name;
  krequest.precision = Precision::kInt8;
  const Response kresponse = kbundle->engine->Process(krequest);
  ASSERT_TRUE(kresponse.status.ok()) << kresponse.status.ToString();
  EXPECT_EQ(static_cast<int>(kresponse.vector.size()),
            kbundle->service->dim());
}

TEST(ProtocolTest, ParsesRetrievalOpsAndEfSearch) {
  obs::JsonValue json;
  std::string error;
  Request request;
  ASSERT_TRUE(obs::JsonValue::Parse(
      R"({"op":"retrieve","text":"x","top_k":4,"ef_search":64})", &json,
      &error));
  ASSERT_TRUE(ParseRequest(json, &request).ok());
  EXPECT_EQ(request.op, TaskOp::kRetrieve);
  EXPECT_EQ(request.top_k, 4);
  EXPECT_EQ(request.ef_search, 64);

  ASSERT_TRUE(obs::JsonValue::Parse(R"({"op":"troubleshoot","text":"x"})",
                                    &json, &error));
  ASSERT_TRUE(ParseRequest(json, &request).ok());
  EXPECT_EQ(request.op, TaskOp::kTroubleshoot);
  EXPECT_EQ(request.ef_search, 0);  // omitted -> the index default

  ASSERT_TRUE(obs::JsonValue::Parse(R"({"text":"x","ef_search":-1})", &json,
                                    &error));
  EXPECT_EQ(ParseRequest(json, &request).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(obs::JsonValue::Parse(R"({"text":"x","ef_search":"wide"})",
                                    &json, &error));
  EXPECT_EQ(ParseRequest(json, &request).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, ResponseCarriesDocsForRetrievalOps) {
  Request request;
  request.op = TaskOp::kRetrieve;
  request.text = "q";
  Response response;
  response.status = Status::Ok();
  response.docs.push_back({7, "ALM-7", "alarm", 0.9f});
  response.docs.push_back({3, "TKT-3", "ticket", 0.8f});
  const obs::JsonValue out = ResponseToJson(request, response, nullptr);
  ASSERT_NE(out.Find("docs"), nullptr);
  EXPECT_EQ(out.Find("docs")->size(), 2u);
  EXPECT_EQ(out.Find("docs")->at(0).Find("doc_id")->AsNumber(), 7);
  EXPECT_EQ(out.Find("docs")->at(0).Find("kind")->AsString(), "alarm");
  // retrieve answers with docs only; results is the RCA-style field.
  EXPECT_EQ(out.Find("results"), nullptr);

  request.op = TaskOp::kTroubleshoot;
  response.results.push_back({"root cause", 0.95f});
  const obs::JsonValue both = ResponseToJson(request, response, nullptr);
  ASSERT_NE(both.Find("docs"), nullptr);
  ASSERT_NE(both.Find("results"), nullptr);
  EXPECT_EQ(both.Find("results")->at(0).Find("name")->AsString(),
            "root cause");
}

TEST(ServeEngineTest, RetrievalOpsWithoutIndexFailPrecondition) {
  const core::ModelZoo& zoo = SharedZoo();
  core::ServiceEncoder service = zoo.MakeServiceEncoder(
      core::ModelKind::kKTeleBertStl);
  ServeEngine engine(&service, TinyEngineOptions());

  Request request;
  request.op = TaskOp::kRetrieve;
  request.text = "any query";
  EXPECT_EQ(engine.Process(request).status.code(),
            StatusCode::kFailedPrecondition);
  request.op = TaskOp::kTroubleshoot;
  EXPECT_EQ(engine.Process(request).status.code(),
            StatusCode::kFailedPrecondition);
}

BundleIndexOptions TinyIndexOptions() {
  BundleIndexOptions options;
  options.enable = true;
  options.num_tickets = 8;
  return options;
}

TEST(ModelHostTest, BundleServesRetrieveAndTroubleshoot) {
  auto built = BuildModelBundle("telebert", SharedZooPtr(),
                                TinyEngineOptions(), TinyIndexOptions());
  ASSERT_TRUE(built.ok()) << built.status().message();
  std::shared_ptr<ModelBundle> bundle = std::move(built).value();
  ASSERT_NE(bundle->index, nullptr);
  EXPECT_GT(bundle->index->size(), 0u);

  Request request;
  request.op = TaskOp::kRetrieve;
  request.text = "customers report service degradation";
  request.top_k = 5;
  const Response response = bundle->engine->Process(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.docs.size(), 5u);
  for (size_t i = 0; i < response.docs.size(); ++i) {
    EXPECT_FALSE(response.docs[i].title.empty());
    EXPECT_FALSE(response.docs[i].kind.empty());
    if (i > 0) {
      EXPECT_LE(response.docs[i].score, response.docs[i - 1].score);
    }
  }
  EXPECT_GE(response.search_ms, 0.0);

  // Per-request ef_search override still answers with k docs.
  request.ef_search = 128;
  EXPECT_EQ(bundle->engine->Process(request).docs.size(), 5u);

  // troubleshoot: retrieved context plus an RCA verdict over the union of
  // the docs' evidence alarms.
  Request diagnose;
  diagnose.op = TaskOp::kTroubleshoot;
  diagnose.text = "trouble ticket: repeated alarms and kpi deviation";
  diagnose.top_k = 3;
  const Response verdict = bundle->engine->Process(diagnose);
  ASSERT_TRUE(verdict.status.ok()) << verdict.status.ToString();
  EXPECT_EQ(verdict.docs.size(), 3u);
  ASSERT_FALSE(verdict.results.empty());
  // The verdict names come from the world's alarm catalogue.
  std::vector<std::string> catalogue;
  for (const auto& alarm : SharedZoo().world().alarms()) {
    catalogue.push_back(alarm.name);
  }
  for (const auto& candidate : verdict.results) {
    EXPECT_NE(std::find(catalogue.begin(), catalogue.end(), candidate.name),
              catalogue.end())
        << "verdict cites unknown alarm: " << candidate.name;
  }
}

}  // namespace
}  // namespace serve
}  // namespace telekit

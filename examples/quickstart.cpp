// Quickstart: build a small synthetic telecom world, pre-train TeleBERT,
// re-train KTeleBERT, and use service vectors to compare fault events.
//
//   ./build/examples/quickstart
//
// Everything runs on one CPU core in well under a minute.
#include <cstdio>
#include <iostream>

#include "core/model_zoo.h"
#include "eval/metrics.h"

using telekit::core::ModelKind;
using telekit::core::ModelZoo;
using telekit::core::ServiceMode;
using telekit::core::ZooConfig;

int main() {
  // 1. Configure a small experiment. ZooConfig bundles the world model,
  //    corpus sizes and model hyperparameters; everything is seeded.
  ZooConfig config;
  config.seed = 7;
  config.world.num_alarm_types = 24;
  config.world.num_kpi_types = 12;
  config.corpus.num_tele_sentences = 1500;
  config.corpus.num_general_sentences = 1500;
  config.pretrain.steps = 80;
  config.retrain.total_steps = 80;
  config.cache_dir = "";  // train fresh; set a directory to cache weights

  // 2. Build the full stack: world -> corpora -> tokenizer -> Tele-KG ->
  //    TeleBERT (stage one) -> KTeleBERT variants (stage two).
  ModelZoo zoo(config);
  std::cout << "Building the model zoo (world, corpora, pre-training)...\n";
  zoo.Build();
  std::cout << "Vocabulary size: " << zoo.tokenizer().vocab().size()
            << ", Tele-KG entities: " << zoo.store().num_entities() << "\n\n";

  // 3. Encode fault events as service vectors (Sec. V-A3 of the paper).
  telekit::core::ServiceEncoder service =
      zoo.MakeServiceEncoder(ModelKind::kKTeleBertStl);
  const auto& alarms = zoo.world().alarms();
  std::cout << "Example alarms from the synthetic catalogue:\n";
  for (int i = 0; i < 3; ++i) {
    std::cout << "  [" << alarms[static_cast<size_t>(i)].code << "] "
              << alarms[static_cast<size_t>(i)].name << "\n";
  }

  // 4. Compare events in embedding space: alarms sharing a service should
  //    be closer than unrelated alarms.
  int same_service_pair[2] = {-1, -1};
  int other = -1;
  for (size_t i = 0; i < alarms.size() && other < 0; ++i) {
    for (size_t j = i + 1; j < alarms.size(); ++j) {
      if (alarms[i].service == alarms[j].service) {
        same_service_pair[0] = static_cast<int>(i);
        same_service_pair[1] = static_cast<int>(j);
      } else if (same_service_pair[0] >= 0) {
        other = static_cast<int>(j);
        break;
      }
    }
  }
  if (other >= 0) {
    auto embed = [&](int idx) {
      return service.Encode(alarms[static_cast<size_t>(idx)].name,
                            ServiceMode::kEntityNoAttr);
    };
    const double related = telekit::eval::CosineSimilarity(
        embed(same_service_pair[0]), embed(same_service_pair[1]));
    const double unrelated = telekit::eval::CosineSimilarity(
        embed(same_service_pair[0]), embed(other));
    std::printf(
        "\ncos(same-service alarms)  = %.3f\n"
        "cos(unrelated alarms)     = %.3f\n",
        related, unrelated);
  }

  // 5. The Tele-KG answers structured queries directly.
  const auto& store = zoo.store();
  auto trigger = store.FindRelation("trigger");
  if (trigger.ok()) {
    auto triples = store.Match(std::nullopt, *trigger, std::nullopt);
    std::cout << "\nTele-KG knows " << triples.size()
              << " trigger facts, e.g.:\n";
    for (size_t i = 0; i < triples.size() && i < 3; ++i) {
      std::cout << "  (" << store.EntitySurface(triples[i].head)
                << ") --trigger--> (" << store.EntitySurface(triples[i].tail)
                << ")\n";
    }
  }
  std::cout << "\nDone. See examples/fault_diagnosis.cpp for an end-to-end "
               "root-cause analysis.\n";
  return 0;
}

// Tele-KG exploration: build the knowledge graph from the synthetic world,
// walk the tele-schema hierarchy, answer pattern queries (mini-SPARQL),
// serialize triples through the prompt templates, and run fault-chain
// completion with GTransE.
//
//   ./build/examples/knowledge_explorer
#include <cstdio>
#include <iostream>

#include "common/rng.h"
#include "kg/kge.h"
#include "kg/query.h"
#include "synth/kg_gen.h"
#include "synth/log.h"
#include "synth/task_data.h"
#include "synth/world.h"
#include "tasks/fct.h"
#include "text/prompt.h"
#include "text/tokenizer.h"

using namespace telekit;

int main() {
  synth::WorldModel world(synth::WorldConfig{.seed = 21});
  synth::LogGenerator logs(world, synth::LogConfig{});
  Rng rng(1);
  auto episodes = logs.SimulateMany(20, rng);
  kg::TripleStore store = synth::KgGenerator().Generate(world, episodes);

  std::cout << "Tele-KG: " << store.num_entities() << " entities, "
            << store.num_relations() << " relations, "
            << store.triples().size() << " triples ("
            << store.quadruples().size() << " probabilistic).\n\n";

  // --- Schema walk: everything under "Event" -------------------------------
  auto event_class = store.FindEntity(synth::TeleSchema::kEvent);
  auto subclass_of = store.FindRelation(synth::TeleSchema::kSubclassOf);
  std::cout << "Schema classes directly under Event:\n";
  for (kg::EntityId sub : store.Subjects(*subclass_of, *event_class)) {
    std::cout << "  " << store.EntitySurface(sub) << " subclassOf Event\n";
  }

  // --- Pattern query: what does alarm 0 trigger? ---------------------------
  const auto& alarm = world.alarms()[0];
  auto alarm_entity =
      store.FindEntity(synth::KgGenerator::AlarmEntitySurface(alarm));
  auto trigger = store.FindRelation(synth::TeleSchema::kTrigger);
  std::cout << "\nSPARQL-style query: (" << alarm.name
            << ", trigger, ?x)\n";
  for (const kg::Triple& t : store.Match(*alarm_entity, *trigger,
                                         std::nullopt)) {
    std::cout << "  ?x = " << store.EntitySurface(t.tail) << "\n";
  }

  // --- SPARQL-like multi-pattern query --------------------------------------
  kg::QueryEngine engine(store);
  const std::string query =
      "SELECT ?a ?k WHERE { ?a instanceOf Alarm . ?a affects ?k . "
      "?k instanceOf KPI }";
  std::cout << "\n" << query << "\n";
  auto rows = engine.Execute(query);
  if (rows.ok()) {
    std::cout << "  -> " << rows->size() << " bindings; first three:\n";
    for (size_t i = 0; i < rows->size() && i < 3; ++i) {
      std::cout << "     ?a = " << store.EntitySurface((*rows)[i].at("?a"))
                << "  |  ?k = " << store.EntitySurface((*rows)[i].at("?k"))
                << "\n";
    }
  } else {
    std::cout << "  query failed: " << rows.status().ToString() << "\n";
  }

  // --- Prompt serialization (implicit knowledge injection) -----------------
  text::Vocab vocab;
  auto triples = store.Match(*alarm_entity, std::nullopt, std::nullopt);
  std::cout << "\nTriples serialized through the Fig. 3 templates:\n";
  for (size_t i = 0; i < triples.size() && i < 3; ++i) {
    text::PromptSequence prompt =
        text::PromptBuilder()
            .Entity(store.EntitySurface(triples[i].head))
            .Relation(store.RelationSurface(triples[i].relation))
            .Entity(store.EntitySurface(triples[i].tail))
            .Build();
    std::cout << "  " << text::PromptToString(prompt, vocab) << "\n";
  }

  // --- Fault-chain completion with GTransE ----------------------------------
  synth::FctDataGen fct_gen(world, logs);
  Rng fct_rng(2);
  synth::FctDataset dataset =
      fct_gen.Generate(synth::FctDataConfig{.num_chains = 120}, fct_rng);
  std::cout << "\nFault-chain KG: " << dataset.store.num_entities()
            << " alarm instances, " << dataset.train.size()
            << " training hops; completing " << dataset.test.size()
            << " masked first hops with GTransE...\n";
  tasks::FctOptions options;
  Rng train_rng(3);
  tasks::FctResult result =
      tasks::RunFct(dataset, nullptr, options, train_rng);
  std::printf("GTransE link prediction: MRR %.1f, Hits@1 %.1f, Hits@10 %.1f\n",
              result.mrr, result.hits1, result.hits10);
  return 0;
}

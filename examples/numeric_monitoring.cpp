// Numeric-data monitoring with ANEnc: encode a stream of KPI readings,
// show that the learned numeric space orders values, and flag anomalous
// readings by their distance from the normal-value cluster — the fine-
// grained numeric understanding the paper builds ANEnc for.
//
//   ./build/examples/numeric_monitoring
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/model_zoo.h"
#include "eval/metrics.h"
#include "synth/log.h"
#include "text/prompt.h"

using namespace telekit;

int main() {
  core::ZooConfig config;
  config.seed = 31;
  config.world.num_alarm_types = 24;
  config.world.num_kpi_types = 12;
  config.corpus.num_tele_sentences = 1500;
  config.corpus.num_general_sentences = 300;
  config.pretrain.steps = 80;
  config.retrain.total_steps = 200;
  config.cache_dir = "";
  core::ModelZoo zoo(config);
  std::cout << "Training KTeleBERT (with ANEnc + numeric losses)...\n";
  zoo.Build();

  const core::KTeleBert& model =
      zoo.ktelebert(core::ModelKind::kKTeleBertStl);
  const auto& kpi = zoo.world().kpis()[0];
  std::cout << "Monitoring KPI: \"" << kpi.name << "\" (baseline "
            << kpi.baseline << ")\n\n";

  // Tag-name embedding (pooled embedding-layer output, Sec. IV-B).
  std::vector<int> tag_ids;
  for (const std::string& word : text::Tokenizer::SplitWords(kpi.name)) {
    for (int id : zoo.tokenizer().WordToIds(word)) tag_ids.push_back(id);
  }
  tensor::Tensor tag = model.encoder().MeanTokenEmbedding(tag_ids);

  // 1. Value ordering in the numeric space: neighbors in value should be
  //    neighbors in embedding.
  auto embed_value = [&](float v) { return model.anenc().Forward(tag, v); };
  std::vector<double> values, gaps, distances;
  tensor::Tensor anchor = embed_value(0.0f);
  std::printf("value -> distance from the 0.0 embedding:\n");
  for (float v : {0.1f, 0.3f, 0.5f, 0.7f, 0.9f}) {
    tensor::Tensor h = embed_value(v);
    double d = 0;
    for (int64_t i = 0; i < h.size(); ++i) {
      const double diff = h.at(i) - anchor.at(i);
      d += diff * diff;
    }
    std::printf("  %.1f -> %.4f\n", v, std::sqrt(d));
  }

  // 2. Anomaly flagging: distance of each reading's embedding from the
  //    mean embedding of normal traffic.
  synth::LogGenerator logs(zoo.world(), synth::LogConfig{});
  Rng rng(5);
  auto episode = logs.Simulate(rng);
  const auto& normalizer = zoo.normalizer();
  std::printf("\nfault-episode readings (* = ground-truth anomaly):\n");
  int shown = 0;
  for (const synth::KpiReading& reading : episode.readings) {
    if (shown++ >= 8) break;
    const auto& k = zoo.world().kpis()[static_cast<size_t>(reading.kpi_type)];
    const float normalized = normalizer.Normalize(k.name, reading.value);
    std::printf("  %-55s value %8.1f (normalized %.2f)%s\n", k.name.c_str(),
                reading.value, normalized, reading.anomalous ? "  *" : "");
  }
  std::cout << "\nNormalized values feed [NUM] slots in the prompt template "
               "and are encoded by ANEnc inside KTeleBERT.\n";
  return 0;
}

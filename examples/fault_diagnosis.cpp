// End-to-end root-cause analysis on a live fault state: simulate a fault
// episode on a subnet, initialize node features from KTeleBERT service
// vectors, train the GCN ranking model on historical states, and rank the
// nodes of a fresh state by root-cause likelihood.
//
//   ./build/examples/fault_diagnosis
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/model_zoo.h"
#include "synth/task_data.h"
#include "tasks/embed.h"
#include "tasks/rca.h"
#include "tensor/optimizer.h"
#include "tensor/ops.h"

using namespace telekit;

int main() {
  // Small but non-trivial setup.
  core::ZooConfig config;
  config.seed = 11;
  config.world.num_alarm_types = 32;
  config.world.num_kpi_types = 16;
  config.corpus.num_tele_sentences = 2000;
  config.corpus.num_general_sentences = 500;
  config.pretrain.steps = 120;
  config.retrain.total_steps = 120;
  config.cache_dir = "";
  core::ModelZoo zoo(config);
  std::cout << "Training KTeleBERT on the synthetic tele corpus...\n";
  zoo.Build();

  // Historical labelled states + one fresh state to diagnose.
  synth::RcaDataGen gen(zoo.world(), zoo.log_generator());
  Rng rng(42);
  synth::RcaDataset history =
      gen.Generate(synth::RcaDataConfig{.num_graphs = 80}, rng);
  synth::RcaDataset fresh =
      gen.Generate(synth::RcaDataConfig{.num_graphs = 1}, rng);

  // Event embeddings from KTeleBERT (Eq. 12).
  core::ServiceEncoder service =
      zoo.MakeServiceEncoder(core::ModelKind::kKTeleBertStl);
  auto embeddings = tasks::EmbedSurfaces(service, history.feature_surfaces);

  // Train the GCN + MLP ranking model on the history (Eq. 13-16).
  std::cout << "Training the RCA ranking model on " << history.graphs.size()
            << " historical states...\n";
  tasks::RcaOptions options;
  options.epochs = 50;
  Rng model_rng(43);
  tasks::RcaModel model(static_cast<int>(embeddings[0].size()), options,
                        model_rng);
  tensor::Adam optimizer(options.learning_rate);
  optimizer.AddParameters(model.Parameters());
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    optimizer.ZeroGrad();
    std::vector<tensor::Tensor> losses;
    for (const auto& state : history.graphs) {
      tensor::Tensor scores =
          model.Scores(state, tasks::RcaModel::NodeInit(state, embeddings));
      std::vector<float> labels(
          static_cast<size_t>(state.topology.num_nodes), -1.0f);
      labels[static_cast<size_t>(state.root_node)] = 1.0f;
      losses.push_back(tensor::LogisticLoss(scores, labels));
    }
    tensor::Tensor total = losses[0];
    for (size_t i = 1; i < losses.size(); ++i) {
      total = tensor::Add(total, losses[i]);
    }
    tensor::MulScalar(total, 1.0f / static_cast<float>(losses.size()))
        .Backward();
    optimizer.ClipGradNorm(5.0f);
    optimizer.Step();
  }

  // Diagnose the fresh state.
  const synth::RcaStateGraph& state = fresh.graphs[0];
  tensor::Tensor scores =
      model.Scores(state, tasks::RcaModel::NodeInit(state, embeddings));
  std::vector<int> order(static_cast<size_t>(state.topology.num_nodes));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return scores.at(static_cast<int64_t>(a)) >
           scores.at(static_cast<int64_t>(b));
  });

  std::cout << "\nFresh fault state: " << state.topology.num_nodes
            << " network elements, root cause hidden.\n";
  std::cout << "Ranked root-cause candidates:\n";
  for (size_t r = 0; r < order.size() && r < 5; ++r) {
    const int node = order[r];
    const auto& element =
        zoo.world().elements()[static_cast<size_t>(
            state.elements[static_cast<size_t>(node)])];
    std::printf("  %zu. %-8s score=%+.3f%s\n", r + 1, element.name.c_str(),
                scores.at(static_cast<int64_t>(node)),
                node == state.root_node ? "   <-- true root cause" : "");
  }
  const double rank = model.RankOfRoot(state, embeddings);
  std::printf("\nTrue root cause ranked #%.0f of %d.\n", rank,
              state.topology.num_nodes);
  return 0;
}

// Load generator for the streaming subsystem. Replays one seeded
// alarm/KPI/signaling stream through three pipeline configurations and
// writes BENCH_stream.json:
//
//   sync_replay   deterministic mode (unbatched Process path) — measures
//                 sustained episodes/sec, detection latency, and online
//                 RCA hit@1/hit@3; the same episodes are then re-scored
//                 through the offline evaluator path and the two hit
//                 rates must agree exactly (acceptance)
//   async_replay  Submit() with micro-batching — the throughput shape
//   saturated     async against a deliberately starved engine (1 worker,
//                 tiny queue, tiny in-flight bound): backpressure must
//                 throttle ingestion (observable throttled submits) while
//                 every flushed episode stays accounted (analysed + shed)
//
// Absolute hit rates on the synthetic world do not transfer to the
// paper's proprietary benchmark; Table IV's TeleBERT row is recorded as
// the reference frame, and the acceptance criterion is the online ==
// offline consistency, not the absolute accuracy.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/slo_demo.h"
#include "common/flag_parse.h"
#include "common/table_printer.h"
#include "core/model_zoo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "serve/engine.h"
#include "stream/pipeline.h"
#include "synth/replay.h"

namespace telekit {
namespace bench {
namespace {

struct LoadgenFlags {
  uint64_t seed = 20230401;
  int episodes = 40;
  double mean_gap = 12.0;
  int workers = 4;
  int max_batch = 8;
  bool slo_demo = true;  // --slo-demo=0 skips the alert-lifecycle demo
  std::string out = "BENCH_stream.json";
  std::string obs_out = "BENCH_obs.json";
};

struct RunResult {
  std::string name;
  stream::PipelineSummary summary;
  stream::HitStats hits;
  double detect_p50_ms = 0.0;
  double detect_p99_ms = 0.0;
};

/// One pipeline pass over `events`; detection latency is aggregated from
/// the per-verdict measurements so each run reports its own quantiles
/// (the global stream/detect_ms histogram is cumulative across runs).
RunResult RunPipeline(const std::string& name, const core::ModelZoo& zoo,
                      serve::ServeEngine* engine,
                      const std::vector<synth::StreamEvent>& events,
                      const std::vector<std::string>& truth_roots,
                      const stream::PipelineConfig& config,
                      std::vector<stream::EpisodeVerdict>* verdicts_out) {
  RunResult result;
  result.name = name;
  obs::LatencyHistogram detect;
  stream::StreamPipeline pipeline(zoo.world(), engine, config);
  result.summary = pipeline.Run(
      events, [&](stream::EpisodeVerdict verdict) {
        result.hits.Accumulate(verdict, truth_roots);
        if (verdict.ok) detect.Observe(verdict.detect_ms);
        if (verdicts_out != nullptr) {
          verdicts_out->push_back(std::move(verdict));
        }
      });
  result.detect_p50_ms = detect.Quantile(0.50);
  result.detect_p99_ms = detect.Quantile(0.99);
  return result;
}

/// End-to-end SLO alert lifecycle on the detection-latency objective
/// (ISSUE 6 acceptance). Ticks replay the same tiny episode slice through
/// two differently-provisioned pipelines: the healthy one has the full
/// worker pool and a warm service-vector cache, the degraded one is
/// starved (1 worker, cache off, tight in-flight bound), so every episode
/// pays serialized full forwards and stream/detect_ms genuinely inflates.
obs::JsonValue RunSloAlertDemo(const core::ModelZoo& zoo,
                               const core::ServiceEncoder& service,
                               const std::vector<std::string>& names,
                               synth::LogGenerator& log_gen,
                               synth::SignalingFlowGenerator& signaling_gen,
                               const LoadgenFlags& flags, bool* passed) {
  // One 3-episode replay slice, reused by every healthy tick (repeat
  // queries keep the healthy engine's cache warm). Degraded ticks replay
  // a larger burst: on the starved engine every episode's ops queue up
  // behind the whole burst, so detection latency inflates with real queue
  // buildup rather than an artificial sleep.
  auto make_slice = [&](int num_episodes, uint64_t salt) {
    synth::ReplayConfig replay;
    replay.num_episodes = num_episodes;
    replay.mean_episode_gap = 0.5;
    Rng rng(flags.seed ^ salt);
    const std::vector<synth::ScheduledEpisode> episodes =
        synth::ScheduleEpisodes(log_gen, signaling_gen, replay, rng);
    return synth::BuildReplayStream(log_gen, signaling_gen, episodes, replay,
                                    rng);
  };
  const std::vector<synth::StreamEvent> events =
      make_slice(3, 0x534c4f44454d4fULL);
  const std::vector<synth::StreamEvent> burst_events =
      make_slice(10, 0x4255525354ULL);

  serve::EngineOptions healthy_options;
  healthy_options.num_workers = std::max(2, flags.workers);
  healthy_options.max_batch = flags.max_batch;
  healthy_options.queue_capacity = 1024;
  serve::ServeEngine healthy_engine(&service, healthy_options);
  serve::EngineOptions degraded_options;
  degraded_options.num_workers = 1;
  degraded_options.max_batch = 1;
  degraded_options.queue_capacity = 64;
  degraded_options.enable_cache = false;
  serve::ServeEngine degraded_engine(&service, degraded_options);
  for (serve::TaskOp op :
       {serve::TaskOp::kRca, serve::TaskOp::kEap, serve::TaskOp::kFct}) {
    TELEKIT_CHECK(healthy_engine.LoadCatalog(op, names).ok());
    TELEKIT_CHECK(degraded_engine.LoadCatalog(op, names).ok());
  }
  stream::PipelineConfig healthy_config;
  healthy_config.deterministic = false;
  healthy_config.max_in_flight = 8;
  stream::PipelineConfig degraded_config;
  degraded_config.deterministic = false;
  degraded_config.max_in_flight = 4;
  degraded_config.submit_block_ms = 2000.0;

  auto run_tick = [&](serve::ServeEngine* engine,
                      const stream::PipelineConfig& config,
                      const std::vector<synth::StreamEvent>& tick_events,
                      obs::LatencyHistogram* hist) {
    stream::StreamPipeline pipeline(zoo.world(), engine, config);
    pipeline.Run(tick_events, [&](stream::EpisodeVerdict verdict) {
      if (verdict.ok && hist != nullptr) hist->Observe(verdict.detect_ms);
    });
  };

  // Probe both regimes to place the threshold between them.
  obs::LatencyHistogram healthy_hist;
  obs::LatencyHistogram degraded_hist;
  for (int i = 0; i < 5; ++i) {  // first pass warms the cache, unmeasured
    run_tick(&healthy_engine, healthy_config, events,
             i == 0 ? nullptr : &healthy_hist);
  }
  for (int i = 0; i < 3; ++i) {
    run_tick(&degraded_engine, degraded_config, burst_events, &degraded_hist);
  }
  const double healthy_p95 = healthy_hist.Quantile(0.95);
  const double degraded_p50 = degraded_hist.Quantile(0.50);
  double threshold_ms = std::sqrt(healthy_p95 * degraded_p50);
  const bool regimes_separate = degraded_p50 > healthy_p95 * 1.5;
  if (!regimes_separate) threshold_ms = healthy_p95 * 2.0;

  // Compressed burn windows so the lifecycle completes in seconds; the
  // daemons run the same machinery at 60 s / 300 s.
  obs::TimeSeriesOptions ts_options;
  ts_options.interval_s = 0.1;
  ts_options.capacity = 1024;
  obs::TimeSeriesStore store(ts_options);
  obs::SloConfig slo_config;
  slo_config.fast_window_s = 1.5;
  slo_config.slow_window_s = 4.0;
  slo_config.budget_window_s = 24.0;
  slo_config.burn_threshold = 1.5;
  obs::SloEngine slo(&store, slo_config);
  obs::SloObjective objective;
  objective.name = "stream/detect_demo";
  objective.kind = obs::SloObjective::Kind::kLatency;
  objective.histogram = "stream/detect_ms";
  objective.threshold_ms = threshold_ms;
  objective.target = 0.9;
  slo.AddObjective(objective);
  store.SetOnSample([&slo](double now_s) { slo.Evaluate(now_s); });
  store.Start();

  SloDemoPhases phases;
  phases.healthy_s = slo_config.slow_window_s + 1.0;
  const SloDemoResult lifecycle = RunSloAlertLifecycle(
      store, slo, objective.name,
      [&] {
        run_tick(&healthy_engine, healthy_config, events, nullptr);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      },
      [&] {
        run_tick(&degraded_engine, degraded_config, burst_events, nullptr);
      },
      phases);
  store.Stop();
  healthy_engine.Stop();
  degraded_engine.Stop();

  *passed = lifecycle.ok();
  std::cout << "\nstream SLO alert demo (threshold " << threshold_ms
            << " ms, healthy p95 " << healthy_p95 << " ms, degraded p50 "
            << degraded_p50 << " ms)\n  fired: "
            << (lifecycle.fired ? "yes" : "NO") << " (detection lag "
            << lifecycle.detection_lag_s << " s), resolved: "
            << (lifecycle.resolved ? "yes" : "NO") << " (firing interval "
            << lifecycle.firing_interval_s << " s)\n";

  obs::JsonValue section = SloDemoResultToJson(lifecycle);
  section.Set("objective", obs::JsonValue(objective.name));
  section.Set("histogram", obs::JsonValue(objective.histogram));
  section.Set("threshold_ms", obs::JsonValue(threshold_ms));
  section.Set("healthy_p95_ms", obs::JsonValue(healthy_p95));
  section.Set("degraded_p50_ms", obs::JsonValue(degraded_p50));
  section.Set("regimes_separate", obs::JsonValue(regimes_separate));
  section.Set("target", obs::JsonValue(objective.target));
  section.Set("ts_interval_s", obs::JsonValue(ts_options.interval_s));
  section.Set("fast_window_s", obs::JsonValue(slo_config.fast_window_s));
  section.Set("slow_window_s", obs::JsonValue(slo_config.slow_window_s));
  section.Set("burn_threshold", obs::JsonValue(slo_config.burn_threshold));
  return section;
}

obs::JsonValue ResultToJson(const RunResult& result) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("name", obs::JsonValue(result.name));
  out.Set("events", obs::JsonValue(result.summary.sessionizer.events));
  out.Set("episodes_flushed",
          obs::JsonValue(result.summary.sessionizer.episodes_flushed));
  out.Set("episodes_analysed",
          obs::JsonValue(result.summary.episodes_analysed));
  out.Set("episodes_shed", obs::JsonValue(result.summary.episodes_shed));
  out.Set("late_drops", obs::JsonValue(result.summary.sessionizer.late_drops));
  out.Set("duplicate_alarms",
          obs::JsonValue(result.summary.sessionizer.duplicate_alarms));
  out.Set("wall_seconds", obs::JsonValue(result.summary.wall_seconds));
  out.Set("episodes_per_sec",
          obs::JsonValue(result.summary.episodes_per_sec));
  out.Set("detect_p50_ms", obs::JsonValue(result.detect_p50_ms));
  out.Set("detect_p99_ms", obs::JsonValue(result.detect_p99_ms));
  out.Set("throttled_submits",
          obs::JsonValue(result.summary.throttled_submits));
  out.Set("throttled_ms", obs::JsonValue(result.summary.throttled_ms));
  out.Set("judged", obs::JsonValue(result.hits.judged));
  out.Set("rca_hit1", obs::JsonValue(result.hits.HitRate1()));
  out.Set("rca_hit3", obs::JsonValue(result.hits.HitRate3()));
  return out;
}

int Main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  LoadgenFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("seed"))
      flags.seed = static_cast<uint64_t>(ParseIntFlagOrDie(
          "seed", v, 0, std::numeric_limits<int64_t>::max()));
    else if (const char* v = value("episodes"))
      flags.episodes =
          static_cast<int>(ParseIntFlagOrDie("episodes", v, 1, 1 << 20));
    else if (const char* v = value("mean-gap"))
      flags.mean_gap = ParseDoubleFlagOrDie("mean-gap", v, 0.0, 1e6);
    else if (const char* v = value("workers"))
      flags.workers =
          static_cast<int>(ParseIntFlagOrDie("workers", v, 1, 1024));
    else if (const char* v = value("max-batch"))
      flags.max_batch =
          static_cast<int>(ParseIntFlagOrDie("max-batch", v, 1, 1 << 20));
    else if (const char* v = value("slo-demo"))
      flags.slo_demo = ParseIntFlagOrDie("slo-demo", v, 0, 1) != 0;
    else if (const char* v = value("out")) flags.out = v;
    else if (const char* v = value("obs-out")) flags.obs_out = v;
  }

  // Same scale as telekit_streamd's default zoo: untrained encoder (same
  // per-episode compute as a trained one), startup in seconds.
  core::ZooConfig config;
  config.seed = flags.seed;
  config.world.num_alarm_types = 48;
  config.world.num_kpi_types = 24;
  config.corpus.num_tele_sentences = 1500;
  config.corpus.num_general_sentences = 1500;
  config.num_episodes = 40;
  config.pretrain.steps = 0;
  config.cache_dir = "";
  core::ModelZoo zoo(config);
  zoo.BuildData();
  zoo.BuildPretrained();
  core::TeleBertEncoder encoder(&zoo.telebert());
  core::ServiceEncoder service(&encoder, &zoo.tokenizer(), &zoo.store(),
                               &zoo.normalizer());
  std::vector<std::string> names;
  for (const auto& alarm : zoo.world().alarms()) names.push_back(alarm.name);

  synth::LogGenerator log_gen(zoo.world(), synth::LogConfig{});
  synth::SignalingFlowGenerator signaling_gen(zoo.world(),
                                              synth::SignalingConfig{});
  synth::ReplayConfig replay;
  replay.num_episodes = flags.episodes;
  replay.mean_episode_gap = flags.mean_gap;
  Rng replay_rng(flags.seed ^ 0x5741544552ULL);  // streamd's replay stream
  const std::vector<synth::ScheduledEpisode> episodes =
      synth::ScheduleEpisodes(log_gen, signaling_gen, replay, replay_rng);
  const std::vector<synth::StreamEvent> events = synth::BuildReplayStream(
      log_gen, signaling_gen, episodes, replay, replay_rng);
  std::vector<std::string> truth_roots;
  for (const synth::ScheduledEpisode& scheduled : episodes) {
    truth_roots.push_back(
        zoo.world()
            .alarms()[static_cast<size_t>(scheduled.episode.root_alarm)]
            .name);
  }
  std::cout << "stream_loadgen: " << events.size() << " events / "
            << episodes.size() << " episodes, " << flags.workers
            << " workers\n";

  auto make_engine = [&](int workers, size_t queue_capacity) {
    serve::EngineOptions options;
    options.num_workers = workers;
    options.max_batch = flags.max_batch;
    options.queue_capacity = queue_capacity;
    auto engine = std::make_unique<serve::ServeEngine>(&service, options);
    for (serve::TaskOp op :
         {serve::TaskOp::kRca, serve::TaskOp::kEap, serve::TaskOp::kFct}) {
      TELEKIT_CHECK(engine->LoadCatalog(op, names).ok());
    }
    return engine;
  };

  std::vector<RunResult> results;

  // Run 1: deterministic replay + online-vs-offline consistency.
  std::vector<stream::EpisodeVerdict> sync_verdicts;
  auto sync_engine = make_engine(flags.workers, 1024);
  stream::PipelineConfig sync_config;
  sync_config.deterministic = true;
  results.push_back(RunPipeline("sync_replay", zoo, sync_engine.get(), events,
                                truth_roots, sync_config, &sync_verdicts));
  // The offline evaluator scores the same episode texts through the same
  // synchronous path; its hit rates must agree exactly with the online run.
  stream::HitStats offline;
  for (stream::EpisodeVerdict verdict : sync_verdicts) {
    serve::Request request;
    request.op = serve::TaskOp::kRca;
    request.text = verdict.query;
    request.top_k = sync_config.top_k;
    verdict.rca = sync_engine->Process(request);
    TELEKIT_CHECK(verdict.rca.status.ok());
    offline.Accumulate(verdict, truth_roots);
  }
  sync_engine->Stop();
  const bool online_matches_offline =
      offline.judged == results[0].hits.judged &&
      offline.hit1 == results[0].hits.hit1 &&
      offline.hit3 == results[0].hits.hit3;

  // Run 2: async micro-batched throughput on the same stream.
  auto async_engine = make_engine(flags.workers, 1024);
  stream::PipelineConfig async_config;
  async_config.deterministic = false;
  results.push_back(RunPipeline("async_replay", zoo, async_engine.get(),
                                events, truth_roots, async_config, nullptr));
  async_engine->Stop();

  // Run 3: starved engine — backpressure must throttle, accounting must
  // stay exact, memory stays bounded by max_in_flight + queue capacity.
  auto starved_engine = make_engine(/*workers=*/1, /*queue_capacity=*/4);
  stream::PipelineConfig starved_config;
  starved_config.deterministic = false;
  starved_config.max_in_flight = 4;
  starved_config.submit_block_ms = 2000.0;
  results.push_back(RunPipeline("saturated", zoo, starved_engine.get(),
                                events, truth_roots, starved_config,
                                nullptr));
  starved_engine->Stop();

  TablePrinter table("Streaming pipeline (episodes/sec)");
  table.SetHeader({"configuration", "episodes/s", "p50 ms", "p99 ms",
                   "hit@1", "hit@3", "throttled", "shed"});
  for (const RunResult& result : results) {
    table.AddRow(result.name,
                 {result.summary.episodes_per_sec, result.detect_p50_ms,
                  result.detect_p99_ms, result.hits.HitRate1(),
                  result.hits.HitRate3(),
                  static_cast<double>(result.summary.throttled_submits),
                  static_cast<double>(result.summary.episodes_shed)},
                 2);
  }
  table.Print(std::cout);
  std::cout << "\nonline == offline RCA verdicts: "
            << (online_matches_offline ? "yes" : "NO (acceptance failure)")
            << "\n";

  const RunResult& saturated = results[2];
  const bool conservation =
      saturated.summary.episodes_analysed + saturated.summary.episodes_shed ==
      saturated.summary.sessionizer.episodes_flushed;
  const bool backpressure_observed = saturated.summary.throttled_submits > 0 ||
                                     saturated.summary.episodes_shed > 0;
  std::cout << "saturated run accounting exact: "
            << (conservation ? "yes" : "NO") << ", backpressure observed: "
            << (backpressure_observed ? "yes" : "no") << "\n";

  obs::JsonValue report = obs::JsonValue::Object();
  report.Set("benchmark", obs::JsonValue("stream_loadgen"));
  obs::JsonValue cfg = obs::JsonValue::Object();
  cfg.Set("seed", obs::JsonValue(static_cast<int64_t>(flags.seed)));
  cfg.Set("episodes", obs::JsonValue(flags.episodes));
  cfg.Set("events", obs::JsonValue(static_cast<uint64_t>(events.size())));
  cfg.Set("mean_episode_gap", obs::JsonValue(flags.mean_gap));
  cfg.Set("workers", obs::JsonValue(flags.workers));
  cfg.Set("max_batch", obs::JsonValue(flags.max_batch));
  cfg.Set("compute_threads", obs::JsonValue(tensor::ComputeThreads()));
  report.Set("config", std::move(cfg));
  obs::JsonValue runs = obs::JsonValue::Array();
  for (const RunResult& result : results) runs.Append(ResultToJson(result));
  report.Set("runs", std::move(runs));
  obs::JsonValue offline_json = obs::JsonValue::Object();
  offline_json.Set("judged", obs::JsonValue(offline.judged));
  offline_json.Set("rca_hit1", obs::JsonValue(offline.HitRate1()));
  offline_json.Set("rca_hit3", obs::JsonValue(offline.HitRate3()));
  offline_json.Set("matches_online", obs::JsonValue(online_matches_offline));
  report.Set("offline_reference", std::move(offline_json));
  // Table IV frame of reference (proprietary benchmark; hit rates in %).
  obs::JsonValue paper = obs::JsonValue::Object();
  paper.Set("table", obs::JsonValue("IV"));
  paper.Set("model", obs::JsonValue("TeleBERT"));
  const std::vector<double> row =
      PaperReference::RcaTable().at(core::ModelKind::kTeleBert);
  paper.Set("mr", obs::JsonValue(row[0]));
  paper.Set("hits1", obs::JsonValue(row[1]));
  paper.Set("hits3", obs::JsonValue(row[2]));
  paper.Set("hits5", obs::JsonValue(row[3]));
  report.Set("paper_reference", std::move(paper));
  std::ofstream out(flags.out);
  out << report.Dump(2) << "\n";
  std::cout << "wrote " << flags.out << "\n";

  bool demo_passed = true;
  if (flags.slo_demo) {
    demo_passed = false;
    obs::JsonValue demo = RunSloAlertDemo(zoo, service, names, log_gen,
                                          signaling_gen, flags, &demo_passed);
    if (MergeObsReport(flags.obs_out, "stream_alert_demo", std::move(demo))) {
      std::cout << "wrote " << flags.obs_out << "\n";
    } else {
      std::cout << "FAILED to write " << flags.obs_out << "\n";
      demo_passed = false;
    }
  }
  return online_matches_offline && conservation && demo_passed ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace telekit

int main(int argc, char** argv) { return telekit::bench::Main(argc, argv); }

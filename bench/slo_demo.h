#ifndef TELEKIT_BENCH_SLO_DEMO_H_
#define TELEKIT_BENCH_SLO_DEMO_H_

#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>

#include "obs/json.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace telekit {
namespace bench {

/// Shared driver for the loadgens' end-to-end SLO alert demos: drive
/// healthy traffic long enough to fill the slow burn window, switch to a
/// traffic shape that genuinely degrades latency, and assert the alert
/// lifecycle healthy -> firing -> resolved actually happens, recording the
/// detection lag (degradation start to fired_at) along the way.
///
/// The store's background sampler must already be running with the SLO
/// engine wired to its on-sample callback; the demo only generates traffic
/// and polls Snapshot() between ticks.

struct SloDemoPhases {
  double healthy_s = 5.0;          ///< healthy warmup (>= slow window)
  double fire_timeout_s = 45.0;    ///< give up if the alert never fires
  double resolve_timeout_s = 45.0; ///< give up if it never resolves
};

struct SloDemoResult {
  bool healthy_clean = false;  ///< not firing at the end of the warmup
  bool fired = false;
  bool resolved = false;
  double healthy_start_s = 0.0;
  double degrade_start_s = 0.0;
  double recover_start_s = 0.0;
  double fired_at_s = -1.0;
  double resolved_at_s = -1.0;
  double detection_lag_s = -1.0;   ///< fired_at - degrade_start
  double firing_interval_s = -1.0; ///< resolved_at - fired_at
  double fast_burn_at_fire = 0.0;
  double slow_burn_at_fire = 0.0;
  double budget_remaining_at_fire = 1.0;

  bool ok() const { return healthy_clean && fired && resolved; }
};

inline bool FindSloStatus(const obs::SloEngine& slo, const std::string& name,
                          obs::SloStatus* out) {
  for (const obs::SloStatus& status : slo.Snapshot()) {
    if (status.name == name) {
      *out = status;
      return true;
    }
  }
  return false;
}

/// Runs the three-phase lifecycle against `objective_name`. Each tick
/// callback issues one unit of traffic (including any pacing sleep it
/// wants); the driver polls the alert state between ticks on the store's
/// clock. Ticks must be short relative to the burn windows.
inline SloDemoResult RunSloAlertLifecycle(
    const obs::TimeSeriesStore& store, const obs::SloEngine& slo,
    const std::string& objective_name,
    const std::function<void()>& healthy_tick,
    const std::function<void()>& degraded_tick,
    const SloDemoPhases& phases = {}) {
  SloDemoResult result;
  obs::SloStatus status;

  // Phase 1: healthy traffic until the slow window has real history.
  result.healthy_start_s = store.now_s();
  while (store.now_s() - result.healthy_start_s < phases.healthy_s) {
    healthy_tick();
  }
  result.healthy_clean = FindSloStatus(slo, objective_name, &status) &&
                         status.state != obs::AlertState::kFiring;

  // Phase 2: degrade until the alert fires (or we time out).
  result.degrade_start_s = store.now_s();
  while (store.now_s() - result.degrade_start_s < phases.fire_timeout_s) {
    degraded_tick();
    if (FindSloStatus(slo, objective_name, &status) &&
        status.state == obs::AlertState::kFiring) {
      result.fired = true;
      // fired_at_s is stamped by the sampler thread at the transition, so
      // the lag is not inflated by this poll loop's tick granularity.
      result.fired_at_s = status.fired_at_s;
      result.detection_lag_s = status.fired_at_s - result.degrade_start_s;
      result.fast_burn_at_fire = status.fast_burn;
      result.slow_burn_at_fire = status.slow_burn;
      result.budget_remaining_at_fire = status.budget_remaining;
      break;
    }
  }
  if (!result.fired) return result;

  // Phase 3: healthy traffic again until the bad samples age out of both
  // windows and the alert resolves.
  result.recover_start_s = store.now_s();
  while (store.now_s() - result.recover_start_s < phases.resolve_timeout_s) {
    healthy_tick();
    if (FindSloStatus(slo, objective_name, &status) &&
        status.state == obs::AlertState::kResolved) {
      result.resolved = true;
      result.resolved_at_s = status.resolved_at_s;
      result.firing_interval_s = status.resolved_at_s - result.fired_at_s;
      break;
    }
  }
  return result;
}

inline obs::JsonValue SloDemoResultToJson(const SloDemoResult& result) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("passed", obs::JsonValue(result.ok()));
  out.Set("healthy_clean", obs::JsonValue(result.healthy_clean));
  out.Set("fired", obs::JsonValue(result.fired));
  out.Set("resolved", obs::JsonValue(result.resolved));
  out.Set("healthy_start_s", obs::JsonValue(result.healthy_start_s));
  out.Set("degrade_start_s", obs::JsonValue(result.degrade_start_s));
  out.Set("fired_at_s", obs::JsonValue(result.fired_at_s));
  out.Set("resolved_at_s", obs::JsonValue(result.resolved_at_s));
  out.Set("detection_lag_s", obs::JsonValue(result.detection_lag_s));
  out.Set("firing_interval_s", obs::JsonValue(result.firing_interval_s));
  out.Set("fast_burn_at_fire", obs::JsonValue(result.fast_burn_at_fire));
  out.Set("slow_burn_at_fire", obs::JsonValue(result.slow_burn_at_fire));
  out.Set("budget_remaining_at_fire",
          obs::JsonValue(result.budget_remaining_at_fire));
  return out;
}

/// Read-modify-write merge of one loadgen's section into the shared
/// BENCH_obs.json, so serve_loadgen and stream_loadgen can both contribute
/// without clobbering each other. An unreadable or unparseable existing
/// file is replaced rather than fatal.
inline bool MergeObsReport(const std::string& path, const std::string& key,
                           obs::JsonValue section) {
  obs::JsonValue report = obs::JsonValue::Object();
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      obs::JsonValue existing;
      std::string error;
      if (obs::JsonValue::Parse(buffer.str(), &existing, &error) &&
          existing.is_object()) {
        report = std::move(existing);
      }
    }
  }
  report.Set("benchmark", obs::JsonValue("slo_alert_demo"));
  report.Set(key, std::move(section));
  std::ofstream out(path);
  if (!out) return false;
  out << report.Dump(2) << "\n";
  return static_cast<bool>(out);
}

}  // namespace bench
}  // namespace telekit

#endif  // TELEKIT_BENCH_SLO_DEMO_H_

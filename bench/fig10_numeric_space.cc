// Reproduces Fig. 10: the numeric-embedding space with and without the
// numerical contrastive loss L_nc. The paper shows that with L_nc, values
// map into the embedding space in order (a smooth color gradient in the
// 2-D projection); without it the space is unordered. We train two
// KTeleBERT re-runs differing only in L_nc, sweep values through ANEnc,
// project to 2-D (PCA), print coordinates, and report Spearman(value, PC1)
// plus the value-gap/embedding-distance correlation.
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "eval/metrics.h"
#include "tensor/ops.h"

namespace telekit {
namespace {

struct SpaceDiagnostics {
  double spearman_pc1 = 0.0;
  double distance_correlation = 0.0;
  std::vector<std::pair<double, double>> projected;
};

SpaceDiagnostics Diagnose(const core::KTeleBert& model,
                          const core::ModelZoo& zoo,
                          const std::string& tag_name, int sweep) {
  // Embed a value sweep for one tag through ANEnc.
  std::vector<int> tag_ids;
  for (const std::string& word :
       text::Tokenizer::SplitWords(tag_name)) {
    for (int id : zoo.tokenizer().WordToIds(word)) tag_ids.push_back(id);
  }
  tensor::Tensor tag_embedding =
      model.encoder().MeanTokenEmbedding(tag_ids);
  std::vector<std::vector<float>> points;
  std::vector<double> values;
  for (int i = 0; i < sweep; ++i) {
    const float v = static_cast<float>(i) / static_cast<float>(sweep - 1);
    points.push_back(model.anenc().Forward(tag_embedding, v).data());
    values.push_back(v);
  }
  SpaceDiagnostics out;
  out.projected = eval::PcaProject2d(points);
  std::vector<double> pc1;
  for (const auto& [x, y] : out.projected) pc1.push_back(x);
  out.spearman_pc1 = std::fabs(eval::SpearmanCorrelation(pc1, values));
  // Correlation between |v_i - v_j| and embedding distance.
  std::vector<double> value_gaps, distances;
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      value_gaps.push_back(std::fabs(values[i] - values[j]));
      double d = 0;
      for (size_t k = 0; k < points[i].size(); ++k) {
        const double diff = points[i][k] - points[j][k];
        d += diff * diff;
      }
      distances.push_back(std::sqrt(d));
    }
  }
  out.distance_correlation =
      eval::SpearmanCorrelation(value_gaps, distances);
  return out;
}

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ZooConfig config = bench::BenchZooConfig();
  // Stage-one models come from the shared cache; re-training is fresh.
  config.retrain.total_steps = 200;
  core::ModelZoo zoo(config);
  std::cerr << "[fig10] building data + stage-one models...\n";
  zoo.BuildPretrained();

  TablePrinter table(
      "Fig. 10: numeric-embedding space with vs. without L_nc");
  table.SetHeader({"Setting", "tag", "|Spearman(value, PC1)|",
                   "Spearman(value gap, distance)"});

  const std::string tag = zoo.world().kpis()[0].name;
  const std::string tag2 = zoo.world().kpis()[1].name;
  for (bool use_nc : {true, false}) {
    std::cerr << "[fig10] re-training with L_nc="
              << (use_nc ? "on" : "off") << "\n";
    core::KTeleBertConfig ktb_config;
    ktb_config.encoder = zoo.config().encoder;
    ktb_config.anenc = zoo.config().anenc;
    ktb_config.num_tags = zoo.num_tags();
    Rng rng(config.seed ^ (use_nc ? 0x10ULL : 0x20ULL));
    core::KTeleBert model(ktb_config, rng);
    TELEKIT_CHECK(model.InitializeFromTeleBert(zoo.telebert()).ok());
    core::ReTrainOptions options = config.retrain;
    options.strategy = core::TrainingStrategy::kStl;
    options.use_numeric_contrastive = use_nc;
    core::ReTrainer trainer(model, options);
    Rng train_rng(config.seed ^ 0x30ULL);
    trainer.Train(zoo.retrain_data(), train_rng);

    for (const std::string& t : {tag, tag2}) {
      SpaceDiagnostics diag = Diagnose(model, zoo, t, 24);
      table.AddRow({std::string(use_nc ? "with L_nc" : "w/o L_nc"), t,
                    StringPrintf("%.3f", diag.spearman_pc1),
                    StringPrintf("%.3f", diag.distance_correlation)});
    }
  }
  table.Print(std::cout);
  std::cout << "Shape check: 'with L_nc' should show higher ordering "
               "correlations — values map into the space in order, as in "
               "Fig. 10(b).\n";
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

// Reproduces Table IV: root-cause analysis results (MR, Hits@1/3/5) for
// every encoder row, under 5-fold cross-validation on synthetic states.
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "synth/task_data.h"
#include "tasks/embed.h"
#include "tasks/rca.h"

namespace telekit {
namespace {

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ModelZoo zoo(bench::BenchZooConfig());
  std::cerr << "[table4] building model zoo (cached after first run)...\n";
  zoo.Build();

  synth::RcaDataGen gen(zoo.world(), zoo.log_generator());
  Rng data_rng(zoo.config().seed ^ 0xAAA1ULL);
  synth::RcaDataset dataset =
      gen.Generate(synth::RcaDataConfig{.num_graphs = 127}, data_rng);

  TablePrinter table("Table IV: Evaluation results for root-cause analysis");
  table.SetHeader({"Method", "MR (down)", "Hits@1", "Hits@3", "Hits@5"});
  const auto reference = bench::PaperReference::RcaTable();
  for (core::ModelKind kind : core::AllModelKinds()) {
    if (kind == core::ModelKind::kWordEmbedding) continue;  // not in Table IV
    std::cerr << "[table4] evaluating " << core::ModelKindName(kind) << "\n";
    core::ServiceEncoder service = zoo.MakeServiceEncoder(kind);
    auto embeddings = tasks::EmbedSurfaces(
        service, dataset.feature_surfaces,
        core::ServiceMode::kEntityWithAttr);
    // Average over repeated cross-validation (different fold splits, same
    // for every model) to damp fold noise on 127 graphs.
    constexpr int kRepeats = 3;
    tasks::RcaResult result;
    for (int rep = 0; rep < kRepeats; ++rep) {
      Rng rng(zoo.config().seed ^ (0xBBB2ULL + static_cast<uint64_t>(rep)));
      tasks::RcaOptions options;
      tasks::RcaResult one =
          tasks::RunRcaCrossValidation(dataset, embeddings, options, rng);
      result.mean_rank += one.mean_rank / kRepeats;
      result.hits1 += one.hits1 / kRepeats;
      result.hits3 += one.hits3 / kRepeats;
      result.hits5 += one.hits5 / kRepeats;
    }
    table.AddRow(core::ModelKindName(kind),
                 {result.mean_rank, result.hits1, result.hits3, result.hits5});
    bench::AddPaperRow(table, kind, reference);
  }
  table.Print(std::cout);
  std::cout << "Shape check: KTeleBERT variants should beat TeleBERT, which "
               "beats MacBERT and Random; w/o ANEnc should fall below "
               "KTeleBERT-STL.\n";
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

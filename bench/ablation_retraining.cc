// Ablation bench for the re-training design choices DESIGN.md calls out:
// masking rate (15% vs 40%, Sec. IV-C), orthogonal regularization on/off
// (Eq. 8), auto-weighted loss fusion vs plain sum (Sec. IV-B4), and the
// individual numeric objectives. Each setting re-trains KTeleBERT-STL and
// reports tail losses plus a numeric-regression probe (how well NDec
// recovers held-out values).
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "tensor/ops.h"

namespace telekit {
namespace {

struct Setting {
  std::string name;
  float mask_rate = 0.4f;
  float orthogonal_lambda = 1e-4f;
  bool auto_weighting = true;
  bool use_nc = true;
  bool use_tgc = true;
};

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ZooConfig config = bench::BenchZooConfig();
  // stage-one cache reused; variants are trained fresh below
  config.retrain.total_steps = 150;
  core::ModelZoo zoo(config);
  std::cerr << "[ablation] building data + stage-one models...\n";
  zoo.BuildPretrained();

  const Setting settings[] = {
      {.name = "full (40% WWM, orth, auto-weight, L_nc, TGC)"},
      {.name = "mask rate 15%", .mask_rate = 0.15f},
      {.name = "w/o orthogonal reg", .orthogonal_lambda = 0.0f},
      {.name = "plain-sum loss fusion", .auto_weighting = false},
      {.name = "w/o L_nc", .use_nc = false},
      {.name = "w/o TGC", .use_tgc = false},
  };

  TablePrinter table("Ablation: re-training design choices (tail losses)");
  table.SetHeader({"Setting", "mask loss", "reg loss", "nc loss",
                   "total loss"});
  for (const Setting& setting : settings) {
    std::cerr << "[ablation] " << setting.name << "\n";
    core::KTeleBertConfig ktb_config;
    ktb_config.encoder = zoo.config().encoder;
    ktb_config.anenc = zoo.config().anenc;
    ktb_config.num_tags = zoo.num_tags();
    ktb_config.orthogonal_lambda = setting.orthogonal_lambda;
    Rng rng(config.seed ^ 0x77ULL);
    core::KTeleBert model(ktb_config, rng);
    TELEKIT_CHECK(model.InitializeFromTeleBert(zoo.telebert()).ok());
    core::ReTrainOptions options = config.retrain;
    options.strategy = core::TrainingStrategy::kStl;
    options.masking.mask_rate = setting.mask_rate;
    options.use_auto_weighting = setting.auto_weighting;
    options.use_numeric_contrastive = setting.use_nc;
    options.use_tag_classification = setting.use_tgc;
    core::ReTrainer trainer(model, options);
    Rng train_rng(config.seed ^ 0x88ULL);
    auto history = trainer.Train(zoo.retrain_data(), train_rng);

    auto tail = [&](auto getter) {
      double total = 0;
      int count = 0;
      for (auto it = history.rbegin(); it != history.rend() && count < 20;
           ++it, ++count) {
        total += getter(*it);
      }
      return total / std::max(count, 1);
    };
    table.AddRow(setting.name,
                 {tail([](const core::ReTrainStats& s) { return s.mask_loss; }),
                  tail([](const core::ReTrainStats& s) { return s.reg_loss; }),
                  tail([](const core::ReTrainStats& s) { return s.nc_loss; }),
                  tail([](const core::ReTrainStats& s) {
                    return s.total_loss;
                  })},
                 3);
  }
  table.Print(std::cout);
  std::cout << "Notes: 15% masking lowers the mask loss (easier task); "
               "disabling L_nc zeroes the nc column; the auto-weighted "
               "fusion changes the total-loss scale (it includes the "
               "log(1+mu^2) regularizers).\n";
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

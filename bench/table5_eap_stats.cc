// Reproduces Table V: data statistics for event association prediction
// (#Events, #positive/#negative pairs, #MDAF packages, #Network Elements).
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "synth/task_data.h"

namespace telekit {
namespace {

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ZooConfig config = bench::BenchZooConfig();
  synth::WorldModel world(config.world);
  synth::LogGenerator logs(world, config.log);
  synth::EapDataGen gen(world, logs);
  Rng rng(config.seed ^ 0xCCC3ULL);
  synth::EapDataset dataset =
      gen.Generate(synth::EapDataConfig{.num_packages = 104}, rng);

  const int positives = dataset.NumPositive();
  TablePrinter table(
      "Table V: Data statistics for event association prediction");
  table.SetHeader({"Source", "#Events", "#Pairs (pos)", "#Pairs (neg)",
                   "#MDAF packages", "#Network Elements"});
  table.AddRow("TeleKit (synthetic)",
               {static_cast<double>(dataset.num_events_used),
                static_cast<double>(positives),
                static_cast<double>(dataset.pairs.size() - positives),
                static_cast<double>(dataset.num_packages),
                static_cast<double>(dataset.topology.num_nodes)},
               0);
  table.AddRow("Paper", {86, 2141, 2141, 104, 31}, 0);
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

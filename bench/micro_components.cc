// Component micro-benchmarks (google-benchmark): tensor kernels, tokenizer
// throughput, ANEnc / transformer / GCN forward passes. These are the
// building blocks whose cost dominates the table benches.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/anenc.h"
#include "core/transformer.h"
#include "graph/gcn.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"

namespace telekit {
namespace {

using tensor::Tensor;

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulBackward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    Tensor a = Tensor::Randn({n, n}, rng, 1.0f, true);
    Tensor b = Tensor::Randn({n, n}, rng, 1.0f, true);
    tensor::Sum(tensor::MatMul(a, b)).Backward();
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64);

void BM_Softmax(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::Randn({64, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Softmax(x));
  }
}
BENCHMARK(BM_Softmax);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::Randn({64, 64}, rng);
  Tensor g = Tensor::Ones({64});
  Tensor b = Tensor::Zeros({64});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::LayerNorm(x, g, b));
  }
}
BENCHMARK(BM_LayerNorm);

text::Tokenizer& BenchTokenizer() {
  static text::Tokenizer* const kTokenizer = [] {
    auto* tok = new text::Tokenizer(
        text::TokenizerOptions{.max_len = 24, .min_word_count = 1});
    std::vector<std::string> corpus;
    for (int i = 0; i < 50; ++i) {
      corpus.push_back(
          "the alarm triggers abnormal registration failures on the gateway");
      corpus.push_back("session establishment times out after congestion");
    }
    tok->BuildVocab(corpus);
    return tok;
  }();
  return *kTokenizer;
}

void BM_TokenizerEncode(benchmark::State& state) {
  const std::string sentence =
      "the alarm triggers abnormal registration failures on the gateway";
  for (auto _ : state) {
    benchmark::DoNotOptimize(BenchTokenizer().EncodeSentence(sentence));
  }
}
BENCHMARK(BM_TokenizerEncode);

void BM_PromptEncode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(BenchTokenizer().Encode(
        text::PromptBuilder()
            .Alarm("registration failures")
            .Attribute("severity", "major")
            .Kpi("session establishment", 0.6f)
            .Build()));
  }
}
BENCHMARK(BM_PromptEncode);

void BM_AnEncForward(benchmark::State& state) {
  Rng rng(5);
  core::AnEncConfig config;
  config.d_model = 64;
  core::AnEnc anenc(config, rng);
  Tensor tag = Tensor::Randn({1, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anenc.Forward(tag, 0.5f));
  }
}
BENCHMARK(BM_AnEncForward);

void BM_TransformerForward(benchmark::State& state) {
  Rng rng(6);
  core::EncoderConfig config;
  config.vocab_size = 1000;
  config.d_model = 64;
  config.num_heads = 4;
  config.num_layers = 2;
  config.ffn_dim = 128;
  config.max_len = 24;
  core::TransformerEncoder encoder(config, rng);
  std::vector<int> ids(20);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = 14 + static_cast<int>(i) % 500;
  }
  Rng eval(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(ids, 20, eval, false));
  }
}
BENCHMARK(BM_TransformerForward);

void BM_GcnForward(benchmark::State& state) {
  Rng rng(7);
  graph::Graph g{.num_nodes = 11, .edges = {}};
  for (int i = 1; i < 11; ++i) g.edges.emplace_back(i - 1, i);
  Tensor adjacency = graph::NormalizedAdjacency(g);
  graph::GcnStack stack({64, 64, 32}, rng);
  Tensor features = Tensor::Randn({11, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.Forward(adjacency, features));
  }
}
BENCHMARK(BM_GcnForward);

}  // namespace
}  // namespace telekit

BENCHMARK_MAIN();

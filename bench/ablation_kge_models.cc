// Scorer ablation for fault chain tracing: the paper's substrate
// (NeuralKG) ships multiple KGE scorers; Sec. V-D uses a generalized
// translation-based model. This bench swaps the scorer (TransE / TransH /
// RotatE / DistMult, all confidence-aware) on the same FCT dataset with
// random initialization, isolating the scoring-function choice.
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "kg/kge_zoo.h"
#include "synth/task_data.h"
#include "tasks/fct.h"

namespace telekit {
namespace {

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ZooConfig config = bench::BenchZooConfig();
  synth::WorldModel world(config.world);
  synth::LogGenerator logs(world, config.log);
  synth::FctDataGen gen(world, logs);
  Rng data_rng(config.seed ^ 0xDDD4ULL);
  synth::FctDataset dataset = gen.Generate(bench::BenchFctConfig(), data_rng);
  std::cerr << "[kge-ablation] " << dataset.train.size() << " train / "
            << dataset.test.size() << " test hops\n";

  const std::vector<kg::EntityId> candidates =
      tasks::FilterCandidates(dataset);

  TablePrinter table("FCT scorer ablation (random init, Table VIII setup)");
  table.SetHeader({"Scorer", "MRR", "Hits@1", "Hits@3", "Hits@10"});
  for (kg::KgeModelKind kind :
       {kg::KgeModelKind::kTransE, kg::KgeModelKind::kTransH,
        kg::KgeModelKind::kRotatE, kg::KgeModelKind::kDistMult}) {
    std::cerr << "[kge-ablation] training " << kg::KgeModelKindName(kind)
              << "\n";
    tasks::FctOptions options;  // same hyperparameters as Table VIII
    Rng rng(config.seed ^ 0xABCD01ULL);
    auto model =
        kg::MakeKgeModel(kind, dataset.store.num_entities(),
                         dataset.store.num_relations(), options.kge, rng);
    kg::NegativeSampler sampler(dataset.store);
    model->Fit(dataset.train, sampler, rng);

    eval::RankingAccumulator acc;
    for (const kg::Quadruple& q : dataset.test) {
      std::vector<kg::EntityId> filtered;
      for (kg::EntityId c : candidates) {
        if (c != q.tail && dataset.store.HasTriple(q.head, q.relation, c)) {
          continue;
        }
        filtered.push_back(c);
      }
      acc.AddRank(model->RankOfTail(q.head, q.relation, q.tail, filtered));
    }
    table.AddRow(kg::KgeModelKindName(kind),
                 {100.0 * acc.MeanReciprocalRank(), acc.HitsAt(1),
                  acc.HitsAt(3), acc.HitsAt(10)},
                 1);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

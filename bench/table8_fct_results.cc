// Reproduces Table VIII: fault chain tracing results
// (MRR, Hits@1, Hits@3, Hits@10) for every encoder row.
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "synth/task_data.h"
#include "tasks/embed.h"
#include "tasks/fct.h"

namespace telekit {
namespace {

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ModelZoo zoo(bench::BenchZooConfig());
  std::cerr << "[table8] building model zoo (cached after first run)...\n";
  zoo.Build();

  synth::FctDataGen gen(zoo.world(), zoo.log_generator());
  Rng data_rng(zoo.config().seed ^ 0xDDD4ULL);
  synth::FctDataset dataset =
      gen.Generate(bench::BenchFctConfig(), data_rng);

  TablePrinter table(
      "Table VIII: Evaluation results for fault chain tracing");
  table.SetHeader({"Method", "MRR", "Hits@1", "Hits@3", "Hits@10"});
  const auto reference = bench::PaperReference::FctTable();
  for (core::ModelKind kind : core::AllModelKinds()) {
    if (kind == core::ModelKind::kWordEmbedding) continue;  // not in table
    std::cerr << "[table8] evaluating " << core::ModelKindName(kind) << "\n";
    constexpr int kRepeats = 3;
    tasks::FctResult result;
    std::vector<std::vector<float>> embeddings;
    if (kind != core::ModelKind::kRandom) {
      core::ServiceEncoder service = zoo.MakeServiceEncoder(kind);
      embeddings = tasks::EmbedSurfaces(service, dataset.node_surfaces,
                                        core::ServiceMode::kOnlyName);
    }
    for (int rep = 0; rep < kRepeats; ++rep) {
      tasks::FctOptions options;
      Rng rng(zoo.config().seed ^ (0xFFF6ULL + static_cast<uint64_t>(rep)));
      // Random row: randomly initialized entity embeddings (no services).
      tasks::FctResult one =
          kind == core::ModelKind::kRandom
              ? tasks::RunFct(dataset, nullptr, options, rng)
              : tasks::RunFct(dataset, &embeddings, options, rng);
      result.mrr += one.mrr / kRepeats;
      result.hits1 += one.hits1 / kRepeats;
      result.hits3 += one.hits3 / kRepeats;
      result.hits10 += one.hits10 / kRepeats;
    }
    table.AddRow(core::ModelKindName(kind),
                 {result.mrr, result.hits1, result.hits3, result.hits10}, 1);
    bench::AddPaperRow(table, kind, reference, 1);
  }
  table.Print(std::cout);
  std::cout << "Shape check: KTeleBERT rows (especially PMTL/IMTL) should "
               "clearly beat Random/MacBERT initialization.\n";
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

// Reproduces Table II: the multi-task learning strategy schedules
// (STL / PMTL / IMTL) — which task runs in which stage, with what
// objectives — plus the observed per-task losses under each schedule.
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"

namespace telekit {
namespace {

struct StrategyRow {
  core::TrainingStrategy strategy;
  const char* name;
  const char* objective;
};

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ZooConfig config = bench::BenchZooConfig();
  config.retrain.total_steps = 150;
  core::ModelZoo zoo(config);
  std::cerr << "[table2] building data + stage-one models...\n";
  zoo.BuildPretrained();

  const StrategyRow rows[] = {
      {core::TrainingStrategy::kStl, "STL", "L_num + L_mask"},
      {core::TrainingStrategy::kPmtl, "PMTL", "L_num + L_mask + L_ke"},
      {core::TrainingStrategy::kImtl, "IMTL",
       "staged: L_num+L_mask, then L_ke-dominant interleave"},
  };

  TablePrinter schedule("Table II: Training-strategy schedules (scaled)");
  schedule.SetHeader({"Strategy", "Steps", "Mask-task steps", "KE-task steps",
                      "Objective"});
  TablePrinter losses("Table II (observed): per-task losses after training");
  losses.SetHeader({"Strategy", "final mask loss", "final KE loss",
                    "final numeric (reg) loss"});

  for (const StrategyRow& row : rows) {
    std::cerr << "[table2] training " << row.name << "\n";
    core::ReTrainOptions options = config.retrain;
    options.strategy = row.strategy;
    Rng rng(config.seed ^ 0x2222ULL);
    core::KTeleBertConfig ktb_config;
    ktb_config.encoder = zoo.config().encoder;
    ktb_config.anenc = zoo.config().anenc;
    ktb_config.num_tags = zoo.num_tags();
    core::KTeleBert model(ktb_config, rng);
    TELEKIT_CHECK(model.InitializeFromTeleBert(zoo.telebert()).ok());
    core::ReTrainer trainer(model, options);
    Rng train_rng(config.seed ^ 0x3333ULL);
    auto history = trainer.Train(zoo.retrain_data(), train_rng);

    int mask_steps = 0, ke_steps = 0;
    for (const auto& s : history) {
      mask_steps += s.ran_mask_task;
      ke_steps += s.ran_ke_task;
    }
    schedule.AddRow({row.name, std::to_string(history.size()),
                     std::to_string(mask_steps), std::to_string(ke_steps),
                     row.objective});

    // Tail averages of each loss over the last 20 steps where it ran.
    auto tail_avg = [&](auto getter) {
      double total = 0;
      int count = 0;
      for (auto it = history.rbegin(); it != history.rend() && count < 20;
           ++it) {
        const double v = getter(*it);
        if (v > 0) {
          total += v;
          ++count;
        }
      }
      return count > 0 ? total / count : 0.0;
    };
    losses.AddRow(row.name,
                  {tail_avg([](const core::ReTrainStats& s) {
                     return s.mask_loss;
                   }),
                   tail_avg([](const core::ReTrainStats& s) {
                     return s.ke_loss;
                   }),
                   tail_avg([](const core::ReTrainStats& s) {
                     return s.reg_loss;
                   })},
                  3);
  }
  schedule.Print(std::cout);
  losses.Print(std::cout);
  std::cout << "Paper schedule (60k steps total): STL 60k mask; PMTL 50k "
               "mask + 60k KE in parallel; IMTL stages 40k/10k/10k mask and "
               "-/40k/20k KE.\n";
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

// Distributed-serving benchmark for the route subsystem. Runs an
// in-process fleet of real telekit_serve replicas (ModelHost +
// MakeServeLineHandler over NdjsonServer, loopback TCP) behind a Router
// and writes BENCH_route.json with three gated scenarios:
//
//   affinity      consistent-hash routing must beat random routing on the
//                 fleet-wide EmbeddingCache hit rate: hashing partitions
//                 the working set so each replica's share fits its cache,
//                 while random routing shows every replica every key.
//   availability  SIGKILL-equivalent (server Stop) of one replica under
//                 load: >= 99% of requests must still succeed via retry
//                 failover, the replica must be ejected, and after a
//                 restart the prober must readmit it.
//   reload        hot model swap (new bundle Installed on every replica)
//                 under load: zero failed requests, and responses must be
//                 observed from both the old and the new generation.
//   tracing       distributed tracing priced and proven: recording every
//                 hop span must cost <= 5% routed throughput (SpanStore
//                 on vs off), and one traced request must assemble into a
//                 span tree whose router attempt parents the replica's
//                 serve-side spans.
//
// The exit code is the acceptance gate: 0 only when all four hold.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flag_parse.h"
#include "common/table_printer.h"
#include "core/model_zoo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/spanstore.h"
#include "route/router.h"
#include "route/trace_assembler.h"
#include "serve/engine.h"
#include "serve/model_host.h"
#include "serve/ndjson_server.h"
#include "serve/protocol.h"

namespace telekit {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

struct RouteBenchFlags {
  int replicas = 3;
  int clients = 4;
  int passes = 4;          // affinity sweeps over the working set
  int working_set = 96;    // distinct request texts
  int cache_capacity = 48; // per-replica EmbeddingCache entries
  std::string out = "BENCH_route.json";
};

/// One in-process telekit_serve replica: its own ModelHost (own engine,
/// own cache) over the shared zoo weights, fronted by an NdjsonServer.
struct Replica {
  std::unique_ptr<serve::ModelHost> host;
  std::atomic<bool> draining{false};
  serve::NdjsonServer server;
  serve::LineHandler handler;
  int port = 0;

  bool Start(int fixed_port = 0) {
    if (!server.Start(fixed_port, handler)) return false;
    port = server.port();
    return true;
  }
};

serve::EngineOptions ReplicaEngineOptions(const RouteBenchFlags& flags) {
  serve::EngineOptions options;
  options.num_workers = 2;
  options.cache_capacity = static_cast<size_t>(flags.cache_capacity);
  options.cache_shards = 2;
  return options;
}

std::unique_ptr<Replica> MakeReplica(std::shared_ptr<core::ModelZoo> zoo,
                                     const RouteBenchFlags& flags) {
  auto replica = std::make_unique<Replica>();
  replica->host = std::make_unique<serve::ModelHost>("telebert");
  auto bundle = serve::BuildModelBundle("telebert", std::move(zoo),
                                        ReplicaEngineOptions(flags));
  TELEKIT_CHECK(bundle.ok()) << bundle.status().ToString();
  replica->host->Install(std::move(bundle).value());
  replica->handler =
      serve::MakeServeLineHandler(replica->host.get(), &replica->draining);
  TELEKIT_CHECK(replica->Start());
  return replica;
}

std::vector<route::ReplicaSpec> SpecsFor(
    const std::vector<std::unique_ptr<Replica>>& fleet) {
  std::vector<route::ReplicaSpec> specs;
  for (const auto& replica : fleet) {
    route::ReplicaSpec spec;
    spec.port = replica->port;
    spec.name = "127.0.0.1:" + std::to_string(replica->port);
    specs.push_back(spec);
  }
  return specs;
}

std::vector<std::string> MakeWorkingSet(int size) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    keys.push_back("fault surface k" + std::to_string(i) +
                   " link degradation alarm");
  }
  return keys;
}

std::string RequestLineFor(const std::string& text, int sequence) {
  obs::JsonValue json = obs::JsonValue::Object();
  json.Set("op", obs::JsonValue("encode"));
  json.Set("text", obs::JsonValue(text));
  json.Set("id", obs::JsonValue("r" + std::to_string(sequence)));
  return json.Dump();
}

struct TrafficResult {
  int total = 0;
  int ok = 0;
  int failed = 0;
  double seconds = 0.0;
  uint64_t min_generation = 0;
  uint64_t max_generation = 0;
};

/// Closed-loop traffic through the router: `clients` threads, each
/// sweeping its stripe of `passes` x `keys`, with `pace_us` between
/// requests (0 = as fast as the fleet answers).
TrafficResult DriveTraffic(route::Router& router,
                           const std::vector<std::string>& keys, int passes,
                           int clients, int pace_us) {
  TrafficResult result;
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  std::atomic<uint64_t> min_generation{~0ULL};
  std::atomic<uint64_t> max_generation{0};
  const int total = passes * static_cast<int>(keys.size());
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = c; i < total; i += clients) {
        const std::string& key = keys[static_cast<size_t>(i) % keys.size()];
        const std::string line = router.Handle(RequestLineFor(key, i));
        obs::JsonValue response;
        std::string error;
        bool success = obs::JsonValue::Parse(line, &response, &error);
        if (success) {
          const obs::JsonValue* ok_field = response.Find("ok");
          success = ok_field != nullptr && ok_field->AsBool();
        }
        if (success) {
          ok.fetch_add(1);
          if (const obs::JsonValue* gen = response.Find("generation")) {
            const uint64_t g = static_cast<uint64_t>(gen->AsNumber());
            uint64_t seen = min_generation.load();
            while (g < seen &&
                   !min_generation.compare_exchange_weak(seen, g)) {
            }
            seen = max_generation.load();
            while (g > seen &&
                   !max_generation.compare_exchange_weak(seen, g)) {
            }
          }
        } else {
          failed.fetch_add(1);
        }
        if (pace_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.total = total;
  result.ok = ok.load();
  result.failed = failed.load();
  result.min_generation =
      min_generation.load() == ~0ULL ? 0 : min_generation.load();
  result.max_generation = max_generation.load();
  return result;
}

/// Fleet-wide service-vector cache hit rate (sum over every replica's
/// engine).
double FleetCacheHitRate(const std::vector<std::unique_ptr<Replica>>& fleet) {
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (const auto& replica : fleet) {
    const serve::EngineStats stats =
        replica->host->Resolve("")->engine->GetStats();
    hits += stats.cache_hits;
    misses += stats.cache_misses;
  }
  const uint64_t lookups = hits + misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(lookups);
}

route::RouterOptions BenchRouterOptions() {
  route::RouterOptions options;
  options.hedge = false;  // hedging would blur per-replica attribution
  options.prober.interval_ms = 25.0;
  options.prober.timeout_ms = 200.0;
  options.prober.eject_after = 3;
  options.prober.readmit_after = 2;
  return options;
}

obs::JsonValue RunAffinityPolicy(std::shared_ptr<core::ModelZoo> zoo,
                                 const RouteBenchFlags& flags,
                                 route::RoutePolicy policy,
                                 double* hit_rate) {
  std::vector<std::unique_ptr<Replica>> fleet;
  for (int i = 0; i < flags.replicas; ++i) {
    fleet.push_back(MakeReplica(zoo, flags));
  }
  route::RouterOptions options = BenchRouterOptions();
  options.policy = policy;
  options.probe_override = [](size_t, double) { return true; };
  route::Router router(SpecsFor(fleet), options);
  const std::vector<std::string> keys = MakeWorkingSet(flags.working_set);
  const TrafficResult traffic =
      DriveTraffic(router, keys, flags.passes, flags.clients, /*pace_us=*/0);
  router.Stop();
  *hit_rate = FleetCacheHitRate(fleet);

  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("policy", obs::JsonValue(policy == route::RoutePolicy::kHashRing
                                       ? "hash_ring"
                                       : "random"));
  out.Set("requests", obs::JsonValue(traffic.total));
  out.Set("ok", obs::JsonValue(traffic.ok));
  out.Set("failed", obs::JsonValue(traffic.failed));
  out.Set("seconds", obs::JsonValue(traffic.seconds));
  out.Set("requests_per_sec",
          obs::JsonValue(traffic.total / std::max(1e-9, traffic.seconds)));
  out.Set("fleet_cache_hit_rate", obs::JsonValue(*hit_rate));
  for (auto& replica : fleet) replica->server.Stop();
  return out;
}

obs::JsonValue RunAvailability(std::shared_ptr<core::ModelZoo> zoo,
                               const RouteBenchFlags& flags, bool* passed) {
  std::vector<std::unique_ptr<Replica>> fleet;
  for (int i = 0; i < flags.replicas; ++i) {
    fleet.push_back(MakeReplica(zoo, flags));
  }
  route::RouterOptions options = BenchRouterOptions();
  // Default probe (ConnectTcp against the data port): a stopped server
  // refuses the connect, a restarted one accepts it.
  route::Router router(SpecsFor(fleet), options);
  router.Start();

  Replica* victim = fleet[0].get();
  const int victim_port = victim->port;
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    victim->server.Stop();  // SIGKILL-equivalent: connections die mid-flight
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    TELEKIT_CHECK(victim->Start(victim_port));
  });

  const std::vector<std::string> keys = MakeWorkingSet(flags.working_set);
  const TrafficResult traffic = DriveTraffic(
      router, keys, /*passes=*/12, flags.clients, /*pace_us=*/1000);
  chaos.join();

  // The restarted replica must be readmitted by probes alone (no traffic
  // reaches it while ejected).
  const Clock::time_point deadline = Clock::now() + std::chrono::seconds(3);
  while (router.prober().readmissions() == 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const uint64_t ejections = router.prober().ejections();
  const uint64_t readmissions = router.prober().readmissions();
  router.Stop();

  const double success_rate =
      traffic.total == 0
          ? 0.0
          : static_cast<double>(traffic.ok) / traffic.total;
  *passed = success_rate >= 0.99 && ejections >= 1 && readmissions >= 1;

  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("requests", obs::JsonValue(traffic.total));
  out.Set("ok", obs::JsonValue(traffic.ok));
  out.Set("failed", obs::JsonValue(traffic.failed));
  out.Set("success_rate", obs::JsonValue(success_rate));
  out.Set("seconds", obs::JsonValue(traffic.seconds));
  out.Set("ejections", obs::JsonValue(ejections));
  out.Set("readmissions", obs::JsonValue(readmissions));
  out.Set("passed", obs::JsonValue(*passed));
  for (auto& replica : fleet) replica->server.Stop();
  return out;
}

obs::JsonValue RunReload(std::shared_ptr<core::ModelZoo> zoo,
                         const RouteBenchFlags& flags, bool* passed) {
  std::vector<std::unique_ptr<Replica>> fleet;
  for (int i = 0; i < 2; ++i) fleet.push_back(MakeReplica(zoo, flags));
  route::RouterOptions options = BenchRouterOptions();
  options.probe_override = [](size_t, double) { return true; };
  route::Router router(SpecsFor(fleet), options);

  double reload_seconds = 0.0;
  std::thread reloader([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const Clock::time_point start = Clock::now();
    for (auto& replica : fleet) {
      auto bundle = serve::BuildModelBundle("telebert", zoo,
                                            ReplicaEngineOptions(flags));
      TELEKIT_CHECK(bundle.ok()) << bundle.status().ToString();
      replica->host->Install(std::move(bundle).value());
    }
    reload_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
  });

  const std::vector<std::string> keys = MakeWorkingSet(flags.working_set);
  const TrafficResult traffic = DriveTraffic(
      router, keys, /*passes=*/8, flags.clients, /*pace_us=*/500);
  reloader.join();
  router.Stop();

  // Zero-downtime gate: no request failed, and the stream straddled the
  // swap (both generations answered).
  *passed = traffic.failed == 0 && traffic.min_generation == 1 &&
            traffic.max_generation == 2;

  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("requests", obs::JsonValue(traffic.total));
  out.Set("ok", obs::JsonValue(traffic.ok));
  out.Set("failed", obs::JsonValue(traffic.failed));
  out.Set("seconds", obs::JsonValue(traffic.seconds));
  out.Set("reload_seconds", obs::JsonValue(reload_seconds));
  out.Set("min_generation_seen",
          obs::JsonValue(traffic.min_generation));
  out.Set("max_generation_seen",
          obs::JsonValue(traffic.max_generation));
  out.Set("passed", obs::JsonValue(*passed));
  for (auto& replica : fleet) replica->server.Stop();
  return out;
}

/// Prices the distributed-tracing overhead and proves end-to-end span
/// assembly. The same warm fleet is driven with the SpanStore off and on
/// (alternating rounds, best-of to damp scheduler drift); then one traced
/// request is assembled via CollectSpans and must produce a single tree
/// with the router's attempt span parenting the replica's serve spans.
obs::JsonValue RunTracing(std::shared_ptr<core::ModelZoo> zoo,
                          const RouteBenchFlags& flags, bool* passed) {
  std::vector<std::unique_ptr<Replica>> fleet;
  for (int i = 0; i < 2; ++i) fleet.push_back(MakeReplica(zoo, flags));
  route::RouterOptions options = BenchRouterOptions();
  options.probe_override = [](size_t, double) { return true; };
  route::Router router(SpecsFor(fleet), options);
  const std::vector<std::string> keys = MakeWorkingSet(flags.working_set);

  auto& store = obs::SpanStore::Global();
  store.Reset();
  // Warm caches and connection pools before timing anything.
  DriveTraffic(router, keys, 1, flags.clients, /*pace_us=*/0);
  // The per-span cost is a mutex-guarded ring write, far below this VM's
  // scheduler jitter, so single A/B windows flap by several percent. Many
  // short interleaved slices — alternating which mode goes first — make
  // the slow drift hit both modes equally; the aggregate totals then
  // compare like-for-like.
  double off_requests = 0.0, off_seconds = 0.0;
  double on_requests = 0.0, on_seconds = 0.0;
  const auto slice = [&](bool enabled) {
    store.set_enabled(enabled);
    const TrafficResult r =
        DriveTraffic(router, keys, flags.passes, flags.clients, 0);
    (enabled ? on_requests : off_requests) += r.total;
    (enabled ? on_seconds : off_seconds) += r.seconds;
  };
  for (int round = 0; round < 8; ++round) {
    const bool on_first = (round % 2) == 1;
    slice(on_first);
    slice(!on_first);
  }
  const double rps_off = off_requests / std::max(1e-9, off_seconds);
  const double rps_on = on_requests / std::max(1e-9, on_seconds);
  const double overhead_pct =
      rps_off <= 0.0 ? 0.0 : 100.0 * (1.0 - rps_on / rps_off);

  // One traced request, assembled from the local store (the in-process
  // fleet shares it — exactly the dedup topology CollectSpans handles).
  store.set_enabled(true);
  store.Reset();
  obs::JsonValue traced = obs::JsonValue::Object();
  traced.Set("op", obs::JsonValue("encode"));
  traced.Set("text", obs::JsonValue(keys[0]));
  traced.Set("id", obs::JsonValue("traced"));
  traced.Set("trace", obs::JsonValue("00000000000b12c4"));
  obs::JsonValue response;
  std::string parse_error;
  const bool responded =
      obs::JsonValue::Parse(router.Handle(traced.Dump()), &response,
                            &parse_error) &&
      response.Find("ok") != nullptr && response.Find("ok")->AsBool();
  // Stop() joins any still-running attempt threads; their spans land in
  // the store before assembly (a hedge loser records after Handle returns).
  router.Stop();
  const obs::JsonValue tree = route::AssembleTraceJson(
      0xb12c4u, route::CollectSpans(0xb12c4u, {}, 100.0));
  bool tree_ok = false;
  const obs::JsonValue* spans = tree.Find("spans");
  if (responded && spans != nullptr && spans->size() == 1) {
    const obs::JsonValue& root = spans->at(0);
    if (root.Find("name")->AsString() == "route/request") {
      const obs::JsonValue* attempts = root.Find("children");
      for (size_t i = 0; attempts != nullptr && i < attempts->size(); ++i) {
        const obs::JsonValue& attempt = attempts->at(i);
        if (attempt.Find("name")->AsString() != "route/attempt") continue;
        const obs::JsonValue* hops = attempt.Find("children");
        for (size_t j = 0; hops != nullptr && j < hops->size(); ++j) {
          if (hops->at(j).Find("name")->AsString() == "serve/request") {
            tree_ok = true;
          }
        }
      }
    }
  }
  *passed = overhead_pct <= 5.0 && tree_ok;

  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("requests_per_sec_tracing_off", obs::JsonValue(rps_off));
  out.Set("requests_per_sec_tracing_on", obs::JsonValue(rps_on));
  out.Set("overhead_pct", obs::JsonValue(overhead_pct));
  out.Set("assembled_span_count", tree.Find("span_count") != nullptr
                                      ? *tree.Find("span_count")
                                      : obs::JsonValue());
  out.Set("assembled_hops",
          tree.Find("hops") != nullptr ? *tree.Find("hops")
                                       : obs::JsonValue());
  out.Set("assembled_tree_ok", obs::JsonValue(tree_ok));
  out.Set("passed", obs::JsonValue(*passed));
  for (auto& replica : fleet) replica->server.Stop();
  return out;
}

int Main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  RouteBenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("replicas"))
      flags.replicas =
          static_cast<int>(ParseIntFlagOrDie("replicas", v, 1, 64));
    else if (const char* v = value("clients"))
      flags.clients =
          static_cast<int>(ParseIntFlagOrDie("clients", v, 1, 1024));
    else if (const char* v = value("passes"))
      flags.passes =
          static_cast<int>(ParseIntFlagOrDie("passes", v, 1, 1 << 20));
    else if (const char* v = value("working-set"))
      flags.working_set =
          static_cast<int>(ParseIntFlagOrDie("working-set", v, 1, 1 << 20));
    else if (const char* v = value("cache-capacity"))
      flags.cache_capacity = static_cast<int>(
          ParseIntFlagOrDie("cache-capacity", v, 0, int64_t{1} << 30));
    else if (const char* v = value("out")) flags.out = v;
  }

  // An untrained encoder costs the same per request as a trained one, so
  // routing/caching behaviour transfers and startup stays in seconds.
  core::ZooConfig config;
  config.seed = 20230402;
  config.world.num_alarm_types = 32;
  config.corpus.num_tele_sentences = 800;
  config.corpus.num_general_sentences = 800;
  config.num_episodes = 20;
  config.pretrain.steps = 0;
  config.cache_dir = "";
  auto zoo = std::make_shared<core::ModelZoo>(config);
  zoo->BuildData();
  zoo->BuildPretrained();

  std::cout << "route_bench: " << flags.replicas << " replicas, "
            << flags.clients << " clients, working set "
            << flags.working_set << " (cache " << flags.cache_capacity
            << "/replica)\n";

  double hash_hit_rate = 0.0;
  double random_hit_rate = 0.0;
  obs::JsonValue hash_run = RunAffinityPolicy(
      zoo, flags, route::RoutePolicy::kHashRing, &hash_hit_rate);
  obs::JsonValue random_run = RunAffinityPolicy(
      zoo, flags, route::RoutePolicy::kRandom, &random_hit_rate);
  const bool affinity_passed = hash_hit_rate > random_hit_rate + 0.10;

  bool availability_passed = false;
  obs::JsonValue availability =
      RunAvailability(zoo, flags, &availability_passed);
  bool reload_passed = false;
  obs::JsonValue reload = RunReload(zoo, flags, &reload_passed);
  bool tracing_passed = false;
  obs::JsonValue tracing = RunTracing(zoo, flags, &tracing_passed);

  TablePrinter table("Distributed serving (route_bench)");
  table.SetHeader({"scenario", "value"});
  table.AddRow("affinity/hash", {hash_hit_rate}, 3);
  table.AddRow("affinity/random", {random_hit_rate}, 3);
  table.AddRow("availability/success",
               {availability.Find("success_rate")->AsNumber()}, 4);
  table.AddRow("reload/failed",
               {reload.Find("failed")->AsNumber()}, 0);
  table.AddRow("tracing/overhead_pct",
               {tracing.Find("overhead_pct")->AsNumber()}, 2);
  table.Print(std::cout);
  std::cout << "\naffinity:     hash " << hash_hit_rate << " vs random "
            << random_hit_rate << " (gate: hash > random + 0.10) "
            << (affinity_passed ? "PASS" : "FAIL") << "\navailability: "
            << availability.Find("success_rate")->AsNumber()
            << " success, " << availability.Find("ejections")->AsNumber()
            << " ejections, " << availability.Find("readmissions")->AsNumber()
            << " readmissions (gate: >= 0.99 + eject + readmit) "
            << (availability_passed ? "PASS" : "FAIL") << "\nreload:       "
            << reload.Find("failed")->AsNumber() << " failed, generations "
            << reload.Find("min_generation_seen")->AsNumber() << " -> "
            << reload.Find("max_generation_seen")->AsNumber()
            << " (gate: 0 failed, both generations) "
            << (reload_passed ? "PASS" : "FAIL") << "\ntracing:      "
            << tracing.Find("overhead_pct")->AsNumber()
            << "% overhead, tree "
            << (tracing.Find("assembled_tree_ok")->AsBool() ? "assembled"
                                                            : "broken")
            << " (gate: <= 5% + router->serve span tree) "
            << (tracing_passed ? "PASS" : "FAIL") << "\n";

  obs::JsonValue report = obs::JsonValue::Object();
  report.Set("benchmark", obs::JsonValue("route_bench"));
  obs::JsonValue cfg = obs::JsonValue::Object();
  cfg.Set("replicas", obs::JsonValue(flags.replicas));
  cfg.Set("clients", obs::JsonValue(flags.clients));
  cfg.Set("passes", obs::JsonValue(flags.passes));
  cfg.Set("working_set", obs::JsonValue(flags.working_set));
  cfg.Set("cache_capacity_per_replica",
          obs::JsonValue(flags.cache_capacity));
  report.Set("config", std::move(cfg));
  obs::JsonValue affinity = obs::JsonValue::Object();
  affinity.Set("hash_ring", std::move(hash_run));
  affinity.Set("random", std::move(random_run));
  affinity.Set("hash_minus_random",
               obs::JsonValue(hash_hit_rate - random_hit_rate));
  affinity.Set("passed", obs::JsonValue(affinity_passed));
  report.Set("affinity", std::move(affinity));
  report.Set("availability", std::move(availability));
  report.Set("reload", std::move(reload));
  report.Set("tracing", std::move(tracing));
  const bool all_passed = affinity_passed && availability_passed &&
                          reload_passed && tracing_passed;
  report.Set("passed", obs::JsonValue(all_passed));

  std::ofstream out_file(flags.out);
  out_file << report.Dump(2) << "\n";
  std::cout << "wrote " << flags.out << "\n";
  return all_passed ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace telekit

int main(int argc, char** argv) { return telekit::bench::Main(argc, argv); }

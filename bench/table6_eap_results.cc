// Reproduces Table VI: event association prediction results
// (Accuracy, Precision, Recall, F1) for every encoder row.
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "synth/task_data.h"
#include "tasks/eap.h"
#include "tasks/embed.h"

namespace telekit {
namespace {

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ModelZoo zoo(bench::BenchZooConfig());
  std::cerr << "[table6] building model zoo (cached after first run)...\n";
  zoo.Build();

  synth::EapDataGen gen(zoo.world(), zoo.log_generator());
  Rng data_rng(zoo.config().seed ^ 0xCCC3ULL);
  synth::EapDataset dataset =
      gen.Generate(synth::EapDataConfig{.num_packages = 104}, data_rng);

  TablePrinter table(
      "Table VI: Evaluation results for event association prediction");
  table.SetHeader({"Method", "Accuracy", "Precision", "Recall", "F1-score"});
  const auto reference = bench::PaperReference::EapTable();
  for (core::ModelKind kind : core::AllModelKinds()) {
    if (kind == core::ModelKind::kRandom ||
        kind == core::ModelKind::kKTeleBertImtl) {
      continue;  // rows absent from Table VI
    }
    std::cerr << "[table6] evaluating " << core::ModelKindName(kind) << "\n";
    core::ServiceEncoder service = zoo.MakeServiceEncoder(kind);
    auto embeddings = tasks::EmbedSurfaces(
        service, dataset.event_surfaces,
        core::ServiceMode::kEntityWithAttr);
    constexpr int kRepeats = 3;
    tasks::EapResult result;
    for (int rep = 0; rep < kRepeats; ++rep) {
      Rng rng(zoo.config().seed ^ (0xEEE5ULL + static_cast<uint64_t>(rep)));
      tasks::EapOptions options;
      tasks::EapResult one =
          tasks::RunEapCrossValidation(dataset, embeddings, options, rng);
      result.accuracy += one.accuracy / kRepeats;
      result.precision += one.precision / kRepeats;
      result.recall += one.recall / kRepeats;
      result.f1 += one.f1 / kRepeats;
    }
    table.AddRow(core::ModelKindName(kind),
                 {result.accuracy, result.precision, result.recall,
                  result.f1},
                 1);
    bench::AddPaperRow(table, kind, reference, 1);
  }
  table.Print(std::cout);
  std::cout << "Shape check: KTeleBERT-STL should lead; TeleBERT beats "
               "MacBERT / Word Embeddings.\n";
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

// quant_eval: fp32-vs-int8 accuracy deltas on the three downstream tasks.
//
// Builds the zoo, generates the same RCA / EAP / FCT datasets as the
// table benches (same generator seeds), embeds each catalogue twice —
// through the fp32 ServiceEncoder and through the calibrated int8
// QuantizedEncoder twin — and runs the task evaluators on both embedding
// sets. Records per-task metrics and deltas into BENCH_serve.json under
// "int8_accuracy" (merging with the existing report) and exits 1 when any
// |delta| on a percent-valued metric exceeds the DESIGN.md §3.2 epsilon
// (5 percentage points; --fast doubles it, since its tiny corpus makes a
// single sample flip worth more than 3 points). Mean rank is reported but
// not gated (its scale tracks the candidate-set size, not a fixed range).
//
// Flags: --out=PATH (default BENCH_serve.json), --fast (tiny zoo +
// smaller datasets, for CI smoke), plus the shared
// --obs-json/--log-level/--compute-threads.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/qencode.h"
#include "synth/task_data.h"
#include "tasks/eap.h"
#include "tasks/embed.h"
#include "tasks/fct.h"
#include "tasks/rca.h"
#include "tensor/ops.h"

namespace telekit {
namespace {

// DESIGN.md §3.2 int8 accuracy budget, in percentage points (the task
// metrics are percent-valued). --fast runs on a corpus small enough that
// one flipped sample moves hits@1 by > 3 points, so it gets double.
constexpr double kEpsilon = 5.0;
constexpr double kFastEpsilon = 10.0;
constexpr int kRepeats = 3;

core::ZooConfig FastZooConfig() {
  core::ZooConfig config;
  config.seed = 777;
  config.world.num_alarm_types = 16;
  config.world.num_kpi_types = 8;
  config.world.num_network_elements = 12;
  config.corpus.num_tele_sentences = 400;
  config.corpus.num_general_sentences = 400;
  config.num_episodes = 10;
  config.max_machine_logs = 60;
  config.max_triple_sentences = 40;
  config.max_ke_triples = 30;
  config.encoder.d_model = 32;
  config.encoder.num_heads = 2;
  config.encoder.num_layers = 2;
  config.encoder.ffn_dim = 64;
  config.pretrain.steps = 8;
  config.pretrain.batch_size = 4;
  config.retrain.total_steps = 8;
  config.retrain.batch_size = 4;
  config.retrain.ke_batch_size = 2;
  config.anenc.num_layers = 1;
  config.anenc.num_meta = 4;
  config.anenc.ffn_dim = 32;
  config.cache_dir = "";
  return config;
}

// Builds the int8 twin for `kind` the same way serve's BuildModelBundle
// does: snapshot the trained encoder, ANEnc numeric slots stay fp32 via
// the override hook.
core::QuantizedEncoder MakeQuantized(const core::ModelZoo& zoo,
                                     core::ModelKind kind) {
  if (kind == core::ModelKind::kTeleBert) {
    return core::QuantizedEncoder(zoo.telebert().encoder());
  }
  const core::KTeleBert* ktb = &zoo.ktelebert(kind);
  core::QuantizedEncoder::OverrideHook hook;
  if (ktb->config().use_anenc) {
    hook = [ktb](const text::EncodedInput& input) {
      std::vector<std::pair<int, std::vector<float>>> overrides;
      tensor::NoGradGuard no_grad;
      for (const text::NumericSlot& slot : input.numeric_slots) {
        if (slot.position >= input.length) continue;
        tensor::Tensor tag = ktb->encoder().MeanTokenEmbedding(slot.tag_ids);
        overrides.emplace_back(slot.position,
                               ktb->anenc().Forward(tag, slot.value).data());
      }
      return overrides;
    };
  }
  return core::QuantizedEncoder(ktb->encoder(), std::move(hook));
}

std::vector<text::EncodedInput> BuildInputs(
    const core::ServiceEncoder& service,
    const std::vector<std::string>& surfaces, core::ServiceMode mode) {
  std::vector<text::EncodedInput> inputs;
  inputs.reserve(surfaces.size());
  for (const std::string& surface : surfaces) {
    inputs.push_back(service.BuildInput(surface, mode));
  }
  return inputs;
}

std::vector<const text::EncodedInput*> Pointers(
    const std::vector<text::EncodedInput>& inputs) {
  std::vector<const text::EncodedInput*> ptrs;
  ptrs.reserve(inputs.size());
  for (const auto& input : inputs) ptrs.push_back(&input);
  return ptrs;
}

// Whitened int8 embeddings of already-built inputs — the quantized mirror
// of tasks::EmbedSurfaces.
std::vector<std::vector<float>> EmbedInt8(
    const core::QuantizedEncoder& quantized,
    const std::vector<text::EncodedInput>& inputs) {
  std::vector<std::vector<float>> embeddings =
      quantized.EncodeBatch(Pointers(inputs));
  tasks::WhitenEmbeddings(embeddings);
  return embeddings;
}

struct MetricRow {
  std::string name;
  double fp32 = 0.0;
  double int8 = 0.0;
  bool gated = true;  // false for mean rank (unbounded scale)
};

obs::JsonValue MetricsJson(const std::vector<MetricRow>& rows,
                           double* max_gated_delta) {
  obs::JsonValue task = obs::JsonValue::Object();
  obs::JsonValue fp32 = obs::JsonValue::Object();
  obs::JsonValue int8 = obs::JsonValue::Object();
  obs::JsonValue delta = obs::JsonValue::Object();
  for (const MetricRow& row : rows) {
    fp32.Set(row.name, obs::JsonValue(row.fp32));
    int8.Set(row.name, obs::JsonValue(row.int8));
    const double d = row.int8 - row.fp32;
    delta.Set(row.name, obs::JsonValue(d));
    if (row.gated) *max_gated_delta = std::max(*max_gated_delta, std::abs(d));
  }
  task.Set("fp32", std::move(fp32));
  task.Set("int8", std::move(int8));
  task.Set("delta", std::move(delta));
  return task;
}

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  std::string out_path = "BENCH_serve.json";
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    if (arg == "--fast") fast = true;
  }

  core::ModelZoo zoo(fast ? FastZooConfig() : bench::BenchZooConfig());
  std::cerr << "[quant_eval] building model zoo"
            << (fast ? " (--fast)" : " (cached after first run)") << "...\n";
  zoo.Build();

  // Same datasets (and generator seeds) as table4/table6/table8 so the
  // fp32 columns line up with the table benches.
  synth::RcaDataGen rca_gen(zoo.world(), zoo.log_generator());
  Rng rca_rng(zoo.config().seed ^ 0xAAA1ULL);
  synth::RcaDataset rca_data = rca_gen.Generate(
      synth::RcaDataConfig{.num_graphs = fast ? 32 : 127}, rca_rng);
  synth::EapDataGen eap_gen(zoo.world(), zoo.log_generator());
  Rng eap_rng(zoo.config().seed ^ 0xCCC3ULL);
  synth::EapDataset eap_data = eap_gen.Generate(
      synth::EapDataConfig{.num_packages = fast ? 32 : 104}, eap_rng);
  synth::FctDataGen fct_gen(zoo.world(), zoo.log_generator());
  Rng fct_rng(zoo.config().seed ^ 0xDDD4ULL);
  synth::FctDataConfig fct_config = bench::BenchFctConfig();
  if (fast) fct_config.num_chains = 60;
  synth::FctDataset fct_data = fct_gen.Generate(fct_config, fct_rng);

  obs::JsonValue models = obs::JsonValue::Array();
  double worst_delta = 0.0;
  for (core::ModelKind kind :
       {core::ModelKind::kTeleBert, core::ModelKind::kKTeleBertStl}) {
    std::cerr << "[quant_eval] evaluating " << core::ModelKindName(kind)
              << "\n";
    core::ServiceEncoder service = zoo.MakeServiceEncoder(kind);
    core::QuantizedEncoder quantized = MakeQuantized(zoo, kind);

    const auto rca_inputs = BuildInputs(service, rca_data.feature_surfaces,
                                        core::ServiceMode::kEntityWithAttr);
    const auto eap_inputs = BuildInputs(service, eap_data.event_surfaces,
                                        core::ServiceMode::kEntityWithAttr);
    const auto fct_inputs = BuildInputs(service, fct_data.node_surfaces,
                                        core::ServiceMode::kOnlyName);
    {
      // Calibrate activation clips over everything this eval will encode.
      std::vector<const text::EncodedInput*> all = Pointers(rca_inputs);
      for (const auto& input : eap_inputs) all.push_back(&input);
      for (const auto& input : fct_inputs) all.push_back(&input);
      quantized.Calibrate(all);
    }

    const auto rca_fp32 = tasks::EmbedSurfaces(
        service, rca_data.feature_surfaces,
        core::ServiceMode::kEntityWithAttr);
    const auto eap_fp32 = tasks::EmbedSurfaces(
        service, eap_data.event_surfaces,
        core::ServiceMode::kEntityWithAttr);
    const auto fct_fp32 = tasks::EmbedSurfaces(service, fct_data.node_surfaces,
                                               core::ServiceMode::kOnlyName);
    const auto rca_int8 = EmbedInt8(quantized, rca_inputs);
    const auto eap_int8 = EmbedInt8(quantized, eap_inputs);
    const auto fct_int8 = EmbedInt8(quantized, fct_inputs);

    tasks::RcaResult rca32, rca8;
    tasks::EapResult eap32, eap8;
    tasks::FctResult fct32, fct8;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const uint64_t r = static_cast<uint64_t>(rep);
      // Same fold seeds for both precisions: the delta isolates
      // quantization, not fold noise.
      tasks::RcaOptions rca_options;
      Rng rng_a(zoo.config().seed ^ (0xBBB2ULL + r));
      Rng rng_b(zoo.config().seed ^ (0xBBB2ULL + r));
      tasks::RcaResult one32 =
          tasks::RunRcaCrossValidation(rca_data, rca_fp32, rca_options, rng_a);
      tasks::RcaResult one8 =
          tasks::RunRcaCrossValidation(rca_data, rca_int8, rca_options, rng_b);
      rca32.mean_rank += one32.mean_rank / kRepeats;
      rca32.hits1 += one32.hits1 / kRepeats;
      rca32.hits3 += one32.hits3 / kRepeats;
      rca32.hits5 += one32.hits5 / kRepeats;
      rca8.mean_rank += one8.mean_rank / kRepeats;
      rca8.hits1 += one8.hits1 / kRepeats;
      rca8.hits3 += one8.hits3 / kRepeats;
      rca8.hits5 += one8.hits5 / kRepeats;

      tasks::EapOptions eap_options;
      Rng rng_c(zoo.config().seed ^ (0xEEE5ULL + r));
      Rng rng_d(zoo.config().seed ^ (0xEEE5ULL + r));
      tasks::EapResult two32 =
          tasks::RunEapCrossValidation(eap_data, eap_fp32, eap_options, rng_c);
      tasks::EapResult two8 =
          tasks::RunEapCrossValidation(eap_data, eap_int8, eap_options, rng_d);
      eap32.accuracy += two32.accuracy / kRepeats;
      eap32.precision += two32.precision / kRepeats;
      eap32.recall += two32.recall / kRepeats;
      eap32.f1 += two32.f1 / kRepeats;
      eap8.accuracy += two8.accuracy / kRepeats;
      eap8.precision += two8.precision / kRepeats;
      eap8.recall += two8.recall / kRepeats;
      eap8.f1 += two8.f1 / kRepeats;

      tasks::FctOptions fct_options;
      fct_options.kge.dim = service.dim();  // KGE entity dim = encoder dim
      Rng rng_e(zoo.config().seed ^ (0xFFF6ULL + r));
      Rng rng_f(zoo.config().seed ^ (0xFFF6ULL + r));
      tasks::FctResult three32 =
          tasks::RunFct(fct_data, &fct_fp32, fct_options, rng_e);
      tasks::FctResult three8 =
          tasks::RunFct(fct_data, &fct_int8, fct_options, rng_f);
      fct32.mrr += three32.mrr / kRepeats;
      fct32.hits1 += three32.hits1 / kRepeats;
      fct32.hits3 += three32.hits3 / kRepeats;
      fct32.hits10 += three32.hits10 / kRepeats;
      fct8.mrr += three8.mrr / kRepeats;
      fct8.hits1 += three8.hits1 / kRepeats;
      fct8.hits3 += three8.hits3 / kRepeats;
      fct8.hits10 += three8.hits10 / kRepeats;
    }

    double model_delta = 0.0;
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("model", obs::JsonValue(core::ModelKindName(kind)));
    entry.Set("rca",
              MetricsJson({{"mean_rank", rca32.mean_rank, rca8.mean_rank,
                            /*gated=*/false},
                           {"hits1", rca32.hits1, rca8.hits1},
                           {"hits3", rca32.hits3, rca8.hits3},
                           {"hits5", rca32.hits5, rca8.hits5}},
                          &model_delta));
    entry.Set("eap",
              MetricsJson({{"accuracy", eap32.accuracy, eap8.accuracy},
                           {"precision", eap32.precision, eap8.precision},
                           {"recall", eap32.recall, eap8.recall},
                           {"f1", eap32.f1, eap8.f1}},
                          &model_delta));
    entry.Set("fct", MetricsJson({{"mrr", fct32.mrr, fct8.mrr},
                                  {"hits1", fct32.hits1, fct8.hits1},
                                  {"hits3", fct32.hits3, fct8.hits3},
                                  {"hits10", fct32.hits10, fct8.hits10}},
                                 &model_delta));
    entry.Set("max_abs_delta", obs::JsonValue(model_delta));
    models.Append(std::move(entry));
    worst_delta = std::max(worst_delta, model_delta);

    std::printf(
        "%-16s rca hits@1 %.3f->%.3f  eap f1 %.3f->%.3f  fct mrr "
        "%.3f->%.3f  (max |delta| %.4f)\n",
        core::ModelKindName(kind).c_str(), rca32.hits1, rca8.hits1, eap32.f1,
        eap8.f1, fct32.mrr, fct8.mrr, model_delta);
  }

  const double epsilon = fast ? kFastEpsilon : kEpsilon;
  const bool gate_ok = worst_delta <= epsilon;
  obs::JsonValue section = obs::JsonValue::Object();
  section.Set("fast", obs::JsonValue(fast));
  section.Set("epsilon", obs::JsonValue(epsilon));
  section.Set("models", std::move(models));
  section.Set("max_abs_delta", obs::JsonValue(worst_delta));
  section.Set("gate",
              obs::JsonValue(std::string(gate_ok ? "pass" : "fail")));

  obs::JsonValue report = obs::JsonValue::Object();
  {
    std::ifstream in(out_path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      obs::JsonValue existing;
      if (obs::JsonValue::Parse(buffer.str(), &existing)) {
        report = std::move(existing);
      }
    }
  }
  report.Set("int8_accuracy", std::move(section));
  std::ofstream out(out_path);
  out << report.Dump(2) << "\n";
  std::printf("quant_eval: wrote %s (max |delta| %.4f, epsilon %.2f, gate "
              "%s)\n",
              out_path.c_str(), worst_delta, epsilon,
              gate_ok ? "pass" : "FAIL");
  return gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

#ifndef TELEKIT_BENCH_BENCH_UTIL_H_
#define TELEKIT_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/flag_parse.h"
#include "common/table_printer.h"
#include "core/model_zoo.h"
#include "obs/obs.h"
#include "synth/task_data.h"
#include "tensor/compute_pool.h"

namespace telekit {
namespace bench {

/// Shared observability wiring for every bench binary. Construct first
/// thing in Main():
///
///   int Main(int argc, char** argv) {
///     bench::ObsSession obs(argc, argv);
///     ...
///   }
///
/// Flags (unknown flags are left alone for the binary to handle):
///   --obs-json=<path>      write a metrics + span + Chrome-trace artifact
///                          on exit, and enable full trace-event recording
///   --log-level=<level>    debug|info|warn|error|off (overrides
///                          TELEKIT_LOG_LEVEL)
///   --compute-threads=<n>  intra-op ComputePool threads (0 = env /
///                          hardware default, 1 = serial)
class ObsSession {
 public:
  ObsSession(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      constexpr const char kObsJson[] = "--obs-json=";
      constexpr const char kLogLevel[] = "--log-level=";
      constexpr const char kComputeThreads[] = "--compute-threads=";
      if (arg.rfind(kObsJson, 0) == 0) {
        obs_json_path_ = arg.substr(sizeof(kObsJson) - 1);
      } else if (arg.rfind(kLogLevel, 0) == 0) {
        obs::Logger::Global().set_level(
            obs::ParseLogLevel(arg.substr(sizeof(kLogLevel) - 1)));
      } else if (arg.rfind(kComputeThreads, 0) == 0) {
        tensor::SetComputeThreads(static_cast<int>(ParseIntFlagOrDie(
            "compute-threads", arg.substr(sizeof(kComputeThreads) - 1), 0,
            4096)));
      }
    }
    if (!obs_json_path_.empty()) {
      obs::TraceCollector::Global().set_recording(true);
    }
    // Root span: everything the binary does nests under it in the trace.
    root_ = std::make_unique<obs::Span>("bench/main");
  }

  ~ObsSession() {
    root_.reset();  // close the root span before snapshotting
    if (!obs_json_path_.empty()) {
      obs::WriteReport(obs_json_path_);
      std::cerr << "[obs] wrote " << obs_json_path_ << "\n";
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string obs_json_path_;
  std::unique_ptr<obs::Span> root_;
};

/// Paper-reported reference rows (ICDE 2023, Tables IV / VI / VIII),
/// used to print measured-vs-paper comparisons. Indexed by ModelKind.
struct PaperReference {
  /// Table IV: MR, Hits@1, Hits@3, Hits@5 (RCA).
  static std::map<core::ModelKind, std::vector<double>> RcaTable() {
    using MK = core::ModelKind;
    return {{MK::kRandom, {2.47, 54.88, 75.00, 88.67}},
            {MK::kMacBert, {2.16, 59.64, 82.68, 90.85}},
            {MK::kTeleBert, {2.09, 62.65, 83.52, 92.46}},
            {MK::kKTeleBertStl, {2.06, 63.66, 83.21, 91.87}},
            {MK::kKTeleBertStlNoAnEnc, {2.13, 60.72, 82.96, 90.80}},
            {MK::kKTeleBertPmtl, {2.03, 65.96, 84.98, 92.63}},
            {MK::kKTeleBertImtl, {2.02, 64.78, 85.65, 91.13}}};
  }

  /// Table VI: Accuracy, Precision, Recall, F1 (EAP).
  static std::map<core::ModelKind, std::vector<double>> EapTable() {
    using MK = core::ModelKind;
    return {{MK::kWordEmbedding, {64.9, 66.4, 96.8, 78.7}},
            {MK::kMacBert, {64.3, 65.9, 96.1, 78.2}},
            {MK::kTeleBert, {70.4, 71.4, 95.1, 81.5}},
            {MK::kKTeleBertStl, {77.3, 76.6, 96.6, 85.4}},
            {MK::kKTeleBertStlNoAnEnc, {76.0, 76.1, 95.1, 84.5}},
            {MK::kKTeleBertPmtl, {68.5, 68.8, 99.1, 81.3}}};
  }

  /// Table VIII: MRR, Hits@1, Hits@3, Hits@10 (FCT).
  static std::map<core::ModelKind, std::vector<double>> FctTable() {
    using MK = core::ModelKind;
    return {{MK::kRandom, {58.2, 56.2, 56.2, 62.5}},
            {MK::kMacBert, {65.9, 62.5, 65.6, 68.8}},
            {MK::kTeleBert, {69.0, 65.6, 71.9, 71.9}},
            {MK::kKTeleBertStl, {73.6, 71.9, 71.9, 78.1}},
            {MK::kKTeleBertStlNoAnEnc, {67.5, 65.6, 65.6, 71.9}},
            {MK::kKTeleBertPmtl, {87.3, 84.4, 87.5, 93.8}},
            {MK::kKTeleBertImtl, {94.8, 93.8, 93.8, 100.0}}};
  }
};

/// The shared benchmark configuration: one world, one tokenizer, one cache
/// (first binary trains, later binaries restore). Scale is chosen so the
/// whole harness runs on a single CPU core in minutes.
inline core::ZooConfig BenchZooConfig() {
  core::ZooConfig config;
  config.seed = 20230401;
  config.world.num_alarm_types = 64;
  config.world.num_kpi_types = 32;
  config.corpus.num_tele_sentences = 6000;
  config.corpus.num_general_sentences = 6000;
  config.num_episodes = 80;
  config.pretrain.steps = 900;
  config.pretrain.batch_size = 16;
  config.pretrain.simcse_weight = 0.3f;  // fight [CLS] anisotropy
  config.retrain.total_steps = 600;
  config.retrain.batch_size = 8;
  config.retrain.ke_loss_weight = 1.0f;
  config.max_ke_triples = 400;
  return config;
}

/// FCT dataset scale shared by the stats and results benches.
inline synth::FctDataConfig BenchFctConfig() {
  synth::FctDataConfig config;
  config.num_chains = 300;
  config.valid_fraction = 0.15;
  config.test_fraction = 0.15;
  return config;
}

/// Appends a "<name> (paper)" reference row when the reference table has
/// one for this kind.
inline void AddPaperRow(TablePrinter& table, core::ModelKind kind,
                        const std::map<core::ModelKind, std::vector<double>>&
                            reference,
                        int precision = 2) {
  auto it = reference.find(kind);
  if (it == reference.end()) return;
  table.AddRow(core::ModelKindName(kind) + " (paper)", it->second, precision);
}

}  // namespace bench
}  // namespace telekit

#endif  // TELEKIT_BENCH_BENCH_UTIL_H_

// Low-resource sweep: the paper's motivation is that pre-trained
// tele-knowledge helps most when downstream labels are scarce ("especially
// those tasks with limited data", Sec. I). This bench shrinks the RCA
// training corpus and compares random event embeddings against KTeleBERT
// service vectors at each scale — the embedding advantage should widen as
// labels disappear.
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "synth/task_data.h"
#include "tasks/embed.h"
#include "tasks/rca.h"

namespace telekit {
namespace {

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ModelZoo zoo(bench::BenchZooConfig());
  std::cerr << "[lowresource] building model zoo (cached)...\n";
  zoo.Build();

  synth::RcaDataGen gen(zoo.world(), zoo.log_generator());
  TablePrinter table("Low-resource RCA: Hits@1 vs number of labelled states");
  table.SetHeader({"#Graphs", "Random", "KTeleBERT-PMTL", "gap"});

  for (int num_graphs : {30, 60, 127}) {
    std::cerr << "[lowresource] " << num_graphs << " graphs\n";
    Rng data_rng(zoo.config().seed ^ 0xAAA1ULL);  // same base sequence
    synth::RcaDataset dataset = gen.Generate(
        synth::RcaDataConfig{.num_graphs = num_graphs}, data_rng);
    double hits[2] = {0, 0};
    int idx = 0;
    for (core::ModelKind kind :
         {core::ModelKind::kRandom, core::ModelKind::kKTeleBertPmtl}) {
      core::ServiceEncoder service = zoo.MakeServiceEncoder(kind);
      auto embeddings =
          tasks::EmbedSurfaces(service, dataset.feature_surfaces);
      Rng rng(zoo.config().seed ^ 0xBBB2ULL);
      tasks::RcaOptions options;
      tasks::RcaResult result =
          tasks::RunRcaCrossValidation(dataset, embeddings, options, rng);
      hits[idx++] = result.hits1;
    }
    table.AddRow(std::to_string(num_graphs),
                 {hits[0], hits[1], hits[1] - hits[0]}, 1);
  }
  table.Print(std::cout);
  std::cout << "Shape check: the pre-trained-embedding gap should not "
               "shrink as labelled data grows scarce.\n";
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

// Load generator for the serve subsystem. Measures three configurations
// over the same request stream and writes BENCH_serve.json:
//
//   baseline      1 client thread, engine.Process(), no batching, no cache
//   batched       N client threads, micro-batching worker pool, no cache
//   batched+cache same, with the sharded EmbeddingCache on
//
// Closed-loop by default (each client submits, waits, repeats); --qps=N
// adds an open-loop phase submitting at a fixed aggregate rate regardless
// of completions, which is what stresses the bounded queue.
//
// The request stream models production fault-analysis traffic: a small hot
// set of active alarms dominates (80% of queries) over a long tail of cold
// surfaces, which is what makes service-vector memoization pay off.
//
// Acceptance (ISSUE 2): the full engine (8 workers, micro-batching, cache)
// must reach >= 3x the requests/sec of the single-threaded unbatched
// uncached baseline. On multi-core hosts the worker pool contributes; on a
// single core the cache carries the speedup (batching alone moves the same
// FLOPs through the same core and is throughput-neutral there, as the
// nocache row shows).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flag_parse.h"
#include "bench/slo_demo.h"
#include "common/table_printer.h"
#include "core/model_zoo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/requestlog.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "serve/line_io.h"

#include <sys/socket.h>
#include <unistd.h>

namespace telekit {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

struct LoadgenFlags {
  int workers = 8;
  int clients = 8;
  int requests = 600;       // per measured configuration
  int max_batch = 8;
  int64_t max_wait_us = 2000;
  int qps = 0;              // open-loop phase target rate (0 = skip)
  bool slo_demo = true;     // --slo-demo=0 skips the alert-lifecycle demo
  std::string connect;      // host:port[,host:port...] -> TCP client mode
  std::string out = "BENCH_serve.json";
  std::string obs_out = "BENCH_obs.json";
};

struct RunResult {
  std::string name;
  double seconds = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
  double cache_hit_rate = 0.0;
  int completed = 0;
  int rejected = 0;
};

/// Quantiles come from the same log-bucketed histogram the serve metrics
/// use (bounded ~4.4% relative error), so BENCH_serve.json and a /metrics
/// scrape of a live server agree on what p99 means. Observe() is lock-free,
/// which also lets client threads record latencies without a merge step.
void FillLatencyStats(const obs::LatencyHistogram& latencies,
                      RunResult* result) {
  result->p50_ms = latencies.Quantile(0.50);
  result->p95_ms = latencies.Quantile(0.95);
  result->p99_ms = latencies.Quantile(0.99);
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// The request mix, deterministic per index: 80% of queries target a hot
/// set of 16 active surfaces, the rest draw uniformly from the full pool
/// (catalogue names plus cold contextual variants).
serve::Request MakeRequest(const std::vector<std::string>& pool, int index) {
  serve::Request request;
  const int op = index % 4;
  request.op = op == 0   ? serve::TaskOp::kEncode
               : op == 1 ? serve::TaskOp::kRca
               : op == 2 ? serve::TaskOp::kEap
                         : serve::TaskOp::kFct;
  const uint64_t r = SplitMix64(static_cast<uint64_t>(index));
  const size_t hot = std::min<size_t>(16, pool.size());
  request.text = (r % 100 < 80)
                     ? pool[(r >> 8) % hot]
                     : pool[(r >> 8) % pool.size()];
  request.top_k = 5;
  return request;
}

/// Query pool: every catalogue surface plus cold variants that never repeat
/// enough to stay cached ("<alarm> on <element>").
std::vector<std::string> MakeQueryPool(const synth::WorldModel& world) {
  std::vector<std::string> pool;
  for (const auto& alarm : world.alarms()) pool.push_back(alarm.name);
  for (const auto& alarm : world.alarms()) {
    for (size_t e = 0; e < world.elements().size(); e += 4) {
      pool.push_back(alarm.name + " on " + world.elements()[e].name);
    }
  }
  return pool;
}

/// Single-threaded, unbatched, uncached: the reference the paper-style
/// deployment comparison divides by.
RunResult RunBaseline(const core::ServiceEncoder& service,
                      const std::vector<std::string>& names,
                      const std::vector<std::string>& pool,
                      const LoadgenFlags& flags) {
  serve::EngineOptions options;
  options.num_workers = 0;  // Process() only, no queue involved
  options.enable_batching = false;
  options.enable_cache = false;
  serve::ServeEngine engine(&service, options);
  for (serve::TaskOp op :
       {serve::TaskOp::kRca, serve::TaskOp::kEap, serve::TaskOp::kFct}) {
    TELEKIT_CHECK(engine.LoadCatalog(op, names).ok());
  }
  RunResult result;
  result.name = "baseline_1thread_unbatched";
  obs::LatencyHistogram latencies;
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < flags.requests; ++i) {
    const serve::Response response =
        engine.Process(MakeRequest(pool, i));
    TELEKIT_CHECK(response.status.ok()) << response.status.ToString();
    latencies.Observe(response.total_ms);
  }
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.completed = flags.requests;
  result.rps = static_cast<double>(flags.requests) / result.seconds;
  result.mean_batch = 1.0;
  FillLatencyStats(latencies, &result);
  return result;
}

/// Closed-loop: `clients` threads each drive their share of the request
/// stream synchronously through Submit()+get().
RunResult RunClosedLoop(const core::ServiceEncoder& service,
                        const std::vector<std::string>& names,
                        const std::vector<std::string>& pool,
                        const LoadgenFlags& flags, bool enable_cache,
                        const std::string& name) {
  serve::EngineOptions options;
  options.num_workers = flags.workers;
  options.max_batch = flags.max_batch;
  options.max_wait_us = flags.max_wait_us;
  options.enable_batching = true;
  options.enable_cache = enable_cache;
  serve::ServeEngine engine(&service, options);
  for (serve::TaskOp op :
       {serve::TaskOp::kRca, serve::TaskOp::kEap, serve::TaskOp::kFct}) {
    TELEKIT_CHECK(engine.LoadCatalog(op, names).ok());
  }
  RunResult result;
  result.name = name;
  obs::LatencyHistogram latencies;
  std::atomic<int64_t> batch_sum{0};
  std::atomic<int> completed{0};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = c; i < flags.requests; i += flags.clients) {
        serve::Response response =
            engine.Submit(MakeRequest(pool, i)).get();
        TELEKIT_CHECK(response.status.ok()) << response.status.ToString();
        latencies.Observe(response.total_ms);
        batch_sum.fetch_add(response.batch_size);
        completed.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.completed = completed.load();
  result.rps = static_cast<double>(result.completed) / result.seconds;
  result.mean_batch = static_cast<double>(batch_sum.load()) /
                      std::max(1, result.completed);
  result.cache_hit_rate = engine.cache().HitRate();
  FillLatencyStats(latencies, &result);
  return result;
}

/// Open-loop: submit at a fixed aggregate rate from one pacer thread,
/// harvest futures afterwards. Rejections (bounded queue) are counted, not
/// fatal — that is the backpressure working.
RunResult RunOpenLoop(const core::ServiceEncoder& service,
                      const std::vector<std::string>& names,
                      const std::vector<std::string>& pool,
                      const LoadgenFlags& flags) {
  serve::EngineOptions options;
  options.num_workers = flags.workers;
  options.max_batch = flags.max_batch;
  options.max_wait_us = flags.max_wait_us;
  options.queue_capacity = 256;
  serve::ServeEngine engine(&service, options);
  for (serve::TaskOp op :
       {serve::TaskOp::kRca, serve::TaskOp::kEap, serve::TaskOp::kFct}) {
    TELEKIT_CHECK(engine.LoadCatalog(op, names).ok());
  }
  RunResult result;
  result.name = "open_loop_" + std::to_string(flags.qps) + "qps";
  const auto interval =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / flags.qps));
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(static_cast<size_t>(flags.requests));
  const Clock::time_point start = Clock::now();
  Clock::time_point next = start;
  for (int i = 0; i < flags.requests; ++i) {
    std::this_thread::sleep_until(next);
    next += interval;
    futures.push_back(engine.Submit(MakeRequest(pool, i)));
  }
  obs::LatencyHistogram latencies;
  for (auto& future : futures) {
    serve::Response response = future.get();
    if (response.status.ok()) {
      ++result.completed;
      latencies.Observe(response.total_ms);
    } else {
      ++result.rejected;
    }
  }
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.rps = static_cast<double>(result.completed) / result.seconds;
  result.cache_hit_rate = engine.cache().HitRate();
  FillLatencyStats(latencies, &result);
  return result;
}

/// End-to-end SLO alert lifecycle against a live engine (ISSUE 6
/// acceptance). The induced regression is real work, not a sleep: cache
/// hits skip the transformer forward entirely, so the healthy phase drives
/// a small memoized hot set and the degraded phase drives never-repeated
/// cold texts that each pay the full encode. The latency objective's
/// threshold sits between the two regimes (geometric mean of hot p95 and
/// cold p50): healthy traffic burns ~nothing, degraded traffic burns the
/// error budget at many times the firing threshold.
obs::JsonValue RunSloAlertDemo(const core::ServiceEncoder& service,
                               const std::vector<std::string>& names,
                               const std::vector<std::string>& pool,
                               bool* passed) {
  serve::EngineOptions options;
  options.num_workers = 0;  // Process(): latency is pure compute, no queue
  options.enable_batching = false;
  options.enable_cache = true;
  serve::ServeEngine engine(&service, options);
  for (serve::TaskOp op :
       {serve::TaskOp::kRca, serve::TaskOp::kEap, serve::TaskOp::kFct}) {
    TELEKIT_CHECK(engine.LoadCatalog(op, names).ok());
  }

  const size_t hot = std::min<size_t>(8, pool.size());
  int hot_seq = 0;
  int cold_seq = 0;
  auto hot_request = [&]() {
    serve::Request request;
    request.op = serve::TaskOp::kRca;
    request.text = pool[static_cast<size_t>(hot_seq++) % hot];
    request.top_k = 5;
    return engine.Process(request);
  };
  auto cold_request = [&]() {
    const int seq = cold_seq++;
    serve::Request request;
    request.op = serve::TaskOp::kRca;
    request.text = "slo demo cold surface " + std::to_string(seq) + " " +
                   pool[static_cast<size_t>(seq) % pool.size()];
    request.top_k = 5;
    return engine.Process(request);
  };

  // Probe both regimes to place the threshold between them.
  obs::LatencyHistogram hot_hist;
  obs::LatencyHistogram cold_hist;
  for (size_t i = 0; i < 2 * hot; ++i) hot_request();  // warm the cache
  for (int i = 0; i < 200; ++i) hot_hist.Observe(hot_request().total_ms);
  for (int i = 0; i < 30; ++i) cold_hist.Observe(cold_request().total_ms);
  const double hot_p95 = hot_hist.Quantile(0.95);
  const double cold_p50 = cold_hist.Quantile(0.50);
  double threshold_ms = std::sqrt(hot_p95 * cold_p50);
  // Degenerate separation would leave no boundary to trip; fall back to a
  // multiple of the healthy tail so the demo still means something.
  const bool regimes_separate = cold_p50 > hot_p95 * 1.5;
  if (!regimes_separate) threshold_ms = hot_p95 * 2.0;

  // Compressed burn windows so the lifecycle completes in seconds; the
  // daemons run the same machinery at 60 s / 300 s.
  obs::TimeSeriesOptions ts_options;
  ts_options.interval_s = 0.1;
  ts_options.capacity = 1024;
  obs::TimeSeriesStore store(ts_options);
  obs::SloConfig slo_config;
  slo_config.fast_window_s = 1.5;
  slo_config.slow_window_s = 4.0;
  slo_config.budget_window_s = 24.0;
  slo_config.burn_threshold = 1.5;
  obs::SloEngine slo(&store, slo_config);
  obs::SloObjective objective;
  objective.name = "serve/latency_demo";
  objective.kind = obs::SloObjective::Kind::kLatency;
  objective.histogram = "serve/request_ms";
  objective.threshold_ms = threshold_ms;
  objective.target = 0.9;
  slo.AddObjective(objective);
  store.SetOnSample([&slo](double now_s) { slo.Evaluate(now_s); });
  store.Start();

  SloDemoPhases phases;
  phases.healthy_s = slo_config.slow_window_s + 1.0;
  const SloDemoResult lifecycle = RunSloAlertLifecycle(
      store, slo, objective.name,
      [&] {
        hot_request();
        // Pace the hot phase near the degraded rate so the slow window is
        // not dominated by sheer healthy volume when the regression hits.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      },
      [&] { cold_request(); }, phases);
  store.Stop();

  // Exemplar acceptance: the latest exemplar in a latency bucket must
  // resolve through the wide-event log to a request whose total_us matches
  // (both derive from the same response.total_ms).
  const serve::Response probe = cold_request();
  const double le = obs::LatencyHistogram::BucketUpperMs(
      obs::LatencyHistogram::BucketIndex(probe.total_ms));
  obs::ExemplarStore::Exemplar exemplar;
  const bool exemplar_found =
      obs::ExemplarStore::Global().Find("serve/request_ms", le, &exemplar);
  obs::RequestLog::Filter filter;
  filter.trace_id = exemplar.trace_id;
  const std::vector<obs::WideEvent> events =
      obs::RequestLog::Global().Query(filter);
  const bool exemplar_matches =
      exemplar_found && !events.empty() &&
      std::llabs(static_cast<long long>(events.front().total_us) -
                 static_cast<long long>(exemplar.value_ms * 1000.0)) <= 10;

  *passed = lifecycle.ok() && exemplar_matches;
  std::cout << "\nSLO alert demo (threshold " << threshold_ms
            << " ms, hot p95 " << hot_p95 << " ms, cold p50 " << cold_p50
            << " ms)\n  fired: " << (lifecycle.fired ? "yes" : "NO")
            << " (detection lag " << lifecycle.detection_lag_s
            << " s), resolved: " << (lifecycle.resolved ? "yes" : "NO")
            << " (firing interval " << lifecycle.firing_interval_s
            << " s)\n  exemplar -> wide event match: "
            << (exemplar_matches ? "yes" : "NO") << "\n";

  obs::JsonValue section = SloDemoResultToJson(lifecycle);
  section.Set("objective", obs::JsonValue(objective.name));
  section.Set("histogram", obs::JsonValue(objective.histogram));
  section.Set("threshold_ms", obs::JsonValue(threshold_ms));
  section.Set("hot_p95_ms", obs::JsonValue(hot_p95));
  section.Set("cold_p50_ms", obs::JsonValue(cold_p50));
  section.Set("regimes_separate", obs::JsonValue(regimes_separate));
  section.Set("target", obs::JsonValue(objective.target));
  section.Set("ts_interval_s", obs::JsonValue(ts_options.interval_s));
  section.Set("fast_window_s", obs::JsonValue(slo_config.fast_window_s));
  section.Set("slow_window_s", obs::JsonValue(slo_config.slow_window_s));
  section.Set("burn_threshold", obs::JsonValue(slo_config.burn_threshold));
  obs::JsonValue exemplar_json = obs::JsonValue::Object();
  exemplar_json.Set("found", obs::JsonValue(exemplar_found));
  exemplar_json.Set("trace_id",
                    obs::JsonValue(obs::TraceIdToHex(exemplar.trace_id)));
  exemplar_json.Set("value_ms", obs::JsonValue(exemplar.value_ms));
  exemplar_json.Set("wide_event_total_us",
                    obs::JsonValue(events.empty()
                                       ? static_cast<int64_t>(-1)
                                       : static_cast<int64_t>(
                                             events.front().total_us)));
  exemplar_json.Set("matches", obs::JsonValue(exemplar_matches));
  section.Set("exemplar", std::move(exemplar_json));
  section.Set("passed", obs::JsonValue(*passed));
  return section;
}

// ---------------------------------------------------------------------------
// --connect: drive a live fleet over TCP instead of an in-process engine.
// Endpoints round-robin across client threads, so pointing it at N replica
// ports load-tests them directly and pointing it at one telekit_router
// port load-tests the routed path. No zoo is built in this mode — the
// server owns the model; the request stream is synthetic with the same
// hot/cold shape as the in-process mix.
// ---------------------------------------------------------------------------

obs::JsonValue ResultToJson(const RunResult& result);

struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

bool ParseEndpoints(const std::string& text, std::vector<Endpoint>* out) {
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(begin, end - begin);
    if (!item.empty()) {
      Endpoint endpoint;
      const size_t colon = item.rfind(':');
      const std::string port_text =
          colon == std::string::npos ? item : item.substr(colon + 1);
      if (colon != std::string::npos && colon > 0) {
        endpoint.host = item.substr(0, colon);
      }
      int64_t port = 0;
      if (!telekit::ParseInt64(port_text, 1, 65535, &port)) return false;
      endpoint.port = static_cast<int>(port);
      out->push_back(std::move(endpoint));
    }
    begin = end + 1;
  }
  return !out->empty();
}

std::string RequestToLine(const serve::Request& request, int sequence) {
  obs::JsonValue json = obs::JsonValue::Object();
  json.Set("op", obs::JsonValue(serve::TaskOpName(request.op)));
  json.Set("text", obs::JsonValue(request.text));
  json.Set("top_k", obs::JsonValue(request.top_k));
  json.Set("id", obs::JsonValue("loadgen-" + std::to_string(sequence)));
  return json.Dump();
}

RunResult RunConnect(const std::vector<Endpoint>& endpoints,
                     const LoadgenFlags& flags) {
  // Synthetic pool with the usual 80/20 hot/cold shape (MakeRequest's hot
  // set is its first 16 entries).
  std::vector<std::string> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back("remote fault surface " + std::to_string(i) +
                   " threshold crossed");
  }
  RunResult result;
  result.name = "connect_" + std::to_string(endpoints.size()) + "_endpoints";
  obs::LatencyHistogram latencies;
  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      const Endpoint& endpoint = endpoints[c % endpoints.size()];
      const int fd =
          serve::ConnectTcp(endpoint.host, endpoint.port, 2000.0);
      if (fd < 0) {
        for (int i = c; i < flags.requests; i += flags.clients) {
          failed.fetch_add(1);
        }
        return;
      }
      serve::LineReader reader(fd);
      for (int i = c; i < flags.requests; i += flags.clients) {
        const Clock::time_point sent = Clock::now();
        std::string line;
        bool success =
            serve::SendLine(fd, RequestToLine(MakeRequest(pool, i), i)) &&
            reader.ReadLine(&line);
        if (success) {
          obs::JsonValue response;
          std::string error;
          success = obs::JsonValue::Parse(line, &response, &error) &&
                    response.Find("ok") != nullptr &&
                    response.Find("ok")->AsBool();
        }
        if (success) {
          completed.fetch_add(1);
          latencies.Observe(std::chrono::duration<double, std::milli>(
                                Clock::now() - sent)
                                .count());
        } else {
          failed.fetch_add(1);
        }
      }
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    });
  }
  for (auto& client : clients) client.join();
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.completed = completed.load();
  result.rejected = failed.load();
  result.rps = static_cast<double>(result.completed) /
               std::max(1e-9, result.seconds);
  FillLatencyStats(latencies, &result);
  return result;
}

int ConnectMain(const LoadgenFlags& flags) {
  std::vector<Endpoint> endpoints;
  if (!ParseEndpoints(flags.connect, &endpoints)) {
    std::cerr << "bad --connect spec: " << flags.connect << "\n";
    return 2;
  }
  std::cout << "serve_loadgen --connect: " << flags.requests
            << " requests, " << flags.clients << " clients over "
            << endpoints.size() << " endpoint(s)\n";
  const RunResult result = RunConnect(endpoints, flags);
  TablePrinter table("Remote serving throughput");
  table.SetHeader({"configuration", "req/s", "p50 ms", "p95 ms", "p99 ms",
                   "completed", "failed"});
  table.AddRow(result.name,
               {result.rps, result.p50_ms, result.p95_ms, result.p99_ms,
                static_cast<double>(result.completed),
                static_cast<double>(result.rejected)},
               2);
  table.Print(std::cout);

  obs::JsonValue report = obs::JsonValue::Object();
  report.Set("benchmark", obs::JsonValue("serve_loadgen_connect"));
  obs::JsonValue cfg = obs::JsonValue::Object();
  cfg.Set("clients", obs::JsonValue(flags.clients));
  cfg.Set("requests", obs::JsonValue(flags.requests));
  cfg.Set("endpoints", obs::JsonValue(flags.connect));
  report.Set("config", std::move(cfg));
  obs::JsonValue runs = obs::JsonValue::Array();
  runs.Append(ResultToJson(result));
  report.Set("runs", std::move(runs));
  std::ofstream out(flags.out);
  out << report.Dump(2) << "\n";
  std::cout << "wrote " << flags.out << "\n";
  return result.rejected == 0 && result.completed == flags.requests ? 0 : 1;
}

obs::JsonValue ResultToJson(const RunResult& result) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("name", obs::JsonValue(result.name));
  out.Set("seconds", obs::JsonValue(result.seconds));
  out.Set("requests_per_sec", obs::JsonValue(result.rps));
  out.Set("p50_ms", obs::JsonValue(result.p50_ms));
  out.Set("p95_ms", obs::JsonValue(result.p95_ms));
  out.Set("p99_ms", obs::JsonValue(result.p99_ms));
  out.Set("mean_batch_size", obs::JsonValue(result.mean_batch));
  out.Set("cache_hit_rate", obs::JsonValue(result.cache_hit_rate));
  out.Set("completed", obs::JsonValue(result.completed));
  out.Set("rejected", obs::JsonValue(result.rejected));
  return out;
}

int Main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  LoadgenFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("workers"))
      flags.workers = static_cast<int>(
          telekit::ParseIntFlagOrDie("workers", v, 1, 1024));
    else if (const char* v = value("clients"))
      flags.clients = static_cast<int>(
          telekit::ParseIntFlagOrDie("clients", v, 1, 4096));
    else if (const char* v = value("requests"))
      flags.requests = static_cast<int>(
          telekit::ParseIntFlagOrDie("requests", v, 1, 1 << 30));
    else if (const char* v = value("max-batch"))
      flags.max_batch = static_cast<int>(
          telekit::ParseIntFlagOrDie("max-batch", v, 1, 1 << 20));
    else if (const char* v = value("max-wait-us"))
      flags.max_wait_us =
          telekit::ParseIntFlagOrDie("max-wait-us", v, 0, int64_t{1} << 40);
    else if (const char* v = value("qps"))
      flags.qps = static_cast<int>(
          telekit::ParseIntFlagOrDie("qps", v, 0, 1 << 30));
    else if (const char* v = value("slo-demo"))
      flags.slo_demo = telekit::ParseIntFlagOrDie("slo-demo", v, 0, 1) != 0;
    else if (const char* v = value("connect")) flags.connect = v;
    else if (const char* v = value("out")) flags.out = v;
    else if (const char* v = value("obs-out")) flags.obs_out = v;
  }

  if (!flags.connect.empty()) return ConnectMain(flags);

  // An untrained encoder has identical per-request compute to a trained
  // one, so throughput numbers transfer; startup stays in seconds.
  core::ZooConfig config;
  config.seed = 20230401;
  config.world.num_alarm_types = 64;
  config.corpus.num_tele_sentences = 1500;
  config.corpus.num_general_sentences = 1500;
  config.num_episodes = 30;
  config.pretrain.steps = 0;
  config.cache_dir = "";
  core::ModelZoo zoo(config);
  zoo.BuildData();
  zoo.BuildPretrained();
  core::TeleBertEncoder encoder(&zoo.telebert());
  core::ServiceEncoder service(&encoder, &zoo.tokenizer(), &zoo.store(),
                               &zoo.normalizer());
  std::vector<std::string> names;
  for (const auto& alarm : zoo.world().alarms()) names.push_back(alarm.name);
  const std::vector<std::string> pool = MakeQueryPool(zoo.world());

  std::vector<RunResult> results;
  std::cout << "serve_loadgen: " << flags.requests << " requests, "
            << flags.workers << " workers, " << flags.clients
            << " clients\n";
  results.push_back(RunBaseline(service, names, pool, flags));
  results.push_back(RunClosedLoop(service, names, pool, flags,
                                  /*enable_cache=*/false,
                                  "closed_loop_batched_nocache"));
  results.push_back(RunClosedLoop(service, names, pool, flags,
                                  /*enable_cache=*/true,
                                  "closed_loop_batched_cached"));
  if (flags.qps > 0) {
    results.push_back(RunOpenLoop(service, names, pool, flags));
  }

  TablePrinter table("Serving throughput (requests/sec)");
  table.SetHeader({"configuration", "req/s", "p50 ms", "p95 ms", "p99 ms",
                   "mean batch", "cache hit"});
  for (const RunResult& result : results) {
    table.AddRow(result.name,
                 {result.rps, result.p50_ms, result.p95_ms, result.p99_ms,
                  result.mean_batch, result.cache_hit_rate},
                 2);
  }
  table.Print(std::cout);

  const double nocache_speedup = results[1].rps / results[0].rps;
  const double engine_speedup = results[2].rps / results[0].rps;
  std::cout << "\nbatching-only speedup:  " << nocache_speedup << "x\n"
            << "full-engine speedup:    " << engine_speedup
            << "x (acceptance: >= 3x)\n";

  obs::JsonValue report = obs::JsonValue::Object();
  report.Set("benchmark", obs::JsonValue("serve_loadgen"));
  obs::JsonValue cfg = obs::JsonValue::Object();
  cfg.Set("workers", obs::JsonValue(flags.workers));
  cfg.Set("clients", obs::JsonValue(flags.clients));
  cfg.Set("requests", obs::JsonValue(flags.requests));
  cfg.Set("max_batch", obs::JsonValue(flags.max_batch));
  cfg.Set("max_wait_us", obs::JsonValue(static_cast<int64_t>(flags.max_wait_us)));
  cfg.Set("compute_threads", obs::JsonValue(tensor::ComputeThreads()));
  report.Set("config", std::move(cfg));
  obs::JsonValue runs = obs::JsonValue::Array();
  for (const RunResult& result : results) {
    runs.Append(ResultToJson(result));
  }
  report.Set("runs", std::move(runs));
  report.Set("batched_over_baseline_speedup",
             obs::JsonValue(nocache_speedup));
  report.Set("engine_over_baseline_speedup", obs::JsonValue(engine_speedup));
  std::ofstream out(flags.out);
  out << report.Dump(2) << "\n";
  std::cout << "wrote " << flags.out << "\n";

  bool demo_passed = true;
  if (flags.slo_demo) {
    demo_passed = false;
    obs::JsonValue demo = RunSloAlertDemo(service, names, pool, &demo_passed);
    if (MergeObsReport(flags.obs_out, "serve_alert_demo", std::move(demo))) {
      std::cout << "wrote " << flags.obs_out << "\n";
    } else {
      std::cout << "FAILED to write " << flags.obs_out << "\n";
      demo_passed = false;
    }
  }
  return engine_speedup >= 3.0 && demo_passed ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace telekit

int main(int argc, char** argv) { return telekit::bench::Main(argc, argv); }

// matmul_bench: intra-op ComputePool scaling on square GEMMs, plus the
// SIMD and int8 single-thread sweeps.
//
// Sweeps compute_threads over {1, 2, 4, 8} on square MatMuls (>= 256) and
// records throughput + speedup-vs-1-thread into BENCH_serve.json under
// "matmul_scaling" (merging with an existing report, so serve_loadgen and
// this bench share one artifact). Also asserts that every thread count
// produces bit-identical outputs — the ComputePool determinism contract.
//
// The "simd" section compares the scalar kernel backend against the
// runtime-detected vector backend (AVX2/NEON) at one thread: a GEMM
// GFLOP/s sweep, a transformer-encoder forward (the serve encode path),
// and the fp32-vs-int8 quantized encode comparison.
//
// Exit code 1 when a gate applies and fails:
//   - >= 4 hardware threads but 4-thread speedup < 2.5x;
//   - a vector backend is available but the single-thread encode speedup
//     over scalar is < 1.5x.
// On hosts where a gate cannot apply (no parallelism / no vector unit)
// the sweep still records honest numbers and the gate reports "skipped".
//
// Flags: --out=PATH (default BENCH_serve.json), --iters=N (0 = auto),
// plus the shared --obs-json/--log-level/--compute-threads.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flag_parse.h"
#include "core/qencode.h"
#include "core/transformer.h"
#include "tensor/compute_pool.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "text/tokenizer.h"

namespace telekit {
namespace bench {
namespace {

constexpr int kSizes[] = {256, 384, 512};
constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr double kGateSpeedup = 2.5;
constexpr int kGateThreads = 4;
constexpr double kGateEncodeSpeedup = 1.5;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

tensor::Tensor RandomMatrix(int n, uint64_t seed) {
  Rng rng(seed);
  return tensor::Tensor::Rand({n, n}, rng, -1.0f, 1.0f);
}

struct SizeResult {
  int size = 0;
  // Indexed like kThreadCounts.
  std::vector<double> gflops;
  std::vector<double> speedup;
  bool bit_identical = true;
};

SizeResult BenchSize(int n, int iters_flag) {
  tensor::NoGradGuard no_grad;
  const tensor::Tensor a = RandomMatrix(n, 0x5eed0000u + n);
  const tensor::Tensor b = RandomMatrix(n, 0xfeed0000u + n);
  const double flops_per_mm = 2.0 * n * n * static_cast<double>(n);

  SizeResult result;
  result.size = n;

  // Calibrate the iteration count at 1 thread so each measurement runs
  // ~0.3 s regardless of host speed.
  tensor::SetComputeThreads(1);
  const double t0 = NowSeconds();
  std::vector<float> reference = tensor::MatMul(a, b).data();
  const double once = std::max(NowSeconds() - t0, 1e-6);
  const int iters =
      iters_flag > 0 ? iters_flag
                     : std::max(3, static_cast<int>(std::lround(0.3 / once)));

  for (int threads : kThreadCounts) {
    tensor::SetComputeThreads(threads);
    tensor::Tensor warm = tensor::MatMul(a, b);  // spawn workers off-clock
    if (warm.data() != reference) result.bit_identical = false;
    const double start = NowSeconds();
    for (int it = 0; it < iters; ++it) {
      tensor::Tensor c = tensor::MatMul(a, b);
      if (c.data() != reference) result.bit_identical = false;
    }
    const double elapsed = std::max(NowSeconds() - start, 1e-9);
    result.gflops.push_back(flops_per_mm * iters / elapsed / 1e9);
    result.speedup.push_back(result.gflops.back() / result.gflops.front());
  }
  return result;
}

// Times `fn` with an auto-calibrated iteration count (~0.3 s per
// measurement) and returns seconds per call.
template <typename Fn>
double TimePerCall(const Fn& fn, int iters_flag) {
  const double t0 = NowSeconds();
  fn();
  const double once = std::max(NowSeconds() - t0, 1e-6);
  const int iters =
      iters_flag > 0 ? iters_flag
                     : std::max(3, static_cast<int>(std::lround(0.3 / once)));
  const double start = NowSeconds();
  for (int it = 0; it < iters; ++it) fn();
  return std::max(NowSeconds() - start, 1e-9) / iters;
}

// Scalar-vs-vector GEMM sweep at one thread. Returns the "gemm" rows.
obs::JsonValue BenchSimdGemm(tensor::simd::Backend vector_backend,
                             int iters_flag) {
  tensor::NoGradGuard no_grad;
  tensor::SetComputeThreads(1);
  obs::JsonValue rows = obs::JsonValue::Array();
  std::printf("%6s %14s %14s %8s\n", "size", "scalar GFLOP/s",
              "vector GFLOP/s", "speedup");
  for (int n : kSizes) {
    const tensor::Tensor a = RandomMatrix(n, 0x51u + n);
    const tensor::Tensor b = RandomMatrix(n, 0x52u + n);
    const double flops = 2.0 * n * n * static_cast<double>(n);
    tensor::simd::ForceBackend(tensor::simd::Backend::kScalar);
    const double scalar_s =
        TimePerCall([&] { tensor::MatMul(a, b); }, iters_flag);
    tensor::simd::ForceBackend(vector_backend);
    const double vector_s =
        TimePerCall([&] { tensor::MatMul(a, b); }, iters_flag);
    const double speedup = scalar_s / vector_s;
    std::printf("%6d %14.2f %14.2f %8.2f\n", n, flops / scalar_s / 1e9,
                flops / vector_s / 1e9, speedup);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("size", obs::JsonValue(n));
    row.Set("scalar_gflops", obs::JsonValue(flops / scalar_s / 1e9));
    row.Set("vector_gflops", obs::JsonValue(flops / vector_s / 1e9));
    row.Set("speedup", obs::JsonValue(speedup));
    rows.Append(std::move(row));
  }
  return rows;
}

// The serve encode path in miniature: a transformer-encoder forward on one
// max-length sequence, single-threaded. This is the gated measurement —
// the SIMD layer earns its keep here, not just on square GEMMs.
core::EncoderConfig EncodeBenchConfig() {
  core::EncoderConfig config;
  config.vocab_size = 512;
  config.d_model = 128;
  config.num_heads = 4;
  config.num_layers = 4;
  config.ffn_dim = 256;
  config.max_len = 64;
  config.dropout = 0.0f;
  return config;
}

int Main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  std::string out_path = "BENCH_serve.json";
  int iters = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    if (arg.rfind("--iters=", 0) == 0)
      iters = static_cast<int>(
          ParseIntFlagOrDie("iters", arg.substr(8), 1, 1 << 30));
  }

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("matmul_bench: hardware_concurrency=%d\n", hw);
  std::printf("%6s %8s", "size", "threads:");
  for (int t : kThreadCounts) std::printf(" %8d", t);
  std::printf("\n");

  obs::JsonValue sizes_json = obs::JsonValue::Array();
  bool all_identical = true;
  double gate_speedup = 0.0;
  for (int n : kSizes) {
    const SizeResult r = BenchSize(n, iters);
    all_identical = all_identical && r.bit_identical;
    std::printf("%6d %8s", n, "GFLOP/s");
    for (double g : r.gflops) std::printf(" %8.2f", g);
    std::printf("\n%6s %8s", "", "speedup");
    for (double s : r.speedup) std::printf(" %8.2f", s);
    std::printf("  bit-identical=%s\n", r.bit_identical ? "yes" : "NO");

    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("size", obs::JsonValue(r.size));
    obs::JsonValue per_thread = obs::JsonValue::Array();
    for (size_t i = 0; i < r.gflops.size(); ++i) {
      obs::JsonValue cell = obs::JsonValue::Object();
      cell.Set("threads", obs::JsonValue(kThreadCounts[i]));
      cell.Set("gflops", obs::JsonValue(r.gflops[i]));
      cell.Set("speedup_vs_1", obs::JsonValue(r.speedup[i]));
      per_thread.Append(std::move(cell));
    }
    row.Set("runs", std::move(per_thread));
    row.Set("bit_identical", obs::JsonValue(r.bit_identical));
    sizes_json.Append(std::move(row));
    for (size_t i = 0; i < r.speedup.size(); ++i) {
      if (kThreadCounts[i] == kGateThreads) {
        gate_speedup = std::max(gate_speedup, r.speedup[i]);
      }
    }
  }
  // --- SIMD sweeps: scalar vs vector backend at one thread ---------------
  const tensor::simd::Backend entry_backend = tensor::simd::ActiveBackend();
  const tensor::simd::Backend vector_backend = tensor::simd::DetectBackend();
  const bool have_vector = vector_backend != tensor::simd::Backend::kScalar;
  std::printf("matmul_bench: simd backend=%s\n",
              tensor::simd::BackendName(vector_backend));

  obs::JsonValue simd_section = obs::JsonValue::Object();
  simd_section.Set("backend",
                   obs::JsonValue(std::string(
                       tensor::simd::BackendName(vector_backend))));
  simd_section.Set("gemm", BenchSimdGemm(vector_backend, iters));

  double encode_speedup = 0.0;
  double int8_speedup = 0.0;
  {
    tensor::NoGradGuard no_grad;
    tensor::SetComputeThreads(1);
    const core::EncoderConfig config = EncodeBenchConfig();
    Rng init_rng(0x51dee5eedULL);
    const core::TransformerEncoder encoder(config, init_rng);
    std::vector<int> ids(config.max_len);
    for (int i = 0; i < config.max_len; ++i) {
      ids[i] = 1 + static_cast<int>(init_rng.UniformInt(
                       static_cast<int64_t>(config.vocab_size - 1)));
    }
    Rng fwd_rng(0);  // unused in eval mode
    const auto encode_once = [&] {
      encoder.Forward(ids, config.max_len, fwd_rng, /*training=*/false);
    };
    tensor::simd::ForceBackend(tensor::simd::Backend::kScalar);
    const double scalar_s = TimePerCall(encode_once, iters);
    tensor::simd::ForceBackend(vector_backend);
    const double vector_s = TimePerCall(encode_once, iters);
    encode_speedup = scalar_s / vector_s;

    // fp32 vs int8 on the same weights and sequence (vector backend).
    const core::QuantizedEncoder quantized(encoder);
    text::EncodedInput input;
    input.ids = ids;
    input.length = config.max_len;
    const double int8_s =
        TimePerCall([&] { quantized.Encode(input); }, iters);
    int8_speedup = vector_s / int8_s;

    obs::JsonValue encode = obs::JsonValue::Object();
    encode.Set("scalar_ms", obs::JsonValue(scalar_s * 1e3));
    encode.Set("vector_ms", obs::JsonValue(vector_s * 1e3));
    encode.Set("speedup", obs::JsonValue(encode_speedup));
    encode.Set("gate_min_speedup", obs::JsonValue(kGateEncodeSpeedup));
    encode.Set("gate",
               obs::JsonValue(std::string(
                   !have_vector
                       ? "skipped (no vector backend on this host)"
                       : (encode_speedup >= kGateEncodeSpeedup ? "pass"
                                                               : "fail"))));
    simd_section.Set("encode", std::move(encode));

    obs::JsonValue int8_json = obs::JsonValue::Object();
    int8_json.Set("fp32_ms", obs::JsonValue(vector_s * 1e3));
    int8_json.Set("int8_ms", obs::JsonValue(int8_s * 1e3));
    int8_json.Set("speedup_vs_fp32", obs::JsonValue(int8_speedup));
    simd_section.Set("int8_encode", std::move(int8_json));

    std::printf(
        "encode: scalar %.3f ms, %s %.3f ms (%.2fx); int8 %.3f ms "
        "(%.2fx vs fp32)\n",
        scalar_s * 1e3, tensor::simd::BackendName(vector_backend),
        vector_s * 1e3, encode_speedup, int8_s * 1e3, int8_speedup);
  }
  tensor::simd::ForceBackend(entry_backend);  // undo the sweep's forcing
  tensor::SetComputeThreads(0);  // restore the env/hardware default

  const bool gate_applies = hw >= kGateThreads;
  const bool gate_ok = gate_speedup >= kGateSpeedup;
  obs::JsonValue section = obs::JsonValue::Object();
  section.Set("hardware_concurrency", obs::JsonValue(hw));
  section.Set("sizes", std::move(sizes_json));
  section.Set("bit_identical_across_threads", obs::JsonValue(all_identical));
  section.Set("best_speedup_at_4_threads", obs::JsonValue(gate_speedup));
  section.Set("gate_min_speedup", obs::JsonValue(kGateSpeedup));
  section.Set("gate", obs::JsonValue(std::string(
                          !gate_applies ? "skipped (host has < 4 hardware "
                                          "threads; no real parallelism "
                                          "available)"
                                        : (gate_ok ? "pass" : "fail"))));

  // Merge into the shared serve benchmark artifact instead of clobbering
  // whatever serve_loadgen already wrote there.
  obs::JsonValue report = obs::JsonValue::Object();
  {
    std::ifstream in(out_path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      obs::JsonValue existing;
      if (obs::JsonValue::Parse(buffer.str(), &existing)) {
        report = std::move(existing);
      }
    }
  }
  report.Set("matmul_scaling", std::move(section));
  report.Set("simd", std::move(simd_section));
  std::ofstream out(out_path);
  out << report.Dump(2) << "\n";
  const bool encode_gate_ok = encode_speedup >= kGateEncodeSpeedup;
  std::printf(
      "matmul_bench: wrote %s (4-thread speedup %.2fx, gate %s; "
      "simd encode speedup %.2fx, gate %s)\n",
      out_path.c_str(), gate_speedup,
      !gate_applies ? "skipped: <4 hardware threads"
                    : (gate_ok ? "pass" : "FAIL"),
      encode_speedup,
      !have_vector ? "skipped: no vector backend"
                   : (encode_gate_ok ? "pass" : "FAIL"));
  if (!all_identical) {
    std::fprintf(stderr,
                 "matmul_bench: outputs differ across thread counts\n");
    return 1;
  }
  if (have_vector && !encode_gate_ok) {
    std::fprintf(stderr,
                 "matmul_bench: simd encode speedup %.2fx below the %.1fx "
                 "gate\n",
                 encode_speedup, kGateEncodeSpeedup);
    return 1;
  }
  return gate_applies && !gate_ok ? 1 : 0;
}

}  // namespace
}  // namespace bench
}  // namespace telekit

int main(int argc, char** argv) { return telekit::bench::Main(argc, argv); }

// matmul_bench: intra-op ComputePool scaling on square GEMMs.
//
// Sweeps compute_threads over {1, 2, 4, 8} on square MatMuls (>= 256) and
// records throughput + speedup-vs-1-thread into BENCH_serve.json under
// "matmul_scaling" (merging with an existing report, so serve_loadgen and
// this bench share one artifact). Also asserts that every thread count
// produces bit-identical outputs — the ComputePool determinism contract.
//
// Exit code 1 when the host has >= 4 hardware threads but the 4-thread
// speedup is < 2.5x. On smaller hosts the sweep still runs and records
// honest numbers (threads just timeslice), and the gate is reported as
// skipped instead of failed.
//
// Flags: --out=PATH (default BENCH_serve.json), --iters=N (0 = auto),
// plus the shared --obs-json/--log-level/--compute-threads.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "tensor/compute_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace telekit {
namespace bench {
namespace {

constexpr int kSizes[] = {256, 384, 512};
constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr double kGateSpeedup = 2.5;
constexpr int kGateThreads = 4;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

tensor::Tensor RandomMatrix(int n, uint64_t seed) {
  Rng rng(seed);
  return tensor::Tensor::Rand({n, n}, rng, -1.0f, 1.0f);
}

struct SizeResult {
  int size = 0;
  // Indexed like kThreadCounts.
  std::vector<double> gflops;
  std::vector<double> speedup;
  bool bit_identical = true;
};

SizeResult BenchSize(int n, int iters_flag) {
  tensor::NoGradGuard no_grad;
  const tensor::Tensor a = RandomMatrix(n, 0x5eed0000u + n);
  const tensor::Tensor b = RandomMatrix(n, 0xfeed0000u + n);
  const double flops_per_mm = 2.0 * n * n * static_cast<double>(n);

  SizeResult result;
  result.size = n;

  // Calibrate the iteration count at 1 thread so each measurement runs
  // ~0.3 s regardless of host speed.
  tensor::SetComputeThreads(1);
  const double t0 = NowSeconds();
  std::vector<float> reference = tensor::MatMul(a, b).data();
  const double once = std::max(NowSeconds() - t0, 1e-6);
  const int iters =
      iters_flag > 0 ? iters_flag
                     : std::max(3, static_cast<int>(std::lround(0.3 / once)));

  for (int threads : kThreadCounts) {
    tensor::SetComputeThreads(threads);
    tensor::Tensor warm = tensor::MatMul(a, b);  // spawn workers off-clock
    if (warm.data() != reference) result.bit_identical = false;
    const double start = NowSeconds();
    for (int it = 0; it < iters; ++it) {
      tensor::Tensor c = tensor::MatMul(a, b);
      if (c.data() != reference) result.bit_identical = false;
    }
    const double elapsed = std::max(NowSeconds() - start, 1e-9);
    result.gflops.push_back(flops_per_mm * iters / elapsed / 1e9);
    result.speedup.push_back(result.gflops.back() / result.gflops.front());
  }
  return result;
}

int Main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  std::string out_path = "BENCH_serve.json";
  int iters = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    if (arg.rfind("--iters=", 0) == 0) iters = std::atoi(arg.c_str() + 8);
  }

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("matmul_bench: hardware_concurrency=%d\n", hw);
  std::printf("%6s %8s", "size", "threads:");
  for (int t : kThreadCounts) std::printf(" %8d", t);
  std::printf("\n");

  obs::JsonValue sizes_json = obs::JsonValue::Array();
  bool all_identical = true;
  double gate_speedup = 0.0;
  for (int n : kSizes) {
    const SizeResult r = BenchSize(n, iters);
    all_identical = all_identical && r.bit_identical;
    std::printf("%6d %8s", n, "GFLOP/s");
    for (double g : r.gflops) std::printf(" %8.2f", g);
    std::printf("\n%6s %8s", "", "speedup");
    for (double s : r.speedup) std::printf(" %8.2f", s);
    std::printf("  bit-identical=%s\n", r.bit_identical ? "yes" : "NO");

    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("size", obs::JsonValue(r.size));
    obs::JsonValue per_thread = obs::JsonValue::Array();
    for (size_t i = 0; i < r.gflops.size(); ++i) {
      obs::JsonValue cell = obs::JsonValue::Object();
      cell.Set("threads", obs::JsonValue(kThreadCounts[i]));
      cell.Set("gflops", obs::JsonValue(r.gflops[i]));
      cell.Set("speedup_vs_1", obs::JsonValue(r.speedup[i]));
      per_thread.Append(std::move(cell));
    }
    row.Set("runs", std::move(per_thread));
    row.Set("bit_identical", obs::JsonValue(r.bit_identical));
    sizes_json.Append(std::move(row));
    for (size_t i = 0; i < r.speedup.size(); ++i) {
      if (kThreadCounts[i] == kGateThreads) {
        gate_speedup = std::max(gate_speedup, r.speedup[i]);
      }
    }
  }
  tensor::SetComputeThreads(0);  // restore the env/hardware default

  const bool gate_applies = hw >= kGateThreads;
  const bool gate_ok = gate_speedup >= kGateSpeedup;
  obs::JsonValue section = obs::JsonValue::Object();
  section.Set("hardware_concurrency", obs::JsonValue(hw));
  section.Set("sizes", std::move(sizes_json));
  section.Set("bit_identical_across_threads", obs::JsonValue(all_identical));
  section.Set("best_speedup_at_4_threads", obs::JsonValue(gate_speedup));
  section.Set("gate_min_speedup", obs::JsonValue(kGateSpeedup));
  section.Set("gate", obs::JsonValue(std::string(
                          !gate_applies ? "skipped (host has < 4 hardware "
                                          "threads; no real parallelism "
                                          "available)"
                                        : (gate_ok ? "pass" : "fail"))));

  // Merge into the shared serve benchmark artifact instead of clobbering
  // whatever serve_loadgen already wrote there.
  obs::JsonValue report = obs::JsonValue::Object();
  {
    std::ifstream in(out_path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      obs::JsonValue existing;
      if (obs::JsonValue::Parse(buffer.str(), &existing)) {
        report = std::move(existing);
      }
    }
  }
  report.Set("matmul_scaling", std::move(section));
  std::ofstream out(out_path);
  out << report.Dump(2) << "\n";
  std::printf("matmul_bench: wrote %s (4-thread speedup %.2fx, gate %s)\n",
              out_path.c_str(), gate_speedup,
              !gate_applies ? "skipped: <4 hardware threads"
                            : (gate_ok ? "pass" : "FAIL"));
  if (!all_identical) {
    std::fprintf(stderr,
                 "matmul_bench: outputs differ across thread counts\n");
    return 1;
  }
  return gate_applies && !gate_ok ? 1 : 0;
}

}  // namespace
}  // namespace bench
}  // namespace telekit

int main(int argc, char** argv) { return telekit::bench::Main(argc, argv); }

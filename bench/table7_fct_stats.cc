// Reproduces Table VII: data statistics for fault chain tracing
// (#Nodes, #Edges (relations), #Train, #Valid, #Test).
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "synth/task_data.h"

namespace telekit {
namespace {

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ZooConfig config = bench::BenchZooConfig();
  synth::WorldModel world(config.world);
  synth::LogGenerator logs(world, config.log);
  synth::FctDataGen gen(world, logs);
  Rng rng(config.seed ^ 0xDDD4ULL);
  synth::FctDataset dataset =
      gen.Generate(bench::BenchFctConfig(), rng);

  TablePrinter table("Table VII: Data statistics for fault chain tracing");
  table.SetHeader(
      {"Source", "#Nodes", "#Edges", "#Train", "#Valid", "#Test"});
  table.AddRow("TeleKit (synthetic)",
               {static_cast<double>(dataset.store.num_entities()),
                static_cast<double>(dataset.store.num_relations()),
                static_cast<double>(dataset.train.size()),
                static_cast<double>(dataset.valid.size()),
                static_cast<double>(dataset.test.size())},
               0);
  table.AddRow("Paper", {243, 100, 232, 33, 32}, 0);
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

// Reproduces Table III: data statistics for root-cause analysis
// (#Graphs, #Features, average #Nodes, average #Edges).
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "synth/task_data.h"

namespace telekit {
namespace {

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ZooConfig config = bench::BenchZooConfig();
  synth::WorldModel world(config.world);
  synth::LogGenerator logs(world, config.log);
  synth::RcaDataGen gen(world, logs);
  Rng rng(config.seed ^ 0xAAA1ULL);
  synth::RcaDataset dataset =
      gen.Generate(synth::RcaDataConfig{.num_graphs = 127}, rng);

  TablePrinter table("Table III: Data statistics for root-cause analysis");
  table.SetHeader({"Source", "#Graphs", "#Features", "#Nodes", "#Edges"});
  table.AddRow("TeleKit (synthetic)",
               {static_cast<double>(dataset.graphs.size()),
                static_cast<double>(dataset.num_features),
                dataset.AverageNodes(), dataset.AverageEdges()});
  table.AddRow("Paper", {127, 349, 10.96, 51.15});
  table.Print(std::cout);
  std::cout << "#Features differs because the synthetic world carries "
            << dataset.num_features
            << " abnormal-event types (alarms + KPI anomalies); the shape "
               "(graph count, graph size) matches the paper.\n";
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

// Pre-training objective ablation: the paper adopts ELECTRA replaced-token
// detection plus SimCSE on top of MLM (Sec. III-B). This bench pre-trains
// the same encoder under (a) full ELECTRA + SimCSE, (b) ELECTRA without
// SimCSE, and (c) plain MLM, then measures embedding-space quality: [CLS]
// anisotropy (mean pairwise cosine over alarm names — lower is better; the
// collapse SimCSE exists to fight) and same-service similarity structure.
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "synth/corpus.h"
#include "synth/world.h"
#include "text/tokenizer.h"

namespace telekit {
namespace {

struct Setting {
  std::string name;
  core::PretrainObjective objective;
  float simcse_weight;
};

int Main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  core::ZooConfig config = bench::BenchZooConfig();
  config.pretrain.steps = 250;  // dedicated short runs
  synth::WorldModel world(config.world);
  synth::CorpusGenerator corpus_gen(world, config.corpus);
  Rng corpus_rng(config.seed);
  auto corpus = corpus_gen.GenerateTeleCorpus(corpus_rng);
  corpus.resize(2500);

  text::Tokenizer tokenizer(config.tokenizer);
  std::vector<std::string> vocab_corpus = corpus;
  for (const synth::AlarmType& alarm : world.alarms()) {
    vocab_corpus.push_back(alarm.name);
  }
  tokenizer.BuildVocab(vocab_corpus);
  tokenizer.AddDomainPhrases(world.DomainPhrases());
  core::EncoderConfig encoder_config = config.encoder;
  encoder_config.vocab_size = tokenizer.vocab().size();
  encoder_config.max_len = config.tokenizer.max_len;

  std::vector<text::EncodedInput> encoded;
  for (const std::string& s : corpus) {
    encoded.push_back(tokenizer.EncodeSentence(s));
  }

  const Setting settings[] = {
      {"ELECTRA + SimCSE (paper)", core::PretrainObjective::kElectra, 0.3f},
      {"ELECTRA, no SimCSE", core::PretrainObjective::kElectra, 0.0f},
      {"plain MLM", core::PretrainObjective::kMlmOnly, 0.0f},
      {"plain MLM + SimCSE", core::PretrainObjective::kMlmOnly, 0.3f},
  };

  TablePrinter table("Pre-training objective ablation (embedding quality)");
  table.SetHeader({"Objective", "mean pairwise cos (anisotropy)",
                   "same-service cos gap"});
  for (const Setting& setting : settings) {
    std::cerr << "[pretrain-ablation] " << setting.name << "\n";
    Rng rng(config.seed ^ 0x42ULL);
    core::TeleBert model(encoder_config, rng);
    core::PretrainOptions options = config.pretrain;
    options.objective = setting.objective;
    options.simcse_weight = setting.simcse_weight;
    Rng train_rng(config.seed ^ 0x43ULL);
    model.Pretrain(encoded, tokenizer.vocab(), options, train_rng);

    // Embed every alarm name; measure anisotropy + structure.
    std::vector<std::vector<float>> embeddings;
    for (const synth::AlarmType& alarm : world.alarms()) {
      embeddings.push_back(
          model.ServiceVector(tokenizer.EncodeSentence(alarm.name)));
    }
    double all_cos = 0, same_cos = 0, diff_cos = 0;
    int all_n = 0, same_n = 0, diff_n = 0;
    for (size_t i = 0; i < embeddings.size(); ++i) {
      for (size_t j = i + 1; j < embeddings.size(); ++j) {
        const double c =
            eval::CosineSimilarity(embeddings[i], embeddings[j]);
        all_cos += c;
        ++all_n;
        if (world.alarms()[i].service == world.alarms()[j].service) {
          same_cos += c;
          ++same_n;
        } else {
          diff_cos += c;
          ++diff_n;
        }
      }
    }
    table.AddRow(setting.name,
                 {all_cos / all_n, same_cos / same_n - diff_cos / diff_n}, 3);
  }
  table.Print(std::cout);
  std::cout << "Shape check: SimCSE settings should show lower anisotropy "
               "(less [CLS] collapse) while preserving the same-service "
               "similarity gap.\n";
  return 0;
}

}  // namespace
}  // namespace telekit

int main(int argc, char** argv) { return telekit::Main(argc, argv); }

// Retrieval benchmark (DESIGN.md §12): recall/latency frontier of the
// HNSW index against the exact flat scan, plus the int8 query-encoding
// recall delta through the real encoder. Two parts:
//
//  1. Synthetic at-scale frontier: N random unit vectors (default 6000,
//     dim 96 — far past the serving corpus, where the graph actually
//     earns its keep), queries perturbed from stored vectors, recall@1 /
//     recall@10 and per-query p50/p99 across efSearch. Gates: some
//     efSearch reaches recall@10 >= 0.95, and at the first such operating
//     point HNSW is >= 3x faster than the flat scan (p50).
//
//  2. Encoder-in-the-loop: the serving corpus (catalogue + tickets)
//     embedded by the real TeleBERT service encoder; queries are
//     word-dropped doc texts. Ground truth is the exact scan over fp32
//     query embeddings; the int8 path re-encodes the same queries with
//     the calibrated QuantizedEncoder (exactly what --precision=int8
//     retrieve requests do). Gate: |fp32 - int8| recall@10 <= 0.05.
//
// Writes BENCH_retrieval.json; exit 0 iff every gate passed.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flag_parse.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/model_zoo.h"
#include "index/ann.h"
#include "index/corpus_index.h"
#include "obs/json.h"
#include "serve/model_host.h"
#include "synth/tickets.h"

namespace telekit {
namespace bench {
namespace {

struct RetrievalFlags {
  int synthetic_n = 8000;
  int synthetic_dim = 96;
  int queries = 200;
  int num_tickets = 96;
  std::string out = "BENCH_retrieval.json";
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t i = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(i, values.size() - 1)];
}

double RecallAtK(const std::vector<index::SearchResult>& truth,
                 const std::vector<index::SearchResult>& got, size_t k) {
  size_t hits = 0;
  const size_t limit = std::min(k, truth.size());
  for (size_t i = 0; i < limit; ++i) {
    for (size_t j = 0; j < std::min(k, got.size()); ++j) {
      if (got[j].id == truth[i].id) {
        ++hits;
        break;
      }
    }
  }
  return limit == 0 ? 0.0 : static_cast<double>(hits) / limit;
}

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Part 1: recall/latency frontier over a synthetic vector set big enough
/// that the flat scan hurts.
obs::JsonValue RunSyntheticFrontier(const RetrievalFlags& flags,
                                    bool* recall_passed,
                                    bool* speedup_passed) {
  const int n = flags.synthetic_n;
  const int dim = flags.synthetic_dim;
  const int num_queries = flags.queries;
  Rng rng(20230401);

  // Clustered vectors, like a real document corpus (alarm families, KPI
  // groups): ~64 points around each of n/64 centers. Uniform Gaussian
  // noise with no structure would make every neighbour list arbitrary —
  // adversarial for any graph index and unrepresentative of text
  // embeddings.
  const int num_clusters = std::max(1, n / 64);
  std::vector<std::vector<float>> centers(num_clusters,
                                          std::vector<float>(dim));
  for (auto& c : centers) {
    for (float& x : c) x = static_cast<float>(rng.Normal());
  }
  std::vector<std::vector<float>> base(n, std::vector<float>(dim));
  for (int i = 0; i < n; ++i) {
    const std::vector<float>& c = centers[i % num_clusters];
    for (int d = 0; d < dim; ++d) {
      base[i][d] = c[d] + 0.30f * static_cast<float>(rng.Normal());
    }
  }

  // Queries perturb stored vectors: correlated enough that top-k is
  // meaningful, noisy enough that the graph has to work for it.
  std::vector<std::vector<float>> queries(num_queries,
                                          std::vector<float>(dim));
  for (int q = 0; q < num_queries; ++q) {
    const std::vector<float>& anchor =
        base[static_cast<size_t>(rng.UniformInt(n))];
    for (int d = 0; d < dim; ++d) {
      queries[q][d] =
          anchor[d] + 0.20f * static_cast<float>(rng.Normal());
    }
    index::NormalizeVector(queries[q].data(), dim);
  }

  index::FlatIndex flat(dim);
  index::HnswOptions options;  // M=16, efc=100 — the serving defaults
  index::HnswIndex hnsw(dim, options);
  const Clock::time_point build_start = Clock::now();
  for (const auto& v : base) flat.Add(v);
  const double flat_build_ms = ElapsedUs(build_start) / 1e3;
  const Clock::time_point hnsw_start = Clock::now();
  for (const auto& v : base) hnsw.Add(v);
  const double hnsw_build_ms = ElapsedUs(hnsw_start) / 1e3;

  constexpr int kTopK = 10;
  std::vector<std::vector<index::SearchResult>> truth(num_queries);
  std::vector<double> flat_us(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    const Clock::time_point start = Clock::now();
    truth[q] = flat.Search(queries[q].data(), kTopK);
    flat_us[q] = ElapsedUs(start);
  }
  const double flat_p50 = Percentile(flat_us, 0.50);
  const double flat_p99 = Percentile(flat_us, 0.99);

  TablePrinter table("HNSW recall/latency frontier (synthetic, n=" +
                     std::to_string(n) + ", d=" + std::to_string(dim) + ")");
  table.SetHeader({"efSearch", "recall@1", "recall@10", "p50_us", "p99_us",
                   "speedup_p50"});

  obs::JsonValue curve = obs::JsonValue::Array();
  int operating_ef = -1;
  double operating_speedup = 0.0;
  double operating_recall10 = 0.0;
  for (int ef : {4, 8, 16, 32, 64, 128}) {
    double recall1 = 0.0;
    double recall10 = 0.0;
    std::vector<double> us(num_queries);
    for (int q = 0; q < num_queries; ++q) {
      const Clock::time_point start = Clock::now();
      const std::vector<index::SearchResult> got =
          hnsw.Search(queries[q].data(), kTopK, ef);
      us[q] = ElapsedUs(start);
      recall1 += RecallAtK(truth[q], got, 1);
      recall10 += RecallAtK(truth[q], got, kTopK);
    }
    recall1 /= num_queries;
    recall10 /= num_queries;
    const double p50 = Percentile(us, 0.50);
    const double p99 = Percentile(us, 0.99);
    const double speedup = p50 > 0.0 ? flat_p50 / p50 : 0.0;
    if (operating_ef < 0 && recall10 >= 0.95) {
      operating_ef = ef;
      operating_speedup = speedup;
      operating_recall10 = recall10;
    }
    table.AddRow(std::to_string(ef), {recall1, recall10, p50, p99, speedup},
                 3);
    obs::JsonValue point = obs::JsonValue::Object();
    point.Set("ef_search", obs::JsonValue(ef));
    point.Set("recall_at_1", obs::JsonValue(recall1));
    point.Set("recall_at_10", obs::JsonValue(recall10));
    point.Set("p50_us", obs::JsonValue(p50));
    point.Set("p99_us", obs::JsonValue(p99));
    point.Set("speedup_p50", obs::JsonValue(speedup));
    curve.Append(std::move(point));
  }
  table.Print(std::cout);

  *recall_passed = operating_ef > 0;
  *speedup_passed = operating_ef > 0 && operating_speedup >= 3.0;
  std::cout << "flat scan:       p50 " << flat_p50 << " us, p99 " << flat_p99
            << " us (build " << flat_build_ms << " ms; hnsw build "
            << hnsw_build_ms << " ms)\n";
  if (operating_ef > 0) {
    std::cout << "operating point: efSearch=" << operating_ef
              << " recall@10=" << operating_recall10 << " speedup="
              << operating_speedup << "x (gates: recall@10 >= 0.95 "
              << (*recall_passed ? "PASS" : "FAIL")
              << ", speedup >= 3x " << (*speedup_passed ? "PASS" : "FAIL")
              << ")\n";
  } else {
    std::cout << "operating point: NONE reached recall@10 >= 0.95 (FAIL)\n";
  }

  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("n", obs::JsonValue(n));
  out.Set("dim", obs::JsonValue(dim));
  out.Set("queries", obs::JsonValue(num_queries));
  out.Set("M", obs::JsonValue(options.M));
  out.Set("ef_construction", obs::JsonValue(options.ef_construction));
  out.Set("flat_build_ms", obs::JsonValue(flat_build_ms));
  out.Set("hnsw_build_ms", obs::JsonValue(hnsw_build_ms));
  out.Set("flat_p50_us", obs::JsonValue(flat_p50));
  out.Set("flat_p99_us", obs::JsonValue(flat_p99));
  out.Set("curve", std::move(curve));
  obs::JsonValue op = obs::JsonValue::Object();
  op.Set("ef_search", obs::JsonValue(operating_ef));
  op.Set("recall_at_10", obs::JsonValue(operating_recall10));
  op.Set("speedup_p50", obs::JsonValue(operating_speedup));
  out.Set("operating_point", std::move(op));
  return out;
}

/// Word-dropout paraphrase of a doc text: keep two of every three tokens.
std::string DropWords(const std::string& text) {
  std::string out;
  int word = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(' ', start);
    if (end == std::string::npos) end = text.size();
    if (word % 3 != 2) {
      if (!out.empty()) out.push_back(' ');
      out.append(text, start, end - start);
    }
    ++word;
    start = end + 1;
  }
  return out.empty() ? text : out;
}

/// Part 2: the real serving corpus + encoder; int8 query embeddings vs
/// fp32 through the same index.
obs::JsonValue RunEncoderDelta(const RetrievalFlags& flags,
                               bool* delta_passed) {
  core::ZooConfig config;
  config.seed = 20230402;
  config.world.num_alarm_types = 32;
  config.corpus.num_tele_sentences = 800;
  config.corpus.num_general_sentences = 800;
  config.num_episodes = 20;
  config.pretrain.steps = 0;
  config.cache_dir = "";
  auto zoo = std::make_shared<core::ModelZoo>(config);
  zoo->BuildData();
  zoo->BuildPretrained();

  serve::EngineOptions engine_options;
  engine_options.num_workers = 1;
  serve::BundleIndexOptions index_options;
  index_options.enable = true;
  index_options.num_tickets = flags.num_tickets;
  auto built = serve::BuildModelBundle("telebert", zoo, engine_options,
                                       index_options);
  if (!built.ok()) {
    std::cerr << "bundle build failed: " << built.status().ToString() << "\n";
    std::exit(1);
  }
  std::shared_ptr<serve::ModelBundle> bundle = *built;
  const index::CorpusIndex& index = *bundle->index;

  // Queries: word-dropped doc texts, one per doc — paraphrases with a
  // known best answer (the doc they came from).
  std::vector<std::string> query_texts;
  query_texts.reserve(index.size());
  for (size_t i = 0; i < index.size(); ++i) {
    query_texts.push_back(DropWords(index.doc(static_cast<int>(i)).text));
  }

  std::vector<text::EncodedInput> inputs;
  inputs.reserve(query_texts.size());
  std::vector<const text::EncodedInput*> ptrs;
  ptrs.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    inputs.push_back(bundle->service->BuildInput(
        text, core::ServiceMode::kEntityNoAttr));
    ptrs.push_back(&inputs.back());
  }
  const std::vector<std::vector<float>> fp32 =
      bundle->service->EncodeInputs(ptrs);
  const std::vector<std::vector<float>> int8 =
      bundle->quantized->EncodeBatch(ptrs);

  constexpr int kTopK = 10;
  double fp32_recall10 = 0.0;
  double int8_recall10 = 0.0;
  double self_hit1 = 0.0;
  for (size_t q = 0; q < query_texts.size(); ++q) {
    const std::vector<index::ScoredDoc> truth =
        index.SearchExact(fp32[q].data(), kTopK);
    const std::vector<index::ScoredDoc> fp32_got =
        index.Search(fp32[q].data(), kTopK);
    const std::vector<index::ScoredDoc> int8_got =
        index.Search(int8[q].data(), kTopK);
    auto recall = [&truth](const std::vector<index::ScoredDoc>& got) {
      size_t hits = 0;
      for (const index::ScoredDoc& t : truth) {
        for (const index::ScoredDoc& g : got) {
          if (g.doc_id == t.doc_id) {
            ++hits;
            break;
          }
        }
      }
      return truth.empty() ? 0.0
                           : static_cast<double>(hits) / truth.size();
    };
    fp32_recall10 += recall(fp32_got);
    int8_recall10 += recall(int8_got);
    if (!fp32_got.empty() &&
        fp32_got.front().doc_id == static_cast<int>(q)) {
      self_hit1 += 1.0;
    }
  }
  const double nq = static_cast<double>(query_texts.size());
  fp32_recall10 /= nq;
  int8_recall10 /= nq;
  self_hit1 /= nq;
  const double delta = fp32_recall10 - int8_recall10;
  *delta_passed = delta <= 0.05 && delta >= -0.05;

  std::cout << "encoder corpus:  " << index.size() << " docs, dim "
            << index.dim() << "\n"
            << "fp32 recall@10:  " << fp32_recall10 << " (self-hit@1 "
            << self_hit1 << ")\nint8 recall@10:  " << int8_recall10
            << "\nint8 delta:      " << delta
            << " (gate: |delta| <= 0.05) "
            << (*delta_passed ? "PASS" : "FAIL") << "\n";

  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("docs", obs::JsonValue(index.size()));
  out.Set("dim", obs::JsonValue(index.dim()));
  out.Set("queries", obs::JsonValue(static_cast<uint64_t>(query_texts.size())));
  out.Set("fp32_recall_at_10", obs::JsonValue(fp32_recall10));
  out.Set("int8_recall_at_10", obs::JsonValue(int8_recall10));
  out.Set("fp32_self_hit_at_1", obs::JsonValue(self_hit1));
  out.Set("delta", obs::JsonValue(delta));
  return out;
}

int Main(int argc, char** argv) {
  ObsSession obs_session(argc, argv);
  RetrievalFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("synthetic-n"))
      flags.synthetic_n =
          static_cast<int>(ParseIntFlagOrDie("synthetic-n", v, 64, 1 << 22));
    else if (const char* v = value("synthetic-dim"))
      flags.synthetic_dim = static_cast<int>(
          ParseIntFlagOrDie("synthetic-dim", v, 4, 4096));
    else if (const char* v = value("queries"))
      flags.queries =
          static_cast<int>(ParseIntFlagOrDie("queries", v, 1, 1 << 20));
    else if (const char* v = value("num-tickets"))
      flags.num_tickets = static_cast<int>(
          ParseIntFlagOrDie("num-tickets", v, 0, 1 << 20));
    else if (const char* v = value("out"))
      flags.out = v;
  }

  bool recall_passed = false;
  bool speedup_passed = false;
  bool delta_passed = false;
  obs::JsonValue synthetic =
      RunSyntheticFrontier(flags, &recall_passed, &speedup_passed);
  obs::JsonValue encoder = RunEncoderDelta(flags, &delta_passed);

  obs::JsonValue report = obs::JsonValue::Object();
  report.Set("benchmark", obs::JsonValue("retrieval_bench"));
  report.Set("synthetic", std::move(synthetic));
  report.Set("encoder", std::move(encoder));
  obs::JsonValue gates = obs::JsonValue::Object();
  gates.Set("recall_at_10_ge_0_95", obs::JsonValue(recall_passed));
  gates.Set("hnsw_speedup_ge_3x", obs::JsonValue(speedup_passed));
  gates.Set("int8_delta_le_0_05", obs::JsonValue(delta_passed));
  const bool all_passed = recall_passed && speedup_passed && delta_passed;
  gates.Set("passed", obs::JsonValue(all_passed));
  report.Set("gates", std::move(gates));
  report.Set("passed", obs::JsonValue(all_passed));

  std::ofstream out_file(flags.out);
  out_file << report.Dump(2) << "\n";
  std::cout << "wrote " << flags.out << "\n";
  return all_passed ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace telekit

int main(int argc, char** argv) { return telekit::bench::Main(argc, argv); }

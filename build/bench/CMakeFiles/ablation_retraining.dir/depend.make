# Empty dependencies file for ablation_retraining.
# This may be replaced when dependencies are built.

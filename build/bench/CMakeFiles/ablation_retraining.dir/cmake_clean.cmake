file(REMOVE_RECURSE
  "CMakeFiles/ablation_retraining.dir/ablation_retraining.cc.o"
  "CMakeFiles/ablation_retraining.dir/ablation_retraining.cc.o.d"
  "ablation_retraining"
  "ablation_retraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

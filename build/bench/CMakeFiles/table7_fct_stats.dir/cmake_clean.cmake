file(REMOVE_RECURSE
  "CMakeFiles/table7_fct_stats.dir/table7_fct_stats.cc.o"
  "CMakeFiles/table7_fct_stats.dir/table7_fct_stats.cc.o.d"
  "table7_fct_stats"
  "table7_fct_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_fct_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table7_fct_stats.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for table4_rca_results.
# This may be replaced when dependencies are built.

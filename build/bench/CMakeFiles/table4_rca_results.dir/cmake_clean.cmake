file(REMOVE_RECURSE
  "CMakeFiles/table4_rca_results.dir/table4_rca_results.cc.o"
  "CMakeFiles/table4_rca_results.dir/table4_rca_results.cc.o.d"
  "table4_rca_results"
  "table4_rca_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_rca_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table6_eap_results.dir/table6_eap_results.cc.o"
  "CMakeFiles/table6_eap_results.dir/table6_eap_results.cc.o.d"
  "table6_eap_results"
  "table6_eap_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_eap_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

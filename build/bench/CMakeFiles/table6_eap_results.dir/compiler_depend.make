# Empty compiler generated dependencies file for table6_eap_results.
# This may be replaced when dependencies are built.

# Empty dependencies file for table8_fct_results.
# This may be replaced when dependencies are built.

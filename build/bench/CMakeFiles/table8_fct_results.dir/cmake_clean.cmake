file(REMOVE_RECURSE
  "CMakeFiles/table8_fct_results.dir/table8_fct_results.cc.o"
  "CMakeFiles/table8_fct_results.dir/table8_fct_results.cc.o.d"
  "table8_fct_results"
  "table8_fct_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_fct_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

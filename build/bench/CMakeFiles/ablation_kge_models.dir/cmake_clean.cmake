file(REMOVE_RECURSE
  "CMakeFiles/ablation_kge_models.dir/ablation_kge_models.cc.o"
  "CMakeFiles/ablation_kge_models.dir/ablation_kge_models.cc.o.d"
  "ablation_kge_models"
  "ablation_kge_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kge_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_kge_models.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig10_numeric_space.
# This may be replaced when dependencies are built.

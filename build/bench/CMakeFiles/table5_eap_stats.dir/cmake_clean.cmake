file(REMOVE_RECURSE
  "CMakeFiles/table5_eap_stats.dir/table5_eap_stats.cc.o"
  "CMakeFiles/table5_eap_stats.dir/table5_eap_stats.cc.o.d"
  "table5_eap_stats"
  "table5_eap_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_eap_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lowresource_rca.dir/lowresource_rca.cc.o"
  "CMakeFiles/lowresource_rca.dir/lowresource_rca.cc.o.d"
  "lowresource_rca"
  "lowresource_rca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowresource_rca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

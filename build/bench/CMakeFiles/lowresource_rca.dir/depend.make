# Empty dependencies file for lowresource_rca.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_pretraining.dir/ablation_pretraining.cc.o"
  "CMakeFiles/ablation_pretraining.dir/ablation_pretraining.cc.o.d"
  "ablation_pretraining"
  "ablation_pretraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

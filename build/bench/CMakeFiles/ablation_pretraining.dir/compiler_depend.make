# Empty compiler generated dependencies file for ablation_pretraining.
# This may be replaced when dependencies are built.

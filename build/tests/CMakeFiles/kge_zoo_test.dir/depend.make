# Empty dependencies file for kge_zoo_test.
# This may be replaced when dependencies are built.

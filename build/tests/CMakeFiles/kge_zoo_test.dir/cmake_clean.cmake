file(REMOVE_RECURSE
  "CMakeFiles/kge_zoo_test.dir/kge_zoo_test.cc.o"
  "CMakeFiles/kge_zoo_test.dir/kge_zoo_test.cc.o.d"
  "kge_zoo_test"
  "kge_zoo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kge_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/signaling_test.dir/signaling_test.cc.o"
  "CMakeFiles/signaling_test.dir/signaling_test.cc.o.d"
  "signaling_test"
  "signaling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

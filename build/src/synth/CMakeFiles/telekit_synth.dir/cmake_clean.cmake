file(REMOVE_RECURSE
  "CMakeFiles/telekit_synth.dir/corpus.cc.o"
  "CMakeFiles/telekit_synth.dir/corpus.cc.o.d"
  "CMakeFiles/telekit_synth.dir/kg_gen.cc.o"
  "CMakeFiles/telekit_synth.dir/kg_gen.cc.o.d"
  "CMakeFiles/telekit_synth.dir/log.cc.o"
  "CMakeFiles/telekit_synth.dir/log.cc.o.d"
  "CMakeFiles/telekit_synth.dir/signaling.cc.o"
  "CMakeFiles/telekit_synth.dir/signaling.cc.o.d"
  "CMakeFiles/telekit_synth.dir/task_data.cc.o"
  "CMakeFiles/telekit_synth.dir/task_data.cc.o.d"
  "CMakeFiles/telekit_synth.dir/world.cc.o"
  "CMakeFiles/telekit_synth.dir/world.cc.o.d"
  "libtelekit_synth.a"
  "libtelekit_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telekit_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

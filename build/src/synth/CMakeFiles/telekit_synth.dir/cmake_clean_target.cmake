file(REMOVE_RECURSE
  "libtelekit_synth.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/corpus.cc" "src/synth/CMakeFiles/telekit_synth.dir/corpus.cc.o" "gcc" "src/synth/CMakeFiles/telekit_synth.dir/corpus.cc.o.d"
  "/root/repo/src/synth/kg_gen.cc" "src/synth/CMakeFiles/telekit_synth.dir/kg_gen.cc.o" "gcc" "src/synth/CMakeFiles/telekit_synth.dir/kg_gen.cc.o.d"
  "/root/repo/src/synth/log.cc" "src/synth/CMakeFiles/telekit_synth.dir/log.cc.o" "gcc" "src/synth/CMakeFiles/telekit_synth.dir/log.cc.o.d"
  "/root/repo/src/synth/signaling.cc" "src/synth/CMakeFiles/telekit_synth.dir/signaling.cc.o" "gcc" "src/synth/CMakeFiles/telekit_synth.dir/signaling.cc.o.d"
  "/root/repo/src/synth/task_data.cc" "src/synth/CMakeFiles/telekit_synth.dir/task_data.cc.o" "gcc" "src/synth/CMakeFiles/telekit_synth.dir/task_data.cc.o.d"
  "/root/repo/src/synth/world.cc" "src/synth/CMakeFiles/telekit_synth.dir/world.cc.o" "gcc" "src/synth/CMakeFiles/telekit_synth.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/telekit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/telekit_text.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/telekit_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/telekit_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/telekit_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for telekit_synth.
# This may be replaced when dependencies are built.

# Empty dependencies file for telekit_tasks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/telekit_tasks.dir/eap.cc.o"
  "CMakeFiles/telekit_tasks.dir/eap.cc.o.d"
  "CMakeFiles/telekit_tasks.dir/fct.cc.o"
  "CMakeFiles/telekit_tasks.dir/fct.cc.o.d"
  "CMakeFiles/telekit_tasks.dir/rca.cc.o"
  "CMakeFiles/telekit_tasks.dir/rca.cc.o.d"
  "libtelekit_tasks.a"
  "libtelekit_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telekit_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtelekit_tasks.a"
)

# Empty compiler generated dependencies file for telekit_eval.
# This may be replaced when dependencies are built.

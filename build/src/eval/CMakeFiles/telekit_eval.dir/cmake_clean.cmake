file(REMOVE_RECURSE
  "CMakeFiles/telekit_eval.dir/metrics.cc.o"
  "CMakeFiles/telekit_eval.dir/metrics.cc.o.d"
  "libtelekit_eval.a"
  "libtelekit_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telekit_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

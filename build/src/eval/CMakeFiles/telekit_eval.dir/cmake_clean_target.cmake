file(REMOVE_RECURSE
  "libtelekit_eval.a"
)

# Empty compiler generated dependencies file for telekit_kg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtelekit_kg.a"
)

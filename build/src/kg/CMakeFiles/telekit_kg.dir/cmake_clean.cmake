file(REMOVE_RECURSE
  "CMakeFiles/telekit_kg.dir/kge.cc.o"
  "CMakeFiles/telekit_kg.dir/kge.cc.o.d"
  "CMakeFiles/telekit_kg.dir/kge_zoo.cc.o"
  "CMakeFiles/telekit_kg.dir/kge_zoo.cc.o.d"
  "CMakeFiles/telekit_kg.dir/query.cc.o"
  "CMakeFiles/telekit_kg.dir/query.cc.o.d"
  "CMakeFiles/telekit_kg.dir/store.cc.o"
  "CMakeFiles/telekit_kg.dir/store.cc.o.d"
  "libtelekit_kg.a"
  "libtelekit_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telekit_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

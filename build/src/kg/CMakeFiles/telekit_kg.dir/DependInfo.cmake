
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/kge.cc" "src/kg/CMakeFiles/telekit_kg.dir/kge.cc.o" "gcc" "src/kg/CMakeFiles/telekit_kg.dir/kge.cc.o.d"
  "/root/repo/src/kg/kge_zoo.cc" "src/kg/CMakeFiles/telekit_kg.dir/kge_zoo.cc.o" "gcc" "src/kg/CMakeFiles/telekit_kg.dir/kge_zoo.cc.o.d"
  "/root/repo/src/kg/query.cc" "src/kg/CMakeFiles/telekit_kg.dir/query.cc.o" "gcc" "src/kg/CMakeFiles/telekit_kg.dir/query.cc.o.d"
  "/root/repo/src/kg/store.cc" "src/kg/CMakeFiles/telekit_kg.dir/store.cc.o" "gcc" "src/kg/CMakeFiles/telekit_kg.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/telekit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/telekit_tensor.dir/gradcheck.cc.o"
  "CMakeFiles/telekit_tensor.dir/gradcheck.cc.o.d"
  "CMakeFiles/telekit_tensor.dir/ops.cc.o"
  "CMakeFiles/telekit_tensor.dir/ops.cc.o.d"
  "CMakeFiles/telekit_tensor.dir/optimizer.cc.o"
  "CMakeFiles/telekit_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/telekit_tensor.dir/serialize.cc.o"
  "CMakeFiles/telekit_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/telekit_tensor.dir/tensor.cc.o"
  "CMakeFiles/telekit_tensor.dir/tensor.cc.o.d"
  "libtelekit_tensor.a"
  "libtelekit_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telekit_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

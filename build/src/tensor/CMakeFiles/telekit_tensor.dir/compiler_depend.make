# Empty compiler generated dependencies file for telekit_tensor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtelekit_tensor.a"
)

# Empty compiler generated dependencies file for telekit_common.
# This may be replaced when dependencies are built.

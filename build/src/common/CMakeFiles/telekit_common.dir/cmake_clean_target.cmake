file(REMOVE_RECURSE
  "libtelekit_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/telekit_common.dir/rng.cc.o"
  "CMakeFiles/telekit_common.dir/rng.cc.o.d"
  "CMakeFiles/telekit_common.dir/status.cc.o"
  "CMakeFiles/telekit_common.dir/status.cc.o.d"
  "CMakeFiles/telekit_common.dir/string_util.cc.o"
  "CMakeFiles/telekit_common.dir/string_util.cc.o.d"
  "CMakeFiles/telekit_common.dir/table_printer.cc.o"
  "CMakeFiles/telekit_common.dir/table_printer.cc.o.d"
  "libtelekit_common.a"
  "libtelekit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telekit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtelekit_text.a"
)

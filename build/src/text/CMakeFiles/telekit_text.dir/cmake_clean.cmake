file(REMOVE_RECURSE
  "CMakeFiles/telekit_text.dir/bpe.cc.o"
  "CMakeFiles/telekit_text.dir/bpe.cc.o.d"
  "CMakeFiles/telekit_text.dir/masking.cc.o"
  "CMakeFiles/telekit_text.dir/masking.cc.o.d"
  "CMakeFiles/telekit_text.dir/numeric.cc.o"
  "CMakeFiles/telekit_text.dir/numeric.cc.o.d"
  "CMakeFiles/telekit_text.dir/prompt.cc.o"
  "CMakeFiles/telekit_text.dir/prompt.cc.o.d"
  "CMakeFiles/telekit_text.dir/tokenizer.cc.o"
  "CMakeFiles/telekit_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/telekit_text.dir/vocab.cc.o"
  "CMakeFiles/telekit_text.dir/vocab.cc.o.d"
  "libtelekit_text.a"
  "libtelekit_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telekit_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

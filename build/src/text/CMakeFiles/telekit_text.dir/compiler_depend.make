# Empty compiler generated dependencies file for telekit_text.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/telekit_core.dir/anenc.cc.o"
  "CMakeFiles/telekit_core.dir/anenc.cc.o.d"
  "CMakeFiles/telekit_core.dir/ktelebert.cc.o"
  "CMakeFiles/telekit_core.dir/ktelebert.cc.o.d"
  "CMakeFiles/telekit_core.dir/model_zoo.cc.o"
  "CMakeFiles/telekit_core.dir/model_zoo.cc.o.d"
  "CMakeFiles/telekit_core.dir/service.cc.o"
  "CMakeFiles/telekit_core.dir/service.cc.o.d"
  "CMakeFiles/telekit_core.dir/telebert.cc.o"
  "CMakeFiles/telekit_core.dir/telebert.cc.o.d"
  "CMakeFiles/telekit_core.dir/transformer.cc.o"
  "CMakeFiles/telekit_core.dir/transformer.cc.o.d"
  "libtelekit_core.a"
  "libtelekit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telekit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtelekit_core.a"
)

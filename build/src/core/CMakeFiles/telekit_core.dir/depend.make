# Empty dependencies file for telekit_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/telekit_graph.dir/gcn.cc.o"
  "CMakeFiles/telekit_graph.dir/gcn.cc.o.d"
  "libtelekit_graph.a"
  "libtelekit_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telekit_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtelekit_graph.a"
)

# Empty dependencies file for telekit_graph.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for numeric_monitoring.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/numeric_monitoring.dir/numeric_monitoring.cpp.o"
  "CMakeFiles/numeric_monitoring.dir/numeric_monitoring.cpp.o.d"
  "numeric_monitoring"
  "numeric_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
